"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures,
prints the rows, and writes them to ``results/<experiment>.txt``.
Heavy experiment outputs are cached per session so related figures
(e.g. Fig 6 and Fig 7, which share the TPC-DS runs) do not recompute.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"

_SESSION_CACHE: Dict[str, object] = {}


@pytest.fixture(scope="session")
def session_cache() -> Dict[str, object]:
    """Cross-test cache for shared experiment outputs."""
    return _SESSION_CACHE


def cached(cache: Dict[str, object], key: str, compute: Callable):
    """Compute-once helper for expensive shared experiment runs."""
    if key not in cache:
        cache[key] = compute()
    return cache[key]


@pytest.fixture(scope="session")
def write_result():
    """Write an experiment's rendered output to results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _write
