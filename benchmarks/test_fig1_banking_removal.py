"""Figure 1: index removal for the banking withdraw business.

Paper claim: starting from 263 DBA-crafted indexes, AutoIndex removes
~83% of them, saves ~70% of index storage, and the withdraw service's
throughput still *improves* (paper: +4%), because redundant indexes
were pure maintenance overhead.
"""

import pytest

from repro.bench.harness import prepare_database, run_queries
from repro.bench.reporting import format_table
from repro.core.advisor import AutoIndexAdvisor
from repro.workloads import BankingWorkload

from benchmarks.conftest import cached


def run_removal():
    generator = BankingWorkload()
    db = prepare_database(generator)  # builds all 263 manual indexes
    manual_count = len(generator.manual_withdraw_indexes())
    bytes_before = db.total_index_bytes()

    # Measure throughput with the DBA configuration first.
    warm = generator.withdrawal_queries(1200, seed=9)
    before_stats = run_queries(db, warm)

    advisor = AutoIndexAdvisor(db, mcts_iterations=80)
    observed = generator.withdrawal_queries(2500, seed=0)
    run_queries(db, observed, advisor)
    report = advisor.tune()

    bytes_after = db.total_index_bytes()
    after_stats = run_queries(db, generator.withdrawal_queries(1200, seed=9))
    return {
        "manual_count": manual_count,
        "dropped": len(report.dropped),
        "created": len(report.created),
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
        "tps_before": before_stats.throughput,
        "tps_after": after_stats.throughput,
        "tuning_seconds": report.elapsed_seconds,
    }


@pytest.mark.benchmark(group="fig1")
def test_fig1_banking_index_removal(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "fig1", run_removal),
        rounds=1,
        iterations=1,
    )
    removal_pct = 100.0 * outcome["dropped"] / outcome["manual_count"]
    storage_pct = 100.0 * (
        1 - outcome["bytes_after"] / outcome["bytes_before"]
    )
    tps_gain = 100.0 * (
        outcome["tps_after"] / outcome["tps_before"] - 1.0
    )
    text = format_table(
        ["metric", "value"],
        [
            ["manual indexes (start)", outcome["manual_count"]],
            ["indexes removed", outcome["dropped"]],
            ["removal ratio", f"{removal_pct:.1f}%  (paper: 83%)"],
            ["storage saved", f"{storage_pct:.1f}%  (paper: 70%)"],
            ["withdraw throughput change", f"{tps_gain:+.1f}%  (paper: +4%)"],
            ["tuning wall time (s)", f"{outcome['tuning_seconds']:.2f}"],
        ],
    )
    write_result("fig1_banking_removal", text)

    # Shape claims: massive removal, big storage saving, throughput
    # does not regress.
    assert removal_pct > 60.0
    assert storage_pct > 40.0
    assert outcome["tps_after"] >= outcome["tps_before"] * 0.98
