"""Ablation: the MCTS exploration constant gamma.

The paper's node utility is ``U(v) = B(v) + γ√(ln F(root)/F(v))``,
with γ "adjusting the amount of explorations of uncovered index
combinations". This sweep shows the search is robust across a wide γ
range on a budgeted TPC-DS round — pure exploitation (γ=0) risks
tunnel vision, huge γ wastes iterations, but the final budget-repair
polish keeps outcomes stable.
"""

import pytest

from repro.bench.harness import AdvisorKind, make_advisor, prepare_database
from repro.bench.reporting import format_table
from repro.core.advisor import AutoIndexAdvisor
from repro.workloads import TpcdsWorkload

from benchmarks.conftest import cached

BUDGET = int(2.5 * 1024 * 1024)
GAMMAS = (0.0, 0.1, 0.4, 1.0, 4.0)


def run_gamma_sweep():
    outcome = {}
    for gamma in GAMMAS:
        generator = TpcdsWorkload()
        db = prepare_database(generator)
        advisor = AutoIndexAdvisor(
            db, storage_budget=BUDGET, gamma=gamma,
            mcts_iterations=100, seed=17,
        )
        for query in generator.queries():
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        outcome[gamma] = {
            "indexes": len(report.created),
            "benefit": report.estimated_benefit,
            "baseline": report.baseline_cost,
            "evaluations": report.search.evaluations,
        }
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_gamma_sensitivity(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "ablation_gamma", run_gamma_sweep),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            gamma,
            data["indexes"],
            f"{100 * data['benefit'] / data['baseline']:.1f}%",
            data["evaluations"],
        ]
        for gamma, data in outcome.items()
    ]
    text = format_table(
        ["gamma", "indexes", "estimated improvement", "config evaluations"],
        rows,
    )
    write_result("ablation_gamma", text)

    improvements = [
        data["benefit"] / data["baseline"] for data in outcome.values()
    ]
    assert all(i > 0.05 for i in improvements), (
        "every gamma should find a clearly beneficial configuration"
    )
    # Robustness: no gamma collapses relative to the best.
    assert min(improvements) > max(improvements) * 0.7
