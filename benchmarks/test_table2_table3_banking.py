"""Tables II and III: index creation in the banking hybrid scenario.

Paper claims:

* Table II — starting from the manual configuration, AutoIndex adds a
  modest number of indexes (paper: +33, +1.27 GB) and improves both
  services: summarization (OLAP) ~+10% tps, withdrawal (OLTP) ~+6%;
  the OLAP side gains more because its queries are more complex;
* Table III — example recommended indexes cut individual query costs
  by large factors (up to ~98.7%).
"""

import pytest

from repro.bench.harness import prepare_database, run_queries
from repro.bench.reporting import format_table
from repro.core.advisor import AutoIndexAdvisor
from repro.workloads import BankingWorkload

from benchmarks.conftest import cached


def run_creation():
    generator = BankingWorkload()
    db = prepare_database(generator, with_defaults=False)
    # Start from a *useful subset* of the manual configuration (the
    # withdraw-service indexes that the removal experiment keeps), so
    # the creation experiment isolates what *adding* indexes buys the
    # hybrid workload — matching the paper's Table II setup where the
    # DBA config is the baseline.
    from repro.engine.index import IndexDef
    from repro.workloads.banking import NUM_SUMMARY_TABLES

    kept = [
        d
        for d in generator.manual_withdraw_indexes()
        if d.table in ("account", "card", "txn_log", "customer")
    ]
    # The DBA config also has per-fact day indexes on the
    # summarization side (the paper's baseline has 601 non-primary
    # indexes over the hybrid services).
    kept.extend(
        IndexDef(table=f"sum_fact_{s}", columns=("day",))
        for s in range(NUM_SUMMARY_TABLES)
    )
    for definition in kept:
        db.create_index(definition)
    db.analyze()
    index_count_before = len(db.index_defs())
    bytes_before = db.total_index_bytes()

    sm_before = run_queries(db, generator.summarization_queries(400, seed=9))
    wd_before = run_queries(db, generator.withdrawal_queries(1200, seed=9))

    advisor = AutoIndexAdvisor(db, mcts_iterations=100)
    run_queries(db, generator.queries(2500, seed=0), advisor)
    report = advisor.tune()

    sm_after = run_queries(db, generator.summarization_queries(400, seed=9))
    wd_after = run_queries(db, generator.withdrawal_queries(1200, seed=9))

    # Table III: the strongest per-index query-cost examples among the
    # added indexes (the paper showcases ind15/ind20/ind32).
    scored = []
    estimator = advisor.estimator
    templates = advisor.store.templates()
    full = db.index_defs()
    for definition in report.created:
        serving = [
            t
            for t in templates
            if definition.table in t.tables and not t.is_write
        ]
        if not serving:
            continue
        template = max(serving, key=lambda t: t.frequency)
        without = [d for d in full if d.key != definition.key]
        cost_with = estimator.query_cost(template, full)
        cost_without = estimator.query_cost(template, without)
        reduction = 1 - cost_with / max(cost_without, 1e-9)
        scored.append(
            (reduction, [definition.display_name, cost_without, cost_with])
        )
    scored.sort(key=lambda pair: -pair[0])
    examples = [row for _reduction, row in scored[:3]]

    return {
        "created": report.created,
        "dropped": report.dropped,
        "index_count_before": index_count_before,
        "bytes_added": db.total_index_bytes() - bytes_before,
        "sm_gain": sm_after.throughput / sm_before.throughput - 1.0,
        "wd_gain": wd_after.throughput / wd_before.throughput - 1.0,
        "examples": examples,
    }


@pytest.mark.benchmark(group="table2")
def test_table2_banking_improvement(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "table2", run_creation),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["metric", "Default", "AutoIndex"],
        [
            [
                "# non-primary indexes",
                outcome["index_count_before"],
                f"+{len(outcome['created'])} / -{len(outcome['dropped'])}",
            ],
            [
                "index disk space",
                "baseline",
                f"{outcome['bytes_added'] / (1024 * 1024):+.2f} MB",
            ],
            [
                "summarization service (tps)",
                "baseline",
                f"{100 * outcome['sm_gain']:+.1f}%  (paper: +10%)",
            ],
            [
                "withdrawal flow service (tps)",
                "baseline",
                f"{100 * outcome['wd_gain']:+.1f}%  (paper: +6%)",
            ],
        ],
    )
    write_result("table2_banking_creation", text)

    assert len(outcome["created"]) >= 1
    assert outcome["sm_gain"] > 0, "summarization service should gain"
    assert outcome["wd_gain"] > -0.02, "withdrawal must not regress"
    assert outcome["sm_gain"] > outcome["wd_gain"], (
        "OLAP side should gain more (paper's third observation)"
    )


@pytest.mark.benchmark(group="table3")
def test_table3_example_indexes(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "table2", run_creation),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, f"{without:.2f}", f"{with_:.2f}",
         f"{100 * (1 - with_ / max(without, 1e-9)):.1f}%"]
        for name, without, with_ in outcome["examples"]
    ]
    text = format_table(
        ["index", "query cost (no index)", "query cost (with index)",
         "reduction"],
        rows,
    )
    write_result("table3_banking_examples", text)

    assert outcome["examples"], "at least one example index expected"
    # At least one recommended index should cut its query's cost hard
    # (the paper's ind20 cuts 98.7%).
    best = max(
        1 - with_ / max(without, 1e-9)
        for _name, without, with_ in outcome["examples"]
    )
    assert best > 0.5
