"""Figure 10: performance under shrinking storage budgets (TPC-C).

Paper claims (on TPC-C 100x, budgets {no limit, 150M, 100M, 50M}):

* AutoIndex is best at every budget — when a branch hits the limit,
  the policy-tree search backs off and finds smaller combinations,
  while Greedy simply stops after its first big picks;
* performance degrades gracefully as the budget shrinks;
* occasionally a *smaller* budget gives AutoIndex an equal-or-better
  pick (the paper's "cheaper but high-performance" indexes).

Budgets here are scaled to the substrate's index sizes: the paper's
{∞, 150M, 100M, 50M} map to {∞, 60%, 40%, 20%} of the total candidate
footprint.
"""

import pytest

from repro.bench.harness import (
    AdvisorKind,
    make_advisor,
    prepare_database,
    run_queries,
)
from repro.bench.reporting import format_figure_series
from repro.workloads import TpccWorkload

from benchmarks.conftest import cached

SCALE = 8
FRACTIONS = {"no-limit": None, "150M": 0.5, "100M": 0.2, "50M": 0.06}


def candidate_footprint():
    """Total size of the plausible candidate set (budget yardstick)."""
    generator = TpccWorkload(scale=SCALE, seed=11)
    db = prepare_database(generator)
    advisor = make_advisor(AdvisorKind.AUTOINDEX, db)
    run_queries(db, generator.queries(600, seed=0), advisor)
    candidates = advisor.generator.generate(advisor.store.templates())
    return sum(
        db.index_size_bytes(c.definition) for c in candidates
    )


def run_budget_sweep():
    footprint = candidate_footprint()
    budgets = {
        label: None if fraction is None else int(footprint * fraction)
        for label, fraction in FRACTIONS.items()
    }
    series = {}
    for kind in (
        AdvisorKind.DEFAULT, AdvisorKind.GREEDY, AdvisorKind.AUTOINDEX
    ):
        costs = []
        for label, budget in budgets.items():
            generator = TpccWorkload(scale=SCALE, seed=11)
            db = prepare_database(generator)
            advisor = make_advisor(
                kind, db, storage_budget=budget, mcts_iterations=80
            )
            run_queries(db, generator.queries(800, seed=0), advisor)
            advisor.tune()
            test = run_queries(db, generator.queries(800, seed=900))
            costs.append(test.total_cost)
        series[kind.value] = costs
    return budgets, series


@pytest.mark.benchmark(group="fig10")
def test_fig10_storage_limits(benchmark, session_cache, write_result):
    budgets, series = benchmark.pedantic(
        lambda: cached(session_cache, "fig10", run_budget_sweep),
        rounds=1,
        iterations=1,
    )
    labels = list(budgets)
    text = format_figure_series(
        "Fig 10: test workload cost under storage budgets "
        "(labels follow the paper's {no limit,150M,100M,50M})",
        labels,
        series,
    )
    text += "\n\nbudgets (bytes): " + ", ".join(
        f"{label}={budgets[label]}" for label in labels
    )
    write_result("fig10_storage_limits", text)

    auto = series["AutoIndex"]
    greedy = series["Greedy"]
    default = series["Default"]
    for i, label in enumerate(labels):
        assert auto[i] <= default[i] * 1.01, f"{label}: worse than Default"
        assert auto[i] <= greedy[i] * 1.05, f"{label}: far worse than Greedy"
    # Graceful degradation: the tightest budget is no better than the
    # unlimited one (within noise).
    assert auto[-1] >= auto[0] * 0.95
