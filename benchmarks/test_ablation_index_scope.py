"""Ablation: global vs local index scope on a partitioned table.

The paper (Section III) motivates index *type* selection for
partitioned deployments: a global index looks up fast but costs more
storage; a local index is smaller but pays one tree descent per
partition when the lookup cannot prune. This benchmark quantifies the
trade-off on a hash-partitioned events table under two query mixes.
"""

import random

import pytest

from repro.bench.reporting import format_table
from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef, IndexScope
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table

from benchmarks.conftest import cached

ROWS = 30000
PARTITIONS = 8


def build_db():
    db = MemoryBackend()
    db.create_table(
        table(
            "events",
            [
                ("event_id", T.INT),
                ("tenant_id", T.INT),
                ("kind", T.INT),
                ("value", T.FLOAT),
            ],
            primary_key=["event_id"],
            partition_count=PARTITIONS,
            partition_key="tenant_id",
        )
    )
    rng = random.Random(3)
    db.load_rows(
        "events",
        [
            (i, rng.randrange(50), rng.randrange(400),
             round(rng.random() * 100, 2))
            for i in range(ROWS)
        ],
    )
    db.analyze()
    return db


def run_scope_ablation():
    rng = random.Random(7)
    pruning = [
        "SELECT count(*) FROM events "
        f"WHERE tenant_id = {rng.randrange(50)} AND kind = {rng.randrange(400)}"
        for _ in range(150)
    ]
    non_pruning = [
        f"SELECT count(*) FROM events WHERE kind = {rng.randrange(400)}"
        for _ in range(150)
    ]
    outcome = {}
    for label, scope in (("global", IndexScope.GLOBAL),
                         ("local", IndexScope.LOCAL)):
        db = build_db()
        index = db.create_index(
            IndexDef(table="events", columns=("tenant_id", "kind"),
                     scope=scope)
        )
        kind_index = db.create_index(
            IndexDef(table="events", columns=("kind",), scope=scope)
        )
        db.analyze()
        outcome[label] = {
            "bytes": index.byte_size + kind_index.byte_size,
            "pruning_cost": sum(db.execute(q).cost for q in pruning),
            "non_pruning_cost": sum(
                db.execute(q).cost for q in non_pruning
            ),
        }
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_index_scope(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "ablation_scope", run_scope_ablation),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            label,
            f"{data['bytes'] / 1024:.0f} KB",
            f"{data['pruning_cost']:.0f}",
            f"{data['non_pruning_cost']:.0f}",
        ]
        for label, data in outcome.items()
    ]
    text = format_table(
        ["scope", "index storage", "pruning lookups cost",
         "non-pruning lookups cost"],
        rows,
    )
    write_result("ablation_index_scope", text)

    # The paper's trade-off, measured: global = more storage but
    # cheaper non-pruning lookups; local = less storage, competitive
    # when lookups prune to one partition.
    assert outcome["global"]["bytes"] > outcome["local"]["bytes"]
    assert (
        outcome["global"]["non_pruning_cost"]
        < outcome["local"]["non_pruning_cost"]
    )
    assert outcome["local"]["pruning_cost"] <= (
        outcome["global"]["pruning_cost"] * 1.2
    )
