"""Figure 8: template-based vs query-level index management.

Paper claim: SQL2Template cuts index-management overhead (candidate
generation + benefit estimation work) by over 98.5%, while the final
workload performance is essentially unchanged (query-level wins by
only ~0.1%).
"""

import pytest

from repro.bench.harness import (
    AdvisorKind,
    make_advisor,
    prepare_database,
    run_queries,
)
from repro.bench.reporting import format_table
from repro.workloads import TpccWorkload

from benchmarks.conftest import cached

OBSERVED = 2000
TEST = 600


def run_comparison():
    outcome = {}
    for kind in (AdvisorKind.AUTOINDEX, AdvisorKind.QUERY_LEVEL):
        generator = TpccWorkload(scale=3, seed=11)
        db = prepare_database(generator)
        advisor = make_advisor(kind, db, mcts_iterations=60)
        run_queries(db, generator.queries(OBSERVED, seed=0), advisor)
        report = advisor.tune()
        test_stats = run_queries(db, generator.queries(TEST, seed=500))
        outcome[kind.value] = {
            "analyzed": report.statements_analyzed,
            "estimator_calls": report.estimator_calls,
            "tuning_seconds": report.elapsed_seconds,
            "test_cost": test_stats.total_cost,
            "created": len(report.created),
        }
    return outcome


@pytest.mark.benchmark(group="fig8")
def test_fig8_template_overhead(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "fig8", run_comparison),
        rounds=1,
        iterations=1,
    )
    auto = outcome["AutoIndex"]
    query_level = outcome["QueryLevel"]
    analysis_reduction = 100.0 * (
        1 - auto["analyzed"] / max(query_level["analyzed"], 1)
    )
    perf_gap = 100.0 * (
        auto["test_cost"] / query_level["test_cost"] - 1.0
    )
    text = format_table(
        ["metric", "query-level", "template-based (AutoIndex)"],
        [
            ["statements analyzed", query_level["analyzed"], auto["analyzed"]],
            [
                "estimator calls at tuning",
                query_level["estimator_calls"],
                auto["estimator_calls"],
            ],
            [
                "tuning wall time (s)",
                f"{query_level['tuning_seconds']:.2f}",
                f"{auto['tuning_seconds']:.2f}",
            ],
            ["indexes created", query_level["created"], auto["created"]],
            [
                "test workload cost",
                f"{query_level['test_cost']:.0f}",
                f"{auto['test_cost']:.0f}",
            ],
        ],
    )
    text += (
        f"\n\nanalysis overhead reduction: {analysis_reduction:.1f}% "
        "(paper: >98.5%)"
        f"\nperformance gap vs query-level: {perf_gap:+.2f}% "
        "(paper: ~0.1%)"
    )
    write_result("fig8_template_overhead", text)

    assert analysis_reduction > 95.0
    assert abs(perf_gap) < 5.0, "templates must not cost real performance"
