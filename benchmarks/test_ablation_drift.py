"""Ablation: incremental template update under workload drift.

Section IV-C: when the workload shifts, template frequencies must be
decayed and recent templates must dominate, otherwise tuning keeps
optimising for a workload that no longer exists. This benchmark runs
an abrupt phase change (epidemic W1 reads → W2 insert flood) and
compares AutoIndex's windowed/decayed store against a frozen-history
variant (recent window disabled).
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.advisor import AutoIndexAdvisor
from repro.ports.memory import MemoryBackend
from repro.workloads import EpidemicWorkload

from benchmarks.conftest import cached


class _FrozenHistoryAdvisor(AutoIndexAdvisor):
    """AutoIndex with recency weighting disabled (the ablated variant).

    Lifetime frequencies only: the store never starts a new window, so
    W1's read templates keep their full weight through the insert
    flood.
    """

    def tune(self, *args, **kwargs):
        original = self.store.begin_tuning_window
        self.store.begin_tuning_window = lambda: None
        try:
            return super().tune(*args, **kwargs)
        finally:
            self.store.begin_tuning_window = original


def run_drift():
    outcome = {}
    for label, advisor_cls in (
        ("windowed (AutoIndex)", AutoIndexAdvisor),
        ("frozen history", _FrozenHistoryAdvisor),
    ):
        generator = EpidemicWorkload(people=8000)
        db = MemoryBackend()
        generator.build(db)
        advisor = advisor_cls(db, mcts_iterations=50)

        for query in generator.phase_w1(250, seed=1):
            db.execute(query.sql)
            advisor.observe(query.sql)
        advisor.tune()

        flood = generator.phase_w2(2600, seed=2)
        for query in flood:
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()

        # Cost of continuing the insert-dominated workload.
        after = sum(
            db.execute(q.sql).cost
            for q in generator.phase_w2(800, seed=7)
        )
        outcome[label] = {
            "dropped_after_drift": len(report.dropped),
            "post_drift_cost": after,
            "indexes": len(db.index_defs()),
        }
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_drift_handling(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "ablation_drift", run_drift),
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, data["dropped_after_drift"], data["indexes"],
         f"{data['post_drift_cost']:.0f}"]
        for label, data in outcome.items()
    ]
    text = format_table(
        ["variant", "indexes dropped after drift", "final index count",
         "post-drift workload cost"],
        rows,
    )
    write_result("ablation_drift", text)

    windowed = outcome["windowed (AutoIndex)"]
    frozen = outcome["frozen history"]
    # The windowed store reacts to the insert flood by shedding the
    # now-penalised read index; frozen history clings to it.
    assert windowed["dropped_after_drift"] >= 1
    assert windowed["post_drift_cost"] <= frozen["post_drift_cost"] * 1.02
