"""Figure 5: TPC-C performance comparison at three data scales.

Paper claim: AutoIndex beats both Default and Greedy on total latency
and throughput at TPC-C 1x / 10x / 100x (e.g. at 100x, ≥25% latency
reduction and ≥34% throughput gain over Default).

Scaling note (DESIGN.md §2): the paper's 1x/10x/100x data sizes map to
row-multiplier scales {1, 3, 8} on the pure-Python substrate; relative
orderings, not absolute numbers, are the reproduction target.
"""

import pytest

from repro.bench.harness import AdvisorKind, run_advisor_experiment
from repro.bench.reporting import format_figure_series
from repro.workloads import TpccWorkload

from benchmarks.conftest import cached

SCALES = {"TPC-C1x": 1, "TPC-C10x": 3, "TPC-C100x": 8}
TRAIN, TEST = 800, 800
ADVISORS = (AdvisorKind.DEFAULT, AdvisorKind.GREEDY, AdvisorKind.AUTOINDEX)


def run_all():
    results = {}
    for label, scale in SCALES.items():
        for kind in ADVISORS:
            results[(label, kind.value)] = run_advisor_experiment(
                TpccWorkload(scale=scale, seed=11),
                kind,
                train_queries=TRAIN,
                test_queries=TEST,
                seed=0,
            )
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5_tpcc_latency_and_throughput(
    benchmark, session_cache, write_result
):
    results = benchmark.pedantic(
        lambda: cached(session_cache, "fig5", run_all),
        rounds=1,
        iterations=1,
    )

    latency = {
        kind.value: [
            results[(label, kind.value)].total_latency for label in SCALES
        ]
        for kind in ADVISORS
    }
    throughput = {
        kind.value: [
            results[(label, kind.value)].throughput for label in SCALES
        ]
        for kind in ADVISORS
    }
    text = format_figure_series(
        "Fig 5(a-c): total latency (cost units), lower is better",
        list(SCALES), latency,
    )
    text += "\n\n" + format_figure_series(
        "Fig 5(d-f): throughput (queries / 1000 cost units), higher is better",
        list(SCALES), throughput,
    )
    write_result("fig5_tpcc", text)

    for i, label in enumerate(SCALES):
        auto = latency["AutoIndex"][i]
        default = latency["Default"][i]
        greedy = latency["Greedy"][i]
        # Shape claims: AutoIndex <= Greedy (within noise) < Default.
        assert auto < default, f"{label}: AutoIndex not better than Default"
        assert auto <= greedy * 1.05, f"{label}: AutoIndex much worse than Greedy"
        assert throughput["AutoIndex"][i] > throughput["Default"][i]
