"""Figure 9: adaptivity on dynamic TPC-C workloads.

Paper setup: TPC-C batches run continuously, index management runs
every five minutes (here: between phases). Claims:

* AutoIndex tracks the workload and beats both Default and Greedy on
  the running batches;
* Default slowly degrades as inserts grow the tables;
* AutoIndex's per-round tuning latency is lower than Greedy's, because
  Greedy re-enumerates every observed query each round.
"""

import pytest

from repro.bench.harness import AdvisorKind, make_advisor, prepare_database
from repro.bench.reporting import format_figure_series
from repro.workloads import TpccWorkload
from repro.workloads.dynamic import tpcc_rounds

from benchmarks.conftest import cached

ROUNDS = 4
QUERIES_PER_ROUND = 500


def run_dynamic():
    series = {}
    tuning_latency = {}
    for kind in (
        AdvisorKind.DEFAULT, AdvisorKind.GREEDY, AdvisorKind.AUTOINDEX
    ):
        generator = TpccWorkload(scale=3, seed=11)
        db = prepare_database(generator)
        advisor = make_advisor(kind, db, mcts_iterations=60)
        dynamic = tpcc_rounds(
            generator, rounds=ROUNDS, queries_per_round=QUERIES_PER_ROUND
        )
        costs = []
        latencies = []
        for i, phase in enumerate(dynamic):
            total = 0.0
            for query in phase.queries(seed=i):
                total += db.execute(query.sql).cost
                advisor.observe(query.sql)
            costs.append(total)
            report = advisor.tune()
            latencies.append(report.elapsed_seconds)
        series[kind.value] = costs
        tuning_latency[kind.value] = latencies
    return series, tuning_latency


@pytest.mark.benchmark(group="fig9")
def test_fig9_dynamic_workload(benchmark, session_cache, write_result):
    series, tuning_latency = benchmark.pedantic(
        lambda: cached(session_cache, "fig9", run_dynamic),
        rounds=1,
        iterations=1,
    )
    labels = [f"round-{i + 1}" for i in range(ROUNDS)]
    text = format_figure_series(
        "Fig 9: per-round workload cost (lower is better)", labels, series
    )
    text += "\n\n" + format_figure_series(
        "Fig 9 (inset): tuning latency per round (seconds)",
        labels,
        tuning_latency,
    )
    write_result("fig9_dynamic", text)

    # Shape claims: after the first tuning round, AutoIndex runs the
    # remaining rounds cheaper than Default; it is competitive with
    # Greedy while tuning faster in later rounds (Greedy re-enumerates
    # all observed queries each time).
    auto_late = sum(series["AutoIndex"][1:])
    default_late = sum(series["Default"][1:])
    greedy_late = sum(series["Greedy"][1:])
    assert auto_late < default_late
    assert auto_late <= greedy_late * 1.05
    assert sum(tuning_latency["AutoIndex"][1:]) <= sum(
        tuning_latency["Greedy"][1:]
    )
