"""Figures 6 and 7: per-query execution-time reduction on TPC-DS.

Paper claims (under a storage budget):

* Fig 6 — most TPC-DS queries are improved by AutoIndex, and by more
  than Greedy improves them;
* Fig 7 — the number of queries whose execution time drops by >10% is
  much larger for AutoIndex (paper: 44 vs 15, i.e. ~3x), because
  Greedy burns the budget on a few big fact-table indexes while MCTS
  finds a configuration of complementary indexes (AutoIndex selected 9
  indexes vs Greedy's 3).
"""

import pytest

from repro.bench.harness import (
    AdvisorKind,
    make_advisor,
    prepare_database,
    run_per_query,
)
from repro.bench.reporting import format_table, improvement_counts
from repro.workloads import TpcdsWorkload

from benchmarks.conftest import cached

BUDGET = int(2.5 * 1024 * 1024)  # scaled from the paper's limits


def run_tpcds():
    outcomes = {}
    baseline = None
    for kind in (
        AdvisorKind.DEFAULT, AdvisorKind.GREEDY, AdvisorKind.AUTOINDEX
    ):
        generator = TpcdsWorkload()
        db = prepare_database(generator)
        advisor = make_advisor(
            kind, db, storage_budget=BUDGET, mcts_iterations=100
        )
        queries = generator.queries()
        for query in queries:
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        per_query = run_per_query(db, generator.queries())
        outcomes[kind.value] = {
            "per_query": per_query,
            "created": getattr(report, "created", []),
        }
        if kind is AdvisorKind.DEFAULT:
            baseline = per_query
    return baseline, outcomes


@pytest.mark.benchmark(group="fig6")
def test_fig6_execution_time_reduction(benchmark, session_cache, write_result):
    baseline, outcomes = benchmark.pedantic(
        lambda: cached(session_cache, "tpcds", run_tpcds),
        rounds=1,
        iterations=1,
    )
    auto = outcomes["AutoIndex"]["per_query"].reduction_vs(baseline)
    greedy = outcomes["Greedy"]["per_query"].reduction_vs(baseline)

    rows = [
        [tag, f"{100 * greedy[tag]:.1f}%", f"{100 * auto[tag]:.1f}%"]
        for tag in sorted(baseline.costs, key=lambda t: int(t[1:]))
    ]
    text = format_table(["query", "Greedy reduction", "AutoIndex reduction"], rows)
    mean_auto = sum(auto.values()) / len(auto)
    mean_greedy = sum(greedy.values()) / len(greedy)
    text += (
        f"\n\nmean reduction: AutoIndex {100 * mean_auto:.1f}% "
        f"vs Greedy {100 * mean_greedy:.1f}%"
    )
    write_result("fig6_tpcds_reduction", text)

    assert mean_auto > mean_greedy, "AutoIndex should improve more on average"
    improved = sum(1 for r in auto.values() if r > 0.01)
    assert improved >= len(auto) // 3, "most queries should improve"


@pytest.mark.benchmark(group="fig7")
def test_fig7_optimized_query_counts(benchmark, session_cache, write_result):
    baseline, outcomes = benchmark.pedantic(
        lambda: cached(session_cache, "tpcds", run_tpcds),
        rounds=1,
        iterations=1,
    )
    auto = outcomes["AutoIndex"]["per_query"].reduction_vs(baseline)
    greedy = outcomes["Greedy"]["per_query"].reduction_vs(baseline)
    auto_counts = improvement_counts(auto)
    greedy_counts = improvement_counts(greedy)

    rows = [
        [
            f">{int(threshold * 100)}%",
            greedy_counts[threshold],
            auto_counts[threshold],
        ]
        for threshold in (0.10, 0.30, 0.50)
    ]
    rows.append(
        [
            "indexes created",
            len(outcomes["Greedy"]["created"]),
            len(outcomes["AutoIndex"]["created"]),
        ]
    )
    text = format_table(
        ["improvement threshold", "Greedy #queries", "AutoIndex #queries"],
        rows,
    )
    write_result("fig7_tpcds_optimized_counts", text)

    # Shape claims: AutoIndex optimizes more queries past 10% and
    # selects more (budget-fitting) indexes than Greedy. The paper's
    # ~3x count ratio is larger than ours because on this scaled
    # substrate a few fact-table indexes serve an outsized share of
    # the suite (see EXPERIMENTS.md); the ordering is the claim here.
    assert auto_counts[0.10] > greedy_counts[0.10]
    assert len(outcomes["AutoIndex"]["created"]) > len(
        outcomes["Greedy"]["created"]
    )
