"""Table I: indexes added on TPC-C 1x, Greedy vs AutoIndex, with the
per-index cost reduction of the queries they serve.

Paper claim: both pick the customer-order composite index; AutoIndex
additionally picks ``s_quantity`` (the paper's ``s_quality``) and a
second orders combination, whose individual benefits are modest but
whose combined effect is large (99.4% / 21.4% / 3.6% cost cuts).
"""

import pytest

from repro.bench.harness import AdvisorKind, make_advisor, prepare_database
from repro.bench.reporting import format_table
from repro.workloads import TpccWorkload

from benchmarks.conftest import cached


def run_experiment():
    rows = {}
    chosen = {}
    for kind in (AdvisorKind.GREEDY, AdvisorKind.AUTOINDEX):
        generator = TpccWorkload(scale=5, seed=11)
        db = prepare_database(generator)
        advisor = make_advisor(kind, db, mcts_iterations=80)
        for query in generator.queries(1000, seed=0):
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        chosen[kind.value] = report.created

        # Per-index cost reduction: the workload cost drop attributable
        # to each added index, relative to the config without it.
        estimator = advisor.estimator
        store = getattr(advisor, "store", None)
        if store is not None:
            templates = store.templates()
        else:
            templates = list(advisor._observed.values())
        full = db.index_defs()
        full_cost = estimator.workload_cost(templates, full)
        for definition in report.created:
            without = [d for d in full if d.key != definition.key]
            cost_without = estimator.workload_cost(templates, without)
            reduction = (
                0.0
                if cost_without <= 0
                else (cost_without - full_cost) / cost_without
            )
            rows[(kind.value, str(definition))] = reduction
    return chosen, rows


@pytest.mark.benchmark(group="table1")
def test_table1_added_indexes(benchmark, session_cache, write_result):
    chosen, rows = benchmark.pedantic(
        lambda: cached(session_cache, "table1", run_experiment),
        rounds=1,
        iterations=1,
    )
    greedy = {str(d) for d in chosen["Greedy"]}
    auto = {str(d) for d in chosen["AutoIndex"]}
    table_rows = []
    for name in sorted(greedy | auto):
        reduction = rows.get(("AutoIndex", name), rows.get(("Greedy", name), 0.0))
        table_rows.append(
            [
                name if name in greedy else "",
                name if name in auto else "",
                f"{100 * reduction:.1f}%",
            ]
        )
    text = format_table(["Greedy", "AutoIndex", "Cost ↓"], table_rows)
    write_result("table1_added_indexes", text)

    # Shape claims: AutoIndex finds the customer-order composite and
    # the stock-quantity index the paper's Table I lists.
    assert any("o_c_id" in name for name in auto)
    assert any("s_quantity" in name for name in auto)
