"""Ablation benchmarks for the design choices DESIGN.md calls out.

* MCTS vs greedy variants under a budget — the value of tree search;
* learned estimator vs static what-if cost model — the value of
  Section V's deep regression;
* template capacity sensitivity — the cost of SQL2Template's bounded
  store.
"""

import numpy as np
import pytest

from repro.bench.harness import (
    AdvisorKind,
    make_advisor,
    prepare_database,
    run_queries,
)
from repro.bench.reporting import format_table
from repro.core.advisor import AutoIndexAdvisor
from repro.core.estimator import DeepIndexEstimator, WhatIfCostModel
from repro.workloads import TpcdsWorkload, TpccWorkload

from benchmarks.conftest import cached

BUDGET = int(2.5 * 1024 * 1024)


def run_selector_ablation():
    outcome = {}
    for kind in (
        AdvisorKind.GREEDY, AdvisorKind.HILL_CLIMB, AdvisorKind.AUTOINDEX
    ):
        generator = TpcdsWorkload()
        db = prepare_database(generator)
        advisor = make_advisor(
            kind, db, storage_budget=BUDGET, mcts_iterations=100
        )
        for query in generator.queries():
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        test = run_queries(db, generator.queries())
        outcome[kind.value] = {
            "cost": test.total_cost,
            "indexes": len(report.created),
            "seconds": report.elapsed_seconds,
        }
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_mcts_vs_greedy_variants(
    benchmark, session_cache, write_result
):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "ablation_selector", run_selector_ablation),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, f"{data['cost']:.0f}", data["indexes"],
         f"{data['seconds']:.2f}"]
        for name, data in outcome.items()
    ]
    text = format_table(
        ["selector", "test workload cost", "indexes", "tuning s"], rows
    )
    write_result("ablation_mcts_vs_greedy", text)

    # MCTS must beat static top-k under the budget; hill-climbing sits
    # in between (it fixes ranking but still cannot remove/backtrack).
    assert outcome["AutoIndex"]["cost"] < outcome["Greedy"]["cost"]
    assert outcome["AutoIndex"]["cost"] <= outcome["HillClimb"]["cost"] * 1.05


def run_estimator_ablation():
    generator = TpccWorkload(scale=3, seed=11)
    db = prepare_database(generator)
    advisor = AutoIndexAdvisor(db)
    # Collect (features, actual) pairs over a mixed workload.
    for query in generator.queries(1200, seed=0):
        result = db.execute(query.sql)
        advisor.observe(query.sql)
        advisor.record_execution(query.sql, result.cost)
    X, y = advisor.estimator.training_matrix()

    whatif_pred = WhatIfCostModel().predict(X)
    deep = DeepIndexEstimator(epochs=500)
    folds = deep.cross_validate(X, y, folds=9)
    deep.fit(X, y)
    deep_pred = deep.predict(X)

    def q_error(pred):
        p = np.maximum(pred, 1e-9)
        t = np.maximum(y, 1e-9)
        return float(np.mean(np.maximum(p / t, t / p)))

    def mae(pred):
        return float(np.mean(np.abs(pred - y)))

    return {
        "whatif_q": q_error(whatif_pred),
        "deep_q": q_error(deep_pred),
        "whatif_mae": mae(whatif_pred),
        "deep_mae": mae(deep_pred),
        "cv_q": float(np.mean([f.mean_q_error for f in folds])),
        "samples": len(y),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_estimator_accuracy(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(
            session_cache, "ablation_estimator", run_estimator_ablation
        ),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["model", "MAE (fit)", "mean q-error (fit)",
         "mean q-error (9-fold CV)"],
        [
            [
                "static what-if sum",
                f"{outcome['whatif_mae']:.3f}",
                f"{outcome['whatif_q']:.2f}",
                "-",
            ],
            [
                "deep regression (Section V)",
                f"{outcome['deep_mae']:.3f}",
                f"{outcome['deep_q']:.2f}",
                f"{outcome['cv_q']:.2f}",
            ],
        ],
    )
    text += f"\n\ntraining samples: {outcome['samples']}"
    write_result("ablation_estimator", text)

    assert outcome["deep_q"] <= outcome["whatif_q"] * 1.05, (
        "the learned model should fit measured costs at least as well"
    )
    assert outcome["deep_mae"] <= outcome["whatif_mae"], (
        "the learned weights should reduce absolute error (the paper's"
        " motivation for replacing static weights)"
    )


def run_template_capacity_ablation():
    outcome = {}
    for capacity in (4, 32, 5000):
        generator = TpccWorkload(scale=3, seed=11)
        db = prepare_database(generator)
        advisor = AutoIndexAdvisor(
            db, template_capacity=capacity, mcts_iterations=60
        )
        run_queries(db, generator.queries(1200, seed=0), advisor)
        report = advisor.tune()
        test = run_queries(db, generator.queries(500, seed=700))
        outcome[capacity] = {
            "templates": report.templates_used,
            "indexes": len(report.created),
            "cost": test.total_cost,
        }
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_template_capacity(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(
            session_cache, "ablation_templates", run_template_capacity_ablation
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [capacity, data["templates"], data["indexes"], f"{data['cost']:.0f}"]
        for capacity, data in outcome.items()
    ]
    text = format_table(
        ["template capacity", "templates kept", "indexes created",
         "test cost"],
        rows,
    )
    write_result("ablation_templates", text)

    # A severely capped store loses patterns; a comfortably sized one
    # matches the unbounded store (the paper keeps 5000 for TPC-C).
    assert outcome[32]["cost"] <= outcome[4]["cost"] * 1.1
    assert outcome[32]["cost"] <= outcome[5000]["cost"] * 1.1
