"""Ablation: index interaction (the paper's Q32 motivation).

Section III motivates MCTS with TPC-DS Q32: two indexes that look
mediocre individually are jointly decisive, so benefit-ranked greedy
selection drops them. This benchmark engineers that situation
explicitly:

* a *synergy pair* — ``dim(a)`` makes the outer side of a join tiny
  and ``fact(b)`` enables the index nested-loop probe; each alone
  saves little because the other scan still dominates;
* a *decoy* index with a solid standalone benefit that fills the
  storage budget on its own.

Under a budget that fits either {decoy} or {pair}, benefit-ranked
top-k (and hill-climbing, which also scores the pair's first step low)
takes the decoy; MCTS explores the combination and takes the pair.
"""

import random

import pytest

from repro.bench.harness import AdvisorKind, make_advisor
from repro.bench.reporting import format_table
from repro.ports.memory import MemoryBackend
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table

from benchmarks.conftest import cached

DIM_ROWS = 4000
FACT_ROWS = 40000
DECOY_ROWS = 9000


def build_db() -> MemoryBackend:
    db = MemoryBackend()
    db.create_table(
        table(
            "dim",
            [("d_id", T.INT), ("a", T.INT), ("payload", T.TEXT)],
            primary_key=["d_id"],
        )
    )
    db.create_table(
        table(
            "fact",
            [("f_id", T.INT), ("b", T.INT), ("v", T.FLOAT)],
            primary_key=["f_id"],
        )
    )
    db.create_table(
        table(
            "decoy",
            [("x_id", T.INT), ("c", T.INT), ("w", T.FLOAT)],
            primary_key=["x_id"],
        )
    )
    rng = random.Random(41)
    db.load_rows(
        "dim",
        [(i, rng.randrange(800), f"p{i}") for i in range(DIM_ROWS)],
    )
    db.load_rows(
        "fact",
        [
            (i, rng.randrange(DIM_ROWS), round(rng.random() * 10, 2))
            for i in range(FACT_ROWS)
        ],
    )
    db.load_rows(
        "decoy",
        [(i, rng.randrange(300), rng.random()) for i in range(DECOY_ROWS)],
    )
    db.analyze()
    return db


def workload(rng: random.Random, n: int):
    queries = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.6:
            # The synergy query: dim filtered on `a` (needs dim(a) to
            # avoid the dim seq scan), joined into the big fact table
            # on `b` (needs fact(b) for the index NL probe).
            queries.append(
                "SELECT sum(f.v) FROM dim d, fact f "
                f"WHERE d.a = {rng.randrange(800)} AND f.b = d.d_id"
            )
        else:
            # The decoy query: a plain selective filter on its own
            # table — a solid, simple, standalone index benefit.
            queries.append(
                f"SELECT count(*) FROM decoy WHERE c = {rng.randrange(300)}"
            )
    return queries


def run_synergy():
    outcome = {}
    # Budget sized to fit the decoy index OR the synergy pair, not both.
    probe = build_db()
    from repro.engine.index import IndexDef

    pair_bytes = probe.index_size_bytes(
        IndexDef(table="dim", columns=("a",))
    ) + probe.index_size_bytes(IndexDef(table="fact", columns=("b",)))
    decoy_bytes = probe.index_size_bytes(
        IndexDef(table="decoy", columns=("c",))
    )
    budget = max(pair_bytes, decoy_bytes) + 1024

    for kind in (
        AdvisorKind.GREEDY, AdvisorKind.HILL_CLIMB, AdvisorKind.AUTOINDEX
    ):
        db = build_db()
        advisor = make_advisor(
            kind, db, storage_budget=budget, mcts_iterations=80
        )
        rng = random.Random(7)
        train = workload(rng, 120)
        for sql in train:
            db.execute(sql)
            advisor.observe(sql)
        report = advisor.tune()
        test_cost = sum(
            db.execute(sql).cost
            for sql in workload(random.Random(99), 80)
        )
        outcome[kind.value] = {
            "created": [str(d) for d in report.created],
            "test_cost": test_cost,
        }
    outcome["_budget"] = budget
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_index_synergy(benchmark, session_cache, write_result):
    outcome = benchmark.pedantic(
        lambda: cached(session_cache, "ablation_synergy", run_synergy),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, ", ".join(data["created"]) or "(none)",
         f"{data['test_cost']:.0f}"]
        for name, data in outcome.items()
        if not name.startswith("_")
    ]
    text = format_table(["selector", "indexes chosen", "test cost"], rows)
    text += f"\n\nbudget: {outcome['_budget']} bytes"
    write_result("ablation_synergy", text)

    auto = outcome["AutoIndex"]
    greedy = outcome["Greedy"]
    # MCTS must capture the synergy pair and beat top-k overall.
    assert any("dim(a)" in name for name in auto["created"])
    assert any("fact(b)" in name for name in auto["created"])
    assert auto["test_cost"] < greedy["test_cost"]
