"""DBA review CLI: act on gated recommendations from the terminal.

The advisor's safety layer parks gated recommendations in a review
queue that persists inside the checkpoint directory
(``safety.json``). This tool lets a DBA inspect and resolve them
without the advisor process running::

    python -m repro.review CKPT list
    python -m repro.review CKPT show 3
    python -m repro.review CKPT accept 3 --note "matches the new report workload"
    python -m repro.review CKPT reject 3 --note "write-heavy table, not worth it"

Verdicts are written back into the checkpoint with the same
crash-safety guarantees as an advisor save (atomic replace, previous
generation kept, manifest updated last). The verdict itself changes
no catalog: the next advisor that restores the checkpoint applies
accepted changes transactionally and folds rejections into the
estimator's training data via
:meth:`~repro.core.advisor.AutoIndexAdvisor.process_review_verdicts`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import checkpoint
from repro.core.safety import ReviewQueue

SAFETY_COMPONENT = "safety.json"


def _load_state(directory) -> Optional[dict]:
    """The checkpoint's safety payload, or None when unreadable."""
    manifest = checkpoint.read_manifest(directory)
    report = checkpoint.CheckpointLoadReport()
    state = checkpoint.read_component(
        directory,
        SAFETY_COMPONENT,
        lambda blob: json.loads(blob.decode("utf-8")),
        manifest,
        report,
    )
    if not isinstance(state, dict):
        return None
    return state


def _save_state(directory, state: dict) -> None:
    checkpoint.update_component(
        directory,
        SAFETY_COMPONENT,
        json.dumps(state).encode("utf-8"),
    )


def _queue_of(state: dict) -> ReviewQueue:
    return ReviewQueue.from_dict(
        state.get("safety", {}).get("queue", {})
    )


def _store_queue(state: dict, queue: ReviewQueue) -> dict:
    safety = dict(state.get("safety", {}))
    safety["queue"] = queue.to_dict()
    updated = dict(state)
    updated["safety"] = safety
    return updated


def cmd_list(queue: ReviewQueue) -> int:
    pending = queue.pending()
    if not pending:
        print("no pending recommendations")
        return 0
    print(f"{len(pending)} pending recommendation(s):")
    for rec in pending:
        creates = ", ".join(str(d) for d in rec.additions) or "(none)"
        drops = ", ".join(str(d) for d in rec.removals) or "(none)"
        print(
            f"  #{rec.rec_id}: create {creates}; drop {drops}; "
            f"predicted benefit {rec.predicted_benefit:,.1f}"
        )
        print(f"      gated because: {rec.reason}")
    return 0


def cmd_show(queue: ReviewQueue, rec_id: int) -> int:
    try:
        rec = queue.get(rec_id)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(rec.render())
    return 0


def cmd_resolve(
    directory,
    state: dict,
    queue: ReviewQueue,
    rec_id: int,
    accept: bool,
    note: str,
) -> int:
    try:
        rec = queue.resolve(rec_id, accept=accept, note=note)
    except (KeyError, ValueError) as exc:
        print(exc.args[0])
        return 2
    _save_state(directory, _store_queue(state, queue))
    verdict = "accepted" if accept else "rejected"
    print(
        f"recommendation #{rec.rec_id} {verdict}; the next advisor "
        "restoring this checkpoint will "
        + (
            "apply it transactionally"
            if accept
            else "fold the verdict into estimator training data"
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.review",
        description=(
            "Inspect and resolve the advisor's gated index "
            "recommendations stored in a checkpoint directory."
        ),
    )
    parser.add_argument(
        "checkpoint", help="advisor checkpoint directory"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list pending recommendations")
    show = sub.add_parser("show", help="full explanation for one")
    show.add_argument("rec_id", type=int)
    accept = sub.add_parser(
        "accept", help="approve: applied on next advisor restore"
    )
    accept.add_argument("rec_id", type=int)
    accept.add_argument("--note", default="", help="verdict note")
    reject = sub.add_parser(
        "reject",
        help="decline: never applied, becomes training signal",
    )
    reject.add_argument("rec_id", type=int)
    reject.add_argument("--note", default="", help="verdict note")
    args = parser.parse_args(argv)

    state = _load_state(args.checkpoint)
    if state is None:
        print(
            f"no readable {SAFETY_COMPONENT} in "
            f"{args.checkpoint!r} (not an advisor checkpoint?)"
        )
        return 2
    queue = _queue_of(state)
    if args.command == "list":
        return cmd_list(queue)
    if args.command == "show":
        return cmd_show(queue, args.rec_id)
    return cmd_resolve(
        args.checkpoint,
        state,
        queue,
        args.rec_id,
        accept=args.command == "accept",
        note=args.note,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
