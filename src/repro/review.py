"""DBA review CLI: act on gated recommendations from the terminal.

The advisor's safety layer parks gated recommendations in a review
queue that persists inside the checkpoint directory
(``safety.json``). This tool lets a DBA inspect and resolve them
without the advisor process running::

    python -m repro.review CKPT list
    python -m repro.review CKPT show 3
    python -m repro.review CKPT accept 3 --note "matches the new report workload"
    python -m repro.review CKPT reject 3 --note "write-heavy table, not worth it"

Daemon checkpoints are per-tenant namespaces under one root
(``<root>/tenant-<id>/``); address them with ``--checkpoint-dir`` and
``--tenant`` instead of the positional directory::

    python -m repro.review --checkpoint-dir /var/ai-ckpt --tenant alpha list
    python -m repro.review --checkpoint-dir /var/ai-ckpt --tenant alpha accept 3

Verdicts are written back into the checkpoint with the same
crash-safety guarantees as an advisor save (atomic replace, previous
generation kept, manifest updated last). The verdict itself changes
no catalog: the next advisor that restores the checkpoint applies
accepted changes transactionally and folds rejections into the
estimator's training data via
:meth:`~repro.core.advisor.AutoIndexAdvisor.process_review_verdicts`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import checkpoint
from repro.core.safety import ReviewQueue

SAFETY_COMPONENT = "safety.json"


def _load_state(directory) -> Optional[dict]:
    """The checkpoint's safety payload, or None when unreadable."""
    manifest = checkpoint.read_manifest(directory)
    report = checkpoint.CheckpointLoadReport()
    state = checkpoint.read_component(
        directory,
        SAFETY_COMPONENT,
        lambda blob: json.loads(blob.decode("utf-8")),
        manifest,
        report,
    )
    if not isinstance(state, dict):
        return None
    return state


def _save_state(directory, state: dict) -> None:
    checkpoint.update_component(
        directory,
        SAFETY_COMPONENT,
        json.dumps(state).encode("utf-8"),
    )


def _queue_of(state: dict) -> ReviewQueue:
    return ReviewQueue.from_dict(
        state.get("safety", {}).get("queue", {})
    )


def _store_queue(state: dict, queue: ReviewQueue) -> dict:
    safety = dict(state.get("safety", {}))
    safety["queue"] = queue.to_dict()
    updated = dict(state)
    updated["safety"] = safety
    return updated


def cmd_list(queue: ReviewQueue) -> int:
    pending = queue.pending()
    if not pending:
        print("no pending recommendations")
        return 0
    print(f"{len(pending)} pending recommendation(s):")
    for rec in pending:
        creates = ", ".join(str(d) for d in rec.additions) or "(none)"
        drops = ", ".join(str(d) for d in rec.removals) or "(none)"
        print(
            f"  #{rec.rec_id}: create {creates}; drop {drops}; "
            f"predicted benefit {rec.predicted_benefit:,.1f}"
        )
        print(f"      gated because: {rec.reason}")
    return 0


def cmd_show(queue: ReviewQueue, rec_id: int) -> int:
    try:
        rec = queue.get(rec_id)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(rec.render())
    return 0


def cmd_resolve(
    directory,
    state: dict,
    queue: ReviewQueue,
    rec_id: int,
    accept: bool,
    note: str,
) -> int:
    try:
        rec = queue.resolve(rec_id, accept=accept, note=note)
    except (KeyError, ValueError) as exc:
        print(exc.args[0])
        return 2
    _save_state(directory, _store_queue(state, queue))
    verdict = "accepted" if accept else "rejected"
    print(
        f"recommendation #{rec.rec_id} {verdict}; the next advisor "
        "restoring this checkpoint will "
        + (
            "apply it transactionally"
            if accept
            else "fold the verdict into estimator training data"
        )
    )
    return 0


_COMMANDS = ("list", "show", "accept", "reject")

#: Pre-command option flags that consume the next token.
_VALUE_FLAGS = ("--checkpoint-dir", "--tenant")


def _extract_checkpoint(argv: List[str]):
    """Pull the legacy positional checkpoint directory out of argv.

    The positional lives *before* the subcommand (``CKPT list``),
    which argparse cannot disambiguate from a subcommand with its own
    positionals once the directory is optional (``--checkpoint-dir R
    --tenant T accept 3`` would misparse ``accept`` as the
    directory).  So the first bare token before the subcommand
    keyword is extracted by hand; everything else goes to argparse.
    """
    checkpoint = None
    rest: List[str] = []
    i = 0
    while i < len(argv):
        token = argv[i]
        if token in _COMMANDS:
            rest.extend(argv[i:])
            break
        if token.startswith("-"):
            rest.append(token)
            if token in _VALUE_FLAGS and i + 1 < len(argv):
                i += 1
                rest.append(argv[i])
        elif checkpoint is None:
            checkpoint = token
        else:
            rest.append(token)  # surplus: let argparse reject it
        i += 1
    return checkpoint, rest


def _resolve_directory(args):
    """Pick the checkpoint directory from the two addressing modes.

    Either the positional directory (single-advisor checkpoints) or
    ``--checkpoint-dir`` + ``--tenant`` (a daemon root holding
    ``tenant-<id>/`` namespaces) — exactly one of the two.
    """
    if args.checkpoint is not None and args.checkpoint_dir is not None:
        print(
            "pass either a positional checkpoint directory or "
            "--checkpoint-dir, not both"
        )
        return None
    if args.checkpoint is not None:
        return args.checkpoint
    if args.checkpoint_dir is None:
        print(
            "pass a checkpoint directory (positional) or "
            "--checkpoint-dir with --tenant"
        )
        return None
    if args.tenant is None:
        tenants = checkpoint.list_tenant_namespaces(args.checkpoint_dir)
        listing = ", ".join(tenants) if tenants else "(none found)"
        print(
            "--checkpoint-dir needs --tenant; tenants under "
            f"{args.checkpoint_dir!r}: {listing}"
        )
        return None
    return checkpoint.tenant_namespace(args.checkpoint_dir, args.tenant)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.review",
        usage=(
            "python -m repro.review [-h] [CHECKPOINT | "
            "--checkpoint-dir ROOT --tenant ID] "
            "{list,show,accept,reject} ..."
        ),
        description=(
            "Inspect and resolve the advisor's gated index "
            "recommendations stored in a checkpoint directory "
            "(positional CHECKPOINT, given before the subcommand) "
            "or in a daemon's per-tenant namespace "
            "(--checkpoint-dir with --tenant)."
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="daemon checkpoint root holding tenant-<id>/ namespaces",
    )
    parser.add_argument(
        "--tenant",
        default=None,
        help="tenant id to resolve inside --checkpoint-dir",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list pending recommendations")
    show = sub.add_parser("show", help="full explanation for one")
    show.add_argument("rec_id", type=int)
    accept = sub.add_parser(
        "accept", help="approve: applied on next advisor restore"
    )
    accept.add_argument("rec_id", type=int)
    accept.add_argument("--note", default="", help="verdict note")
    reject = sub.add_parser(
        "reject",
        help="decline: never applied, becomes training signal",
    )
    reject.add_argument("rec_id", type=int)
    reject.add_argument("--note", default="", help="verdict note")
    if argv is None:
        argv = sys.argv[1:]
    checkpoint, rest = _extract_checkpoint(list(argv))
    args = parser.parse_args(rest)
    args.checkpoint = checkpoint

    directory = _resolve_directory(args)
    if directory is None:
        return 2
    state = _load_state(directory)
    if state is None:
        print(
            f"no readable {SAFETY_COMPONENT} in "
            f"{str(directory)!r} (not an advisor checkpoint?)"
        )
        return 2
    queue = _queue_of(state)
    if args.command == "list":
        return cmd_list(queue)
    if args.command == "show":
        return cmd_show(queue, args.rec_id)
    return cmd_resolve(
        directory,
        state,
        queue,
        args.rec_id,
        accept=args.command == "accept",
        note=args.note,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
