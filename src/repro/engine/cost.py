"""Cost model constants, trackers, and the paper's maintenance formulas.

Two distinct cost surfaces live here:

* :class:`CostTracker` — counters charged by the *executor* while a
  query actually runs. Their weighted total is the deterministic
  "execution cost" the benchmarks report as latency.
* The Section V cost-feature formulas (:func:`index_io_cost`,
  :func:`index_cpu_cost`) that AutoIndex's estimator consumes —
  computed from index statistics without running anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

PAGE_SIZE = 8192
"""Bytes per heap/index page."""


@dataclass(frozen=True)
class CostParams:
    """Optimizer/executor cost weights (PostgreSQL-flavoured).

    ``random_page_cost`` uses the SSD-era 2.0 rather than the HDD-era
    4.0; index scans fetch heap pages bitmap-style (sorted, each page
    once), so the random/sequential gap is the main index-vs-seq knob.
    """

    seq_page_cost: float = 1.0
    random_page_cost: float = 2.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025


DEFAULT_PARAMS = CostParams()


@dataclass
class CostTracker:
    """Accumulates the physical work performed while executing queries.

    The executor charges these counters as it touches pages and tuples;
    :meth:`total` converts them into a single scalar cost using
    :class:`CostParams` weights. All benchmark latencies are sums of
    these totals, so runs are reproducible bit-for-bit.
    """

    seq_pages: float = 0.0
    random_pages: float = 0.0
    heap_tuples: float = 0.0
    index_tuples: float = 0.0
    operator_ops: float = 0.0
    index_pages_written: float = 0.0

    def charge_seq_pages(self, n: float) -> None:
        self.seq_pages += n

    def charge_random_pages(self, n: float) -> None:
        self.random_pages += n

    def charge_heap_tuples(self, n: float) -> None:
        self.heap_tuples += n

    def charge_index_tuples(self, n: float) -> None:
        self.index_tuples += n

    def charge_operator_ops(self, n: float) -> None:
        self.operator_ops += n

    def charge_index_page_writes(self, n: float) -> None:
        self.index_pages_written += n

    def add(self, other: "CostTracker") -> None:
        """Accumulate another tracker's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def total(self, params: CostParams = DEFAULT_PARAMS) -> float:
        """Weighted scalar cost of the recorded work."""
        return (
            self.seq_pages * params.seq_page_cost
            + self.random_pages * params.random_page_cost
            + self.heap_tuples * params.cpu_tuple_cost
            + self.index_tuples * params.cpu_index_tuple_cost
            + self.operator_ops * params.cpu_operator_cost
            + self.index_pages_written * params.seq_page_cost
        )

    def snapshot(self) -> "CostTracker":
        return CostTracker(
            seq_pages=self.seq_pages,
            random_pages=self.random_pages,
            heap_tuples=self.heap_tuples,
            index_tuples=self.index_tuples,
            operator_ops=self.operator_ops,
            index_pages_written=self.index_pages_written,
        )


NULL_TRACKER = CostTracker()
"""Shared sink for work that must happen but is charged at zero cost.

The paper's cost model treats DELETE-side index maintenance as free
(index entries are reclaimed after the query finishes); the physical
entry removal still has to occur for correctness, so it is performed
against this tracker and then discarded.
"""


def pages_fetched(matched_rows: float, heap_pages: float) -> float:
    """Expected distinct heap pages touched by a bitmap fetch.

    Cardenas' approximation: fetching ``m`` random rows from a ``P``-
    page heap touches ``P * (1 - (1 - 1/P)^m) ≈ P * (1 - e^(-m/P))``
    distinct pages. Index scans sort their matches by row id before
    fetching, so each page is read once.
    """
    if heap_pages <= 0 or matched_rows <= 0:
        return 0.0
    return min(
        heap_pages * (1.0 - math.exp(-matched_rows / heap_pages)),
        heap_pages,
    )


# ---------------------------------------------------------------------------
# Section V cost features
# ---------------------------------------------------------------------------


def index_io_cost(pages: float, params: CostParams = DEFAULT_PARAMS) -> float:
    """``C_io = |pages| * seq_page_cost`` (paper, Section V-A)."""
    return pages * params.seq_page_cost


def index_start_cost(
    num_tuples: float, height: int, params: CostParams = DEFAULT_PARAMS
) -> float:
    """``t_start = {ceil(log N) + (H+1)*50} * cpu_operator_cost``.

    The cost of descending the tree to locate the target leaf for an
    index update (paper, Section V-A).
    """
    log_term = math.ceil(math.log(num_tuples)) if num_tuples > 1 else 0
    return (log_term + (height + 1) * 50) * params.cpu_operator_cost


def index_running_cost(
    num_inserted: float, params: CostParams = DEFAULT_PARAMS
) -> float:
    """``t_running = N_insert * cpu_index_tuple_cost`` (Section V-A)."""
    return num_inserted * params.cpu_index_tuple_cost


def index_cpu_cost(
    num_tuples: float,
    height: int,
    num_inserted: float,
    params: CostParams = DEFAULT_PARAMS,
) -> float:
    """``C_cpu = t_start + t_running`` (paper, Section V-A)."""
    return index_start_cost(num_tuples, height, params) + index_running_cost(
        num_inserted, params
    )
