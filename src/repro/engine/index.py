"""Index definitions, materialised indexes, and hypothetical indexes.

Hypothetical indexes reproduce the hypopg mechanism the paper uses
(Section V, C2.1): the planner costs them from catalog statistics as if
they existed, but no B+Tree is built, so candidate configurations can
be evaluated at near-zero cost.

Index **scope** implements the paper's partitioned-table extension
(Section III): on a hash-partitioned table a GLOBAL index is one tree
whose entries carry wider cross-partition row pointers (fast lookup,
more space), while a LOCAL index is one smaller tree per partition
(less space per entry, but a lookup that cannot prune to one partition
must probe every per-partition tree).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.btree import (
    BTree,
    EncodedKey,
    encode_key,
    estimate_btree_shape,
)
from repro.engine.cost import PAGE_SIZE, CostTracker
from repro.engine.schema import TableSchema
from repro.engine.stats import TableStats
from repro.engine.storage import Rid, Row

# Extra bytes per entry for a global index over a partitioned table
# (cross-partition row pointer).
GLOBAL_POINTER_WIDTH = 16


class IndexScope(enum.Enum):
    """Index scope for partitioned tables (paper, Section III)."""

    GLOBAL = "global"
    LOCAL = "local"


@dataclass(frozen=True)
class IndexDef:
    """The logical identity of an index: table + ordered column list.

    This is the unit the advisor reasons about; two IndexDefs with the
    same table, columns, and scope are the same index regardless of
    name.
    """

    table: str
    columns: Tuple[str, ...]
    name: Optional[str] = None
    unique: bool = False
    scope: IndexScope = IndexScope.GLOBAL

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("an index must cover at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(
                f"duplicate columns in index on {self.table}: {self.columns}"
            )
        # ``key`` is read on every cache lookup and sort in the
        # advisor's hot path; build it once.
        if self.scope is IndexScope.LOCAL:
            key = (self.table, self.columns, "local")
        else:
            key = (self.table, self.columns)
        object.__setattr__(self, "_key", key)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (checkpoint components, review queue)."""
        return {
            "table": self.table,
            "columns": list(self.columns),
            "name": self.name,
            "unique": self.unique,
            "scope": self.scope.value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IndexDef":
        return cls(
            table=str(data["table"]),
            columns=tuple(data["columns"]),  # type: ignore[arg-type]
            name=data.get("name"),  # type: ignore[arg-type]
            unique=bool(data.get("unique", False)),
            scope=IndexScope(data.get("scope", "global")),
        )

    @property
    def key(self) -> Tuple:
        """Identity key: (table, columns[, scope for LOCAL]).

        Scope only differentiates LOCAL indexes so that unpartitioned
        catalogs keep the compact two-element key.
        """
        return self._key

    @property
    def display_name(self) -> str:
        if self.name:
            return self.name
        suffix = "_local" if self.scope is IndexScope.LOCAL else ""
        return f"idx_{self.table}_" + "_".join(self.columns) + suffix

    def is_prefix_of(self, other: "IndexDef") -> bool:
        """True if this index is redundant given ``other``.

        Implements the paper's leftmost-matching merge rule: an index
        on ``(a)`` is subsumed by an index on ``(a, b)`` of the same
        scope.
        """
        if self.table != other.table or self.scope is not other.scope:
            return False
        if len(self.columns) > len(other.columns):
            return False
        return other.columns[: len(self.columns)] == self.columns

    def __str__(self) -> str:
        scope = " LOCAL" if self.scope is IndexScope.LOCAL else ""
        return f"{self.table}({', '.join(self.columns)}){scope}"


class Index:
    """A materialised secondary index backed by real B+Trees.

    GLOBAL scope (or an unpartitioned table): one tree. LOCAL scope on
    a partitioned table: one tree per partition, routed by the table's
    hash partition key.
    """

    def __init__(self, definition: IndexDef, schema: TableSchema):
        self.definition = definition
        self.schema = schema
        self._column_positions = tuple(
            schema.column_index(c) for c in definition.columns
        )
        key_width = sum(
            schema.column(c).byte_width for c in definition.columns
        )
        if (
            definition.scope is IndexScope.GLOBAL
            and schema.is_partitioned
        ):
            key_width += GLOBAL_POINTER_WIDTH
        self._is_local = (
            definition.scope is IndexScope.LOCAL and schema.is_partitioned
        )
        self.partition_count = (
            schema.partition_count if self._is_local else 1
        )
        self._partition_position = (
            schema.column_index(schema.partition_key)
            if self._is_local and schema.partition_key is not None
            else None
        )
        self._trees = [
            BTree(key_byte_width=key_width)
            for _ in range(self.partition_count)
        ]
        # Usage metrics consumed by index diagnosis.
        self.lookup_count = 0
        self.maintenance_count = 0

    # -- structure ---------------------------------------------------------------

    @property
    def tree(self) -> BTree:
        """The single tree of a global/unpartitioned index."""
        if len(self._trees) != 1:
            raise AttributeError(
                "local partitioned index has no single tree; use "
                "scan_range / search_eq"
            )
        return self._trees[0]

    @property
    def trees(self) -> List[BTree]:
        return list(self._trees)

    @property
    def num_columns(self) -> int:
        return len(self.definition.columns)

    @property
    def height(self) -> int:
        return max(tree.height for tree in self._trees)

    @property
    def page_count(self) -> int:
        return sum(tree.page_count for tree in self._trees)

    @property
    def leaf_page_count(self) -> int:
        return sum(tree.leaf_page_count for tree in self._trees)

    @property
    def byte_size(self) -> int:
        return self.page_count * PAGE_SIZE

    @property
    def entry_count(self) -> int:
        return sum(tree.entry_count for tree in self._trees)

    # -- routing ------------------------------------------------------------------

    def key_for_row(self, row: Row) -> Tuple[object, ...]:
        return tuple(row[pos] for pos in self._column_positions)

    def _partition_for_row(self, row: Row) -> int:
        if self._partition_position is None:
            return 0
        return self.schema.partition_of(row[self._partition_position])

    def prune_partition(
        self, eq_values: Dict[str, object]
    ) -> Optional[int]:
        """Partition a lookup can be pruned to, if the equality values
        bind the table's partition key; None means probe all."""
        if not self._is_local or self.schema.partition_key is None:
            return 0 if len(self._trees) == 1 else None
        value = eq_values.get(self.schema.partition_key, _MISSING)
        if value is _MISSING:
            return None
        return self.schema.partition_of(value)

    # -- maintenance ---------------------------------------------------------------

    def build(self, rows: Sequence[Tuple[Rid, Row]]) -> None:
        """Bulk-load the index from the table's current contents."""
        buckets: List[List[Tuple[EncodedKey, Rid]]] = [
            [] for _ in self._trees
        ]
        for rid, row in rows:
            buckets[self._partition_for_row(row)].append(
                (encode_key(self.key_for_row(row)), rid)
            )
        for tree, entries in zip(self._trees, buckets):
            tree.bulk_load(entries)

    def insert_row(self, rid: Rid, row: Row) -> int:
        """Index a new row; returns the number of page splits."""
        self.maintenance_count += 1
        tree = self._trees[self._partition_for_row(row)]
        return tree.insert(encode_key(self.key_for_row(row)), rid)

    def delete_row(self, rid: Rid, row: Row) -> bool:
        self.maintenance_count += 1
        tree = self._trees[self._partition_for_row(row)]
        return tree.delete(encode_key(self.key_for_row(row)), rid)

    # -- lookups -----------------------------------------------------------------

    def scan_range(
        self,
        lo: EncodedKey,
        hi: EncodedKey,
        tracker: Optional[CostTracker] = None,
        partition: Optional[int] = None,
    ) -> Iterator[Tuple[EncodedKey, Rid]]:
        """Scan [lo, hi]; a LOCAL index probes every partition unless
        ``partition`` prunes the lookup to one tree."""
        if partition is not None:
            yield from self._trees[partition].scan_range(lo, hi, tracker)
            return
        for tree in self._trees:
            yield from tree.scan_range(lo, hi, tracker)

    def covers_columns(self, columns: Sequence[str]) -> bool:
        """True if all ``columns`` appear in the index (for index-only)."""
        return set(columns) <= set(self.definition.columns)


_MISSING = object()


@dataclass(frozen=True)
class IndexShape:
    """Physical shape used for costing (real or estimated)."""

    height: int
    leaf_pages: int
    total_pages: int
    entry_count: int
    partitions: int = 1  # trees probed by a non-pruning lookup

    @property
    def byte_size(self) -> int:
        return self.total_pages * PAGE_SIZE


def shape_of_index(index: Index) -> IndexShape:
    """Shape of a materialised index (exact)."""
    return IndexShape(
        height=index.height,
        leaf_pages=index.leaf_page_count,
        total_pages=index.page_count,
        entry_count=index.entry_count,
        partitions=index.partition_count,
    )


def hypothetical_shape(
    definition: IndexDef, schema: TableSchema, stats: TableStats
) -> IndexShape:
    """Estimated shape of an index that does not exist (hypopg-style).

    Uses the same fanout math as the real B+Tree so what-if costs line
    up with materialised indexes; scope changes entry width (GLOBAL on
    a partitioned table) or tree count (LOCAL).
    """
    key_width = sum(
        schema.column(c).byte_width for c in definition.columns
    )
    is_local = (
        definition.scope is IndexScope.LOCAL and schema.is_partitioned
    )
    if definition.scope is IndexScope.GLOBAL and schema.is_partitioned:
        key_width += GLOBAL_POINTER_WIDTH
    if is_local:
        partitions = schema.partition_count
        per_partition = max(stats.row_count // partitions, 0)
        height, leaves, total = estimate_btree_shape(
            per_partition, key_width
        )
        return IndexShape(
            height=height,
            leaf_pages=leaves * partitions,
            total_pages=total * partitions,
            entry_count=stats.row_count,
            partitions=partitions,
        )
    height, leaves, total = estimate_btree_shape(stats.row_count, key_width)
    return IndexShape(
        height=height,
        leaf_pages=leaves,
        total_pages=total,
        entry_count=stats.row_count,
    )
