"""Relational engine substrate.

A from-scratch, pure-Python stand-in for the openGauss kernel the paper
deploys on: heap storage with page layout, real B+Tree secondary
indexes, ANALYZE statistics, a cost-based planner, and an executor that
counts page and tuple work so workload "latency" is deterministic.
"""

from repro.engine.cost import CostParams, CostTracker
from repro.engine.database import Database, ExecutionResult
from repro.engine.index import IndexDef, IndexScope
from repro.engine.schema import Column, ColumnType, TableSchema

__all__ = [
    "Column",
    "ColumnType",
    "CostParams",
    "CostTracker",
    "Database",
    "ExecutionResult",
    "IndexDef",
    "IndexScope",
    "TableSchema",
]
