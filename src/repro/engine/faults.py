"""Deterministic fault injection for resilience testing.

The tuning runtime is exercised under failure with *seeded, replayable*
faults: a :class:`FaultPlan` names the fault points to perturb (with a
per-visit probability and/or an explicit visit schedule), and a
:class:`FaultInjector` built from the plan is threaded through the
engine and advisor. Every decision is a pure function of the plan seed
and the visit sequence — no wall clock, no global RNG — so a chaos run
replays bit-identically under the same seed.

Fault points wired into the stack (see ``FAULT_POINTS``):

* ``parser.parse``       — :meth:`Database.parse_statement`
* ``planner.plan``       — :meth:`Planner.plan`
* ``estimator.predict``  — ``BenefitEstimator`` model predictions
* ``index.build``        — :meth:`Database.create_index` B+Tree build
* ``stats.refresh``      — :meth:`Database.analyze`
* ``checkpoint.io``      — advisor ``save_state`` / ``load_state``

Faults are typed: a :class:`TransientFault` models a recoverable blip
(retry is expected to succeed eventually); a :class:`PermanentFault`
models a hard failure (retry is pointless, the caller must degrade).

This module is also home to :class:`VirtualClock`, the sanctioned
backoff/deadline helper: retries "sleep" by advancing a virtual
timestamp, so backoff schedules are deterministic and free. A real
wall-clock mode exists only for the chaos bench (``real=True``), which
is why this module appears on the determinism linter's clock
whitelist.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: The named fault points components consult via ``check(point)``.
FAULT_POINTS: Tuple[str, ...] = (
    "parser.parse",
    "planner.plan",
    "estimator.predict",
    "index.build",
    "stats.refresh",
    "checkpoint.io",
)

TRANSIENT = "transient"
PERMANENT = "permanent"


class FaultError(Exception):
    """Base class of injected faults."""

    def __init__(self, point: str, visit: int):
        super().__init__(f"injected fault at {point} (visit {visit})")
        self.point = point
        self.visit = visit


class TransientFault(FaultError):
    """A recoverable blip: retrying the operation may succeed."""


class PermanentFault(FaultError):
    """A hard failure: retrying cannot help, the caller must degrade."""


@dataclass(frozen=True)
class FaultRule:
    """When (and how) one fault point misbehaves.

    ``probability`` fires a Bernoulli draw on every visit (from a
    per-point seeded stream); ``schedule`` additionally fires on the
    listed 1-based visit ordinals; ``limit`` caps the total number of
    fires for the rule (``None`` = unlimited).
    """

    point: str
    probability: float = 0.0
    schedule: Tuple[int, ...] = ()
    kind: str = TRANSIENT
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {', '.join(FAULT_POINTS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.kind not in (TRANSIENT, PERMANENT):
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """A seeded collection of fault rules (the chaos scenario)."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def add(
        self,
        point: str,
        probability: float = 0.0,
        schedule: Sequence[int] = (),
        kind: str = TRANSIENT,
        limit: Optional[int] = None,
    ) -> "FaultPlan":
        """Append one rule; chainable."""
        self.rules.append(
            FaultRule(
                point=point,
                probability=probability,
                schedule=tuple(schedule),
                kind=kind,
                limit=limit,
            )
        )
        return self

    @classmethod
    def chaos(
        cls,
        seed: int,
        rate: float = 0.2,
        points: Sequence[str] = FAULT_POINTS,
        kind: str = TRANSIENT,
    ) -> "FaultPlan":
        """A uniform-probability plan over ``points`` (the chaos bench)."""
        plan = cls(seed=seed)
        for point in points:
            plan.add(point, probability=rate, kind=kind)
        return plan

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


class _Suppression:
    """Context manager pausing injection (used during rollback)."""

    def __init__(self, injector: "FaultInjector"):
        self._injector = injector

    def __enter__(self) -> "FaultInjector":
        self._injector._suppress_depth += 1
        return self._injector

    def __exit__(self, *exc_info) -> None:
        self._injector._suppress_depth -= 1


class FaultInjector:
    """Executes a :class:`FaultPlan` with per-point seeded streams.

    Each fault point gets its own ``random.Random`` stream derived
    from (plan seed, point name), so adding a rule for one point never
    shifts the draws of another — plans compose without perturbing
    each other's replay.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rules: Dict[str, List[FaultRule]] = {}
        for rule in plan.rules:
            self._rules.setdefault(rule.point, []).append(rule)
        self._streams: Dict[str, Random] = {
            point: Random(f"{plan.seed}:{point}") for point in self._rules
        }
        self._schedules: Dict[int, frozenset] = {
            id(rule): frozenset(rule.schedule) for rule in plan.rules
        }
        self.visits: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self._fired_by_rule: Dict[int, int] = {}
        self._suppress_depth = 0

    # -- the hot entry point ------------------------------------------------

    def check(self, point: str) -> None:
        """Visit one fault point; raises when a rule fires.

        Visits are counted even while suppressed (the counter is the
        replay coordinate), but no fault fires and no random draw is
        consumed inside a :meth:`suppressed` block.
        """
        visit = self.visits.get(point, 0) + 1
        self.visits[point] = visit
        if self._suppress_depth:
            return
        rules = self._rules.get(point)
        if not rules:
            return
        for rule in rules:
            if (
                rule.limit is not None
                and self._fired_by_rule.get(id(rule), 0) >= rule.limit
            ):
                continue
            fires = visit in self._schedules[id(rule)]
            if not fires and rule.probability > 0.0:
                fires = (
                    self._streams[point].random() < rule.probability
                )
            if not fires:
                continue
            self.fired[point] = self.fired.get(point, 0) + 1
            self._fired_by_rule[id(rule)] = (
                self._fired_by_rule.get(id(rule), 0) + 1
            )
            exc = (
                PermanentFault if rule.kind == PERMANENT else TransientFault
            )
            raise exc(point, visit)

    def suppressed(self) -> _Suppression:
        """Pause injection (e.g. while rolling back a changeset)."""
        return _Suppression(self)

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point visit and fire counters (for chaos reports)."""
        points = sorted(set(self.visits) | set(self.fired))
        return {
            point: {
                "visits": self.visits.get(point, 0),
                "fired": self.fired.get(point, 0),
            }
            for point in points
        }

    def total_fired(self) -> int:
        return sum(self.fired.values())


def check(injector: Optional[FaultInjector], point: str) -> None:
    """``injector.check(point)`` tolerating ``injector=None``.

    The convenience shim components call so that the no-faults
    production path stays a single identity comparison.
    """
    if injector is not None:
        injector.check(point)


# ---------------------------------------------------------------------------
# Deterministic backoff
# ---------------------------------------------------------------------------


class VirtualClock:
    """A clock whose ``sleep`` advances virtual time by default.

    Retry backoff must not depend on the wall clock (replays would
    diverge), so the default clock just accumulates the requested
    delays. ``real=True`` additionally sleeps for real — used only by
    the chaos bench when simulating live backpressure.
    """

    def __init__(self, real: bool = False):
        self.real = real
        self._virtual = 0.0

    def now(self) -> float:
        """Virtual seconds slept so far."""
        return self._virtual

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._virtual += seconds
        if self.real:
            time.sleep(seconds)


def backoff_delay(
    attempt: int,
    base: float = 0.01,
    factor: float = 2.0,
    cap: float = 1.0,
) -> float:
    """Deterministic exponential backoff: ``min(base*factor^n, cap)``.

    No jitter on purpose: jitter exists to de-synchronise independent
    clients, which does not apply in-process, and determinism is worth
    more here.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    return min(base * (factor ** attempt), cap)


def backoff_schedule(
    attempts: int,
    base: float = 0.01,
    factor: float = 2.0,
    cap: float = 1.0,
) -> Iterator[float]:
    """The full delay sequence for ``attempts`` retries."""
    for attempt in range(attempts):
        yield backoff_delay(attempt, base=base, factor=factor, cap=cap)
