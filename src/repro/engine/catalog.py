"""System catalog: tables, indexes, and statistics in one registry.

The catalog also implements the *what-if* overlay: a set of
hypothetical index definitions can be layered on (and real indexes
masked off) so the planner sees an alternative index configuration
without anything being built — the hypopg mechanism of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.index import (
    Index,
    IndexDef,
    IndexShape,
    hypothetical_shape,
    shape_of_index,
)
from repro.engine.schema import TableSchema
from repro.engine.stats import TableStats
from repro.engine.storage import HeapFile

IndexKey = Tuple[str, Tuple[str, ...]]


@dataclass
class TableEntry:
    """Everything the engine knows about one table."""

    schema: TableSchema
    heap: HeapFile
    stats: TableStats = field(default_factory=TableStats)
    indexes: Dict[IndexKey, Index] = field(default_factory=dict)


class Catalog:
    """Registry of tables, indexes, statistics, and what-if overlays."""

    # cache-keys: fields[_tables] invalidator[bump_version]

    def __init__(self) -> None:
        self._tables: Dict[str, TableEntry] = {}
        self._hypothetical: Dict[IndexKey, IndexDef] = {}
        self._masked: Set[IndexKey] = set()
        # Monotonic data/DDL version. Cached plans and cost estimates
        # embed this in their keys, so any change that can move an
        # estimate (new data, new stats, new real index) invalidates
        # them without a scan. What-if overlays do NOT bump it: the
        # overlay is captured explicitly via index signatures.
        self.version = 0

    def bump_version(self) -> None:
        """Signal that data, stats, or the real index set changed."""
        self.version += 1

    # -- tables ---------------------------------------------------------------

    def add_table(self, schema: TableSchema) -> TableEntry:
        if schema.name in self._tables:
            raise ValueError(f"table {schema.name!r} already exists")
        entry = TableEntry(schema=schema, heap=HeapFile(schema))
        self._tables[schema.name] = entry
        self.bump_version()
        return entry

    def drop_table(self, name: str) -> None:
        self._tables.pop(name)
        self.bump_version()

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return list(self._tables)

    def stats(self, table: str) -> TableStats:
        return self.table(table).stats

    # -- real indexes ------------------------------------------------------------

    def add_index(self, index: Index) -> None:
        entry = self.table(index.definition.table)
        key = index.definition.key
        if key in entry.indexes:
            raise ValueError(f"index on {key} already exists")
        entry.indexes[key] = index
        self.bump_version()

    def drop_index(self, definition: IndexDef) -> Index:
        entry = self.table(definition.table)
        try:
            index = entry.indexes.pop(definition.key)
        except KeyError:
            raise KeyError(f"no such index: {definition}") from None
        self.bump_version()
        return index

    def get_index(self, definition: IndexDef) -> Optional[Index]:
        entry = self._tables.get(definition.table)
        if entry is None:
            return None
        return entry.indexes.get(definition.key)

    def real_indexes(self, table: Optional[str] = None) -> List[Index]:
        if table is not None:
            return list(self.table(table).indexes.values())
        result: List[Index] = []
        for entry in self._tables.values():
            result.extend(entry.indexes.values())
        return result

    def real_index_defs(self) -> List[IndexDef]:
        return [ix.definition for ix in self.real_indexes()]

    # -- what-if overlay -----------------------------------------------------------

    def set_whatif(
        self,
        hypothetical: Iterable[IndexDef] = (),
        masked: Iterable[IndexDef] = (),
    ) -> None:
        """Install a what-if overlay.

        ``hypothetical`` definitions become visible to the planner;
        ``masked`` real indexes become invisible. The executor never
        consults the overlay, so hypothetical indexes can never be
        *used*, only costed.
        """
        self._hypothetical = {d.key: d for d in hypothetical}
        self._masked = {d.key for d in masked}

    def clear_whatif(self) -> None:
        self._hypothetical = {}
        self._masked = set()

    @property
    def whatif_active(self) -> bool:
        return bool(self._hypothetical) or bool(self._masked)

    def visible_index_defs(self, table: str) -> List[IndexDef]:
        """Index definitions the planner may consider for ``table``."""
        entry = self.table(table)
        defs = [
            ix.definition
            for key, ix in entry.indexes.items()
            if key not in self._masked
        ]
        defs.extend(
            d for d in self._hypothetical.values() if d.table == table
        )
        return defs

    def table_index_signature(self, table: str) -> Tuple:
        """Hashable fingerprint of the index set visible on ``table``.

        Includes each visible index's identity key plus whether it is
        materialised (a real B+Tree's measured shape differs from a
        hypothetical estimate, so the two must not share cached
        plans). Used as a plan/cost cache key component.
        """
        return self.index_signature_of(self.visible_index_defs(table))

    def index_signature_of(self, defs: Sequence[IndexDef]) -> Tuple:
        """Signature of an explicit definition subset.

        The planner keys its access-path memo on the subset of visible
        indexes that can actually serve the probe (sargable lead
        column), not the whole visible set — configurations differing
        only in indexes irrelevant to a statement then share entries.
        """
        return tuple(
            sorted((d.key, self.is_materialized(d)) for d in defs)
        )

    def index_shape(self, definition: IndexDef) -> IndexShape:
        """Physical shape for costing — exact if built, estimated if not."""
        real = self.get_index(definition)
        if real is not None and definition.key not in self._masked:
            return shape_of_index(real)
        entry = self.table(definition.table)
        return hypothetical_shape(definition, entry.schema, entry.stats)

    def is_materialized(self, definition: IndexDef) -> bool:
        real = self.get_index(definition)
        return real is not None and definition.key not in self._masked

    # -- sizes -----------------------------------------------------------------------

    def total_index_bytes(self, table: Optional[str] = None) -> int:
        return sum(ix.byte_size for ix in self.real_indexes(table))
