"""Table and column schema definitions."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


class ColumnType(enum.Enum):
    """Supported column types with fixed on-page widths (bytes)."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @property
    def default_width(self) -> int:
        return _TYPE_WIDTHS[self]


_TYPE_WIDTHS = {
    ColumnType.INT: 8,
    ColumnType.FLOAT: 8,
    ColumnType.TEXT: 24,
    ColumnType.BOOL: 1,
}


@dataclass(frozen=True)
class Column:
    """A column definition.

    ``width`` is the average on-page byte width used for page layout
    and index size estimation; TEXT columns can override the default.
    """

    name: str
    type: ColumnType
    nullable: bool = True
    width: Optional[int] = None

    @property
    def byte_width(self) -> int:
        if self.width is not None:
            return self.width
        return self.type.default_width


@dataclass(frozen=True)
class TableSchema:
    """A table definition: ordered columns plus an optional primary key.

    ``partition_count``/``partition_key`` declare hash partitioning,
    which enables the paper's global-vs-local index scope selection:
    a LOCAL index is one B+Tree per partition (smaller trees, but
    non-pruning lookups probe every partition), a GLOBAL index is one
    tree over all partitions with wider cross-partition row pointers.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...] = ()
    partition_count: int = 1
    partition_key: Optional[str] = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {self.name!r}")
        missing = [k for k in self.primary_key if k not in names]
        if missing:
            raise ValueError(
                f"primary key columns {missing} not in table {self.name!r}"
            )
        if self.partition_count < 1:
            raise ValueError("partition_count must be >= 1")
        if self.partition_count > 1 and self.partition_key is None:
            raise ValueError("partitioned tables need a partition_key")
        if self.partition_key is not None and self.partition_key not in names:
            raise ValueError(
                f"partition key {self.partition_key!r} not in table "
                f"{self.name!r}"
            )

    @property
    def is_partitioned(self) -> bool:
        return self.partition_count > 1

    def partition_of(self, value: object) -> int:
        """Hash partition id for a partition-key value."""
        if not self.is_partitioned:
            return 0
        return hash(value) % self.partition_count

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def row_byte_width(self) -> int:
        """Average bytes per row, including a small tuple header."""
        header = 24
        return header + sum(c.byte_width for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no column {name!r} in table {self.name!r}")


def table(
    name: str,
    columns: Sequence[Tuple[str, ColumnType]],
    primary_key: Sequence[str] = (),
    widths: Optional[Dict[str, int]] = None,
    partition_count: int = 1,
    partition_key: Optional[str] = None,
) -> TableSchema:
    """Shorthand constructor used heavily by the workload generators."""
    widths = widths or {}
    cols = tuple(
        Column(name=n, type=t, width=widths.get(n)) for n, t in columns
    )
    return TableSchema(
        name=name,
        columns=cols,
        primary_key=tuple(primary_key),
        partition_count=partition_count,
        partition_key=partition_key,
    )
