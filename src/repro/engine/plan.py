"""Physical plan nodes.

Plans are trees of light dataclasses annotated with the optimizer's
row/cost estimates. Column references inside plan predicates are fully
qualified by the planner (``binding.column``), so the executor never
performs name resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.index import IndexDef
from repro.sql import ast


@dataclass
class PlanNode:
    """Base plan node with optimizer estimates."""

    est_rows: float = field(default=0.0, init=False)
    est_cost: float = field(default=0.0, init=False)

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        label = (
            f"{pad}{self.describe()} "
            f"(rows={self.est_rows:.0f} cost={self.est_cost:.2f})"
        )
        lines = [label]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class SeqScanPlan(PlanNode):
    """Full heap scan with an optional residual filter."""

    table: str
    binding: str
    predicate: Optional[ast.Expr] = None

    def describe(self) -> str:
        pred = f" filter={self.predicate}" if self.predicate else ""
        return f"SeqScan {self.table} as {self.binding}{pred}"


@dataclass
class IndexScanPlan(PlanNode):
    """B+Tree scan: equality prefix + optional range on the next column.

    ``eq_exprs`` are expressions for the leading equality columns; in a
    parameterized (join inner) scan they reference outer-side columns.
    The full pushed-down ``predicate`` is always re-checked against
    fetched rows, so bounds are purely an access-path optimization.
    """

    table: str
    binding: str
    index: IndexDef
    eq_exprs: Tuple[ast.Expr, ...] = ()
    range_column: Optional[str] = None
    range_low: Optional[ast.Expr] = None
    range_high: Optional[ast.Expr] = None
    range_low_inclusive: bool = True
    range_high_inclusive: bool = True
    predicate: Optional[ast.Expr] = None
    index_only: bool = False

    def describe(self) -> str:
        parts = [f"IndexScan {self.index.display_name} on {self.binding}"]
        if self.eq_exprs:
            parts.append(f"eq={[str(e) for e in self.eq_exprs]}")
        if self.range_column:
            parts.append(
                f"range {self.range_low}..{self.range_high} on {self.range_column}"
            )
        if self.index_only:
            parts.append("index-only")
        return " ".join(parts)


@dataclass
class SubqueryScanPlan(PlanNode):
    """A derived table: re-bases the child's output under a new alias."""

    child: PlanNode
    binding: str
    output_columns: Tuple[str, ...] = ()
    items: Tuple[ast.SelectItem, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"SubqueryScan as {self.binding}"


@dataclass
class FilterPlan(PlanNode):
    """Row filter on an arbitrary predicate."""

    child: PlanNode
    predicate: ast.Expr = None  # type: ignore[assignment]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter {self.predicate}"


@dataclass
class NestedLoopPlan(PlanNode):
    """Nested-loop join; the inner side is re-evaluated per outer row.

    When the inner side is a parameterized :class:`IndexScanPlan`, its
    ``eq_exprs`` reference outer columns — this is the index
    nested-loop join that makes the paper's Q32-style index
    combinations pay off.
    """

    outer: PlanNode = None  # type: ignore[assignment]
    inner: PlanNode = None  # type: ignore[assignment]
    predicate: Optional[ast.Expr] = None

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.outer, self.inner)

    def describe(self) -> str:
        pred = f" on {self.predicate}" if self.predicate else ""
        return f"NestedLoopJoin{pred}"


@dataclass
class HashJoinPlan(PlanNode):
    """Equi-hash-join; builds on the right side, probes with the left."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]
    left_keys: Tuple[ast.Expr, ...] = ()
    right_keys: Tuple[ast.Expr, ...] = ()
    predicate: Optional[ast.Expr] = None

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin on {keys}"


@dataclass
class SortPlan(PlanNode):
    """Sort on ORDER BY keys."""

    child: PlanNode = None  # type: ignore[assignment]
    keys: Tuple[ast.OrderItem, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Sort " + ", ".join(str(k) for k in self.keys)


@dataclass
class AggregatePlan(PlanNode):
    """Hash aggregation over optional group keys."""

    child: PlanNode = None  # type: ignore[assignment]
    group_exprs: Tuple[ast.Expr, ...] = ()
    aggregates: Tuple[ast.FuncCall, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return (
            "Aggregate group="
            + str([str(g) for g in self.group_exprs])
            + " aggs="
            + str([str(a) for a in self.aggregates])
        )


@dataclass
class ProjectPlan(PlanNode):
    """Final SELECT-list evaluation."""

    child: PlanNode = None  # type: ignore[assignment]
    items: Tuple[ast.SelectItem, ...] = ()
    star_bindings: Tuple[str, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Project " + ", ".join(str(i) for i in self.items)


@dataclass
class DistinctPlan(PlanNode):
    """Duplicate elimination over fully projected rows."""

    child: PlanNode = None  # type: ignore[assignment]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class LimitPlan(PlanNode):
    """Row-count limit."""

    child: PlanNode = None  # type: ignore[assignment]
    limit: int = 0

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit {self.limit}"


@dataclass
class InsertPlan(PlanNode):
    """Insert of pre-evaluated literal rows."""

    table: str = ""
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[object, ...], ...] = ()

    def describe(self) -> str:
        return f"Insert {self.table} ({len(self.rows)} rows)"


@dataclass
class UpdatePlan(PlanNode):
    """Update of rows produced by the child scan."""

    child: PlanNode = None  # type: ignore[assignment]
    table: str = ""
    binding: str = ""
    assignments: Tuple[ast.Assignment, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Update {self.table}"


@dataclass
class DeletePlan(PlanNode):
    """Delete of rows produced by the child scan."""

    child: PlanNode = None  # type: ignore[assignment]
    table: str = ""
    binding: str = ""

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Delete {self.table}"


def walk_plan(plan: PlanNode):
    """Yield every node in the plan tree, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)


def indexes_used(plan: PlanNode) -> List[IndexDef]:
    """All index definitions referenced by scans in the plan."""
    return [
        node.index
        for node in walk_plan(plan)
        if isinstance(node, IndexScanPlan)
    ]
