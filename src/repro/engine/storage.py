"""Heap storage: slotted pages of rows, addressed by RID.

Rows are stored as plain tuples in column order. The page layout is a
simulation — Python objects, not bytes — but page *counts* are derived
from real byte widths, so sequential-scan IO, index size, and storage
budgets behave like a disk-resident system.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.engine.cost import PAGE_SIZE, CostTracker
from repro.engine.schema import TableSchema

Rid = Tuple[int, int]
"""Row identifier: (page number, slot number)."""

Row = Tuple[object, ...]


class HeapFile:
    """An append-mostly heap of fixed-capacity pages.

    Deleted slots are tombstoned (set to None) and reused by later
    inserts via a free list, mirroring how a real heap keeps page count
    stable under churn.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows_per_page = max(1, PAGE_SIZE // schema.row_byte_width)
        self._pages: List[List[Optional[Row]]] = []
        self._free: List[Rid] = []
        self._live_count = 0

    # -- properties -----------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self._live_count

    @property
    def byte_size(self) -> int:
        return self.page_count * PAGE_SIZE

    # -- mutations ------------------------------------------------------------

    def insert(self, row: Row, tracker: Optional[CostTracker] = None) -> Rid:
        """Insert a row, reusing a free slot when available."""
        if len(row) != len(self.schema.columns):
            raise ValueError(
                f"row width {len(row)} != schema width "
                f"{len(self.schema.columns)} for table {self.schema.name!r}"
            )
        if self._free:
            rid = self._free.pop()
            self._pages[rid[0]][rid[1]] = row
        else:
            if not self._pages or len(self._pages[-1]) >= self.rows_per_page:
                self._pages.append([])
            page_no = len(self._pages) - 1
            self._pages[page_no].append(row)
            rid = (page_no, len(self._pages[page_no]) - 1)
        self._live_count += 1
        if tracker is not None:
            tracker.charge_random_pages(1)
            tracker.charge_heap_tuples(1)
        return rid

    def update(
        self, rid: Rid, row: Row, tracker: Optional[CostTracker] = None
    ) -> None:
        """Overwrite the row at ``rid`` in place."""
        self._check(rid)
        self._pages[rid[0]][rid[1]] = row
        if tracker is not None:
            tracker.charge_random_pages(1)
            tracker.charge_heap_tuples(1)

    def delete(self, rid: Rid, tracker: Optional[CostTracker] = None) -> Row:
        """Tombstone the row at ``rid`` and return it."""
        row = self._check(rid)
        self._pages[rid[0]][rid[1]] = None
        self._free.append(rid)
        self._live_count -= 1
        if tracker is not None:
            tracker.charge_random_pages(1)
            tracker.charge_heap_tuples(1)
        return row

    # -- reads ----------------------------------------------------------------

    def fetch(self, rid: Rid, tracker: Optional[CostTracker] = None) -> Row:
        """Random-access fetch of one row (one random page IO)."""
        row = self._check(rid)
        if tracker is not None:
            tracker.charge_random_pages(1)
            tracker.charge_heap_tuples(1)
        return row

    def scan(
        self, tracker: Optional[CostTracker] = None
    ) -> Iterator[Tuple[Rid, Row]]:
        """Full sequential scan; charges one sequential IO per page."""
        for page_no, page in enumerate(self._pages):
            if tracker is not None:
                tracker.charge_seq_pages(1)
            for slot, row in enumerate(page):
                if row is None:
                    continue
                if tracker is not None:
                    tracker.charge_heap_tuples(1)
                yield (page_no, slot), row

    def _check(self, rid: Rid) -> Row:
        page_no, slot = rid
        try:
            row = self._pages[page_no][slot]
        except IndexError:
            raise KeyError(f"invalid rid {rid}") from None
        if row is None:
            raise KeyError(f"rid {rid} is deleted")
        return row
