"""ANALYZE-style statistics and selectivity estimation.

The planner and the candidate generator both rely on these estimates:
the paper gates filter-predicate candidates on a selectivity threshold
(Section IV-A) and the optimizer model uses selectivities to size index
scans. Statistics follow the classic PostgreSQL design: row count,
per-column null fraction, distinct count, min/max, most-common values,
and an equi-depth histogram.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.1
HISTOGRAM_BUCKETS = 24
MCV_ENTRIES = 8


@dataclass
class ColumnStats:
    """Statistics for one column."""

    null_fraction: float = 0.0
    n_distinct: int = 1
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    mcv: Tuple[Tuple[object, float], ...] = ()
    histogram: Tuple[object, ...] = ()  # equi-depth bucket boundaries

    # -- selectivity for individual operators ---------------------------------

    def eq_selectivity(self, value: object) -> float:
        """Selectivity of ``col = value``; value may be None (unknown)."""
        if self.n_distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if value is not None:
            for mcv_value, freq in self.mcv:
                if mcv_value == value:
                    return freq
        mcv_total = sum(freq for _, freq in self.mcv)
        rest_distinct = max(self.n_distinct - len(self.mcv), 1)
        rest_fraction = max(1.0 - mcv_total - self.null_fraction, 0.0)
        return max(rest_fraction / rest_distinct, 1e-9)

    def range_selectivity(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Selectivity of ``low <= col <= high`` (None end = open).

        MCV point masses are summed exactly; the remaining mass is
        interpolated from the equi-depth histogram — the standard
        split that avoids double-counting heavy endpoint values.
        """
        if low is None and high is None:
            return DEFAULT_RANGE_SELECTIVITY
        if not self.histogram and not self.mcv:
            return DEFAULT_RANGE_SELECTIVITY

        mcv_total = sum(freq for _value, freq in self.mcv)
        mcv_mass = 0.0
        for value, freq in self.mcv:
            if _value_in_range(
                value, low, high, low_inclusive, high_inclusive
            ):
                mcv_mass += freq

        rest = max(1.0 - mcv_total - self.null_fraction, 0.0)
        fraction = 0.0
        if rest > 0 and self.histogram:
            low_pos = 0.0 if low is None else self._position(low)
            high_pos = 1.0 if high is None else self._position(high)
            fraction = max(high_pos - low_pos, 0.0)
        selectivity = min(
            mcv_mass + rest * fraction, 1.0 - self.null_fraction
        )
        return max(selectivity, 1e-9)

    def _position(self, value: object) -> float:
        """Fraction of values strictly below ``value`` (histogram walk)."""
        boundaries = self.histogram
        if not boundaries:
            return 0.5
        try:
            idx = bisect.bisect_left(boundaries, value)  # type: ignore[arg-type]
        except TypeError:
            return 0.5
        buckets = len(boundaries) - 1
        if buckets <= 0:
            return 0.5
        if idx <= 0:
            return 0.0
        if idx >= len(boundaries):
            return 1.0
        lo_b, hi_b = boundaries[idx - 1], boundaries[idx]
        within = 0.5
        if isinstance(lo_b, (int, float)) and isinstance(hi_b, (int, float)):
            span = float(hi_b) - float(lo_b)
            if span > 0 and isinstance(value, (int, float)):
                within = (float(value) - float(lo_b)) / span
        return ((idx - 1) + within) / buckets

    def selectivity(self, op: str, values: Tuple[object, ...]) -> float:
        """Dispatch on predicate operator (the forms FilterPredicate emits)."""
        if op == "=":
            return self.eq_selectivity(values[0] if values else None)
        if op == "<>":
            return max(
                1.0
                - self.eq_selectivity(values[0] if values else None)
                - self.null_fraction,
                1e-9,
            )
        if op == "<":
            return self.range_selectivity(
                None, values[0], high_inclusive=False
            )
        if op == "<=":
            return self.range_selectivity(None, values[0])
        if op == ">":
            return self.range_selectivity(
                values[0], None, low_inclusive=False
            )
        if op == ">=":
            return self.range_selectivity(values[0], None)
        if op == "between":
            low = values[0] if len(values) > 0 else None
            high = values[1] if len(values) > 1 else None
            return self.range_selectivity(low, high)
        if op == "in":
            if not values:
                return DEFAULT_EQ_SELECTIVITY
            total = sum(self.eq_selectivity(v) for v in values)
            return min(total, 1.0)
        if op == "like":
            pattern = values[0] if values else None
            return self._like_selectivity(pattern)
        if op == "isnull":
            return max(self.null_fraction, 1e-9)
        if op == "isnotnull":
            return max(1.0 - self.null_fraction, 1e-9)
        return DEFAULT_RANGE_SELECTIVITY

    def _like_selectivity(self, pattern: Optional[object]) -> float:
        if not isinstance(pattern, str):
            return DEFAULT_LIKE_SELECTIVITY
        prefix = pattern.split("%", 1)[0].split("_", 1)[0]
        if not prefix:
            return DEFAULT_RANGE_SELECTIVITY
        # Prefix LIKE ≈ range [prefix, prefix + infinity-suffix).
        return self.range_selectivity(
            prefix, prefix + "￿", high_inclusive=False
        )


def _value_in_range(
    value: object,
    low: Optional[object],
    high: Optional[object],
    low_inclusive: bool,
    high_inclusive: bool,
) -> bool:
    """Whether an MCV value falls inside a (possibly open) range."""
    try:
        if low is not None:
            if value < low or (value == low and not low_inclusive):
                return False
        if high is not None:
            if value > high or (value == high and not high_inclusive):
                return False
    except TypeError:
        return False
    return True


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name, ColumnStats())


def analyze_column(values: Sequence[object]) -> ColumnStats:
    """Compute :class:`ColumnStats` from a column's values."""
    total = len(values)
    if total == 0:
        return ColumnStats()
    non_null = [v for v in values if v is not None]
    null_fraction = 1.0 - len(non_null) / total
    if not non_null:
        return ColumnStats(null_fraction=1.0, n_distinct=0)

    counts = Counter(non_null)
    n_distinct = len(counts)
    mcv: Tuple[Tuple[object, float], ...] = ()
    if n_distinct <= MCV_ENTRIES:
        # Few distinct values: keep exact frequencies for all of them.
        mcv = tuple(
            (value, count / total) for value, count in counts.most_common()
        )
    else:
        common = counts.most_common(MCV_ENTRIES)
        # Only keep MCVs that are genuinely skewed (above uniform share).
        uniform = len(non_null) / n_distinct
        mcv = tuple(
            (value, count / total)
            for value, count in common
            if count > 1.5 * uniform
        )

    try:
        ordered = sorted(non_null)
    except TypeError:
        ordered = non_null
    boundaries: List[object] = []
    buckets = min(HISTOGRAM_BUCKETS, max(1, n_distinct - 1))
    for i in range(buckets + 1):
        pos = min(int(round(i * (len(ordered) - 1) / buckets)), len(ordered) - 1)
        boundaries.append(ordered[pos])

    return ColumnStats(
        null_fraction=null_fraction,
        n_distinct=n_distinct,
        min_value=ordered[0],
        max_value=ordered[-1],
        mcv=mcv,
        histogram=tuple(boundaries),
    )


def analyze_table(
    rows: Sequence[Tuple[object, ...]], column_names: Sequence[str]
) -> TableStats:
    """Compute full-table statistics from materialised rows."""
    stats = TableStats(row_count=len(rows))
    for idx, name in enumerate(column_names):
        stats.columns[name] = analyze_column([row[idx] for row in rows])
    return stats
