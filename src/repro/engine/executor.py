"""Pull-based plan executor with physical cost accounting.

Every operator both produces real result rows *and* charges a
:class:`~repro.engine.cost.CostTracker` for the pages and tuples it
touches. The weighted tracker total is the deterministic "execution
cost" used as latency throughout the benchmarks.

Row representation: ``dict`` with two key shapes —

* ``("col", binding, column)`` for base-table columns, and
* ``("expr", canonical_text)`` for computed values (aggregates),

so HAVING and ORDER BY can reference aggregate results uniformly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine import plan as pl
from repro.engine.btree import _NEG_INF, _POS_INF, encode_bound
from repro.engine.catalog import Catalog
from repro.engine.cost import (
    CostParams,
    CostTracker,
    index_running_cost,
    index_start_cost,
)
from repro.engine.index import Index
from repro.sql import ast

RowDict = Dict[Tuple, object]


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (e.g. hypothetical scan)."""


class Executor:
    """Executes physical plans against a catalog's storage."""

    def __init__(
        self,
        catalog: Catalog,
        params: CostParams,
        tracker: CostTracker,
    ):
        self.catalog = catalog
        self.params = params
        self.tracker = tracker

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def rows(self, plan: pl.PlanNode) -> Iterator[RowDict]:
        """Dispatch to the operator implementation for ``plan``."""
        method = getattr(self, f"_exec_{type(plan).__name__}", None)
        if method is None:
            raise ExecutionError(f"no executor for {type(plan).__name__}")
        return method(plan)

    def run_select(self, plan: pl.PlanNode) -> List[Tuple[object, ...]]:
        """Run a SELECT-rooted plan, returning output tuples."""
        out: List[Tuple[object, ...]] = []
        for row in self.rows(plan):
            out.append(row[("out",)])  # type: ignore[index]
        return out

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------

    def _exec_SeqScanPlan(self, plan: pl.SeqScanPlan) -> Iterator[RowDict]:
        entry = self.catalog.table(plan.table)
        names = entry.schema.column_names
        predicate = plan.predicate
        for _rid, row in entry.heap.scan(self.tracker):
            row_dict = _bind_row(plan.binding, names, row)
            if predicate is not None:
                self.tracker.charge_operator_ops(1)
                if not _truthy(eval_expr(predicate, row_dict)):
                    continue
            yield row_dict

    def _exec_IndexScanPlan(
        self, plan: pl.IndexScanPlan, outer_row: Optional[RowDict] = None
    ) -> Iterator[RowDict]:
        index = self.catalog.get_index(plan.index)
        if index is None:
            raise ExecutionError(
                f"index {plan.index} is hypothetical; cannot execute"
            )
        index.lookup_count += 1
        entry = self.catalog.table(plan.table)
        names = entry.schema.column_names
        num_cols = index.num_columns

        eq_values = [
            eval_expr(e, outer_row or {}) for e in plan.eq_exprs
        ]
        lo_parts: List[object] = list(eq_values)
        hi_parts: List[object] = list(eq_values)
        if plan.range_column is not None:
            low_v = (
                eval_expr(plan.range_low, outer_row or {})
                if plan.range_low is not None
                else _NEG_INF
            )
            high_v = (
                eval_expr(plan.range_high, outer_row or {})
                if plan.range_high is not None
                else _POS_INF
            )
            lo_parts.append(low_v if low_v is not None else _NEG_INF)
            hi_parts.append(high_v if high_v is not None else _POS_INF)
        lo = encode_bound(lo_parts, num_cols, low=True)
        hi = encode_bound(hi_parts, num_cols, low=False)

        predicate = plan.predicate
        eq_map = dict(zip(plan.index.columns, eq_values))
        partition = index.prune_partition(eq_map)
        matches = list(
            index.scan_range(lo, hi, self.tracker, partition=partition)
        )
        if not plan.index_only:
            # Bitmap-style heap access: sort matches by rid so each
            # heap page is read exactly once.
            matches.sort(key=lambda kr: kr[1])
            touched_pages = len({rid[0] for _key, rid in matches})
            self.tracker.charge_random_pages(touched_pages)
        for key, rid in matches:
            if plan.index_only:
                row_dict: RowDict = {
                    ("col", plan.binding, col): part[1] if part[0] == 1 else None
                    for col, part in zip(plan.index.columns, key)
                }
            else:
                row = entry.heap.fetch(rid)  # IO charged above, once per page
                self.tracker.charge_heap_tuples(1)
                row_dict = _bind_row(plan.binding, names, row)
            if predicate is not None:
                self.tracker.charge_operator_ops(1)
                if not _truthy(eval_expr(predicate, row_dict, outer_row)):
                    continue
            # Exclusive range endpoints are enforced by the predicate
            # re-check above whenever the plan carries one.
            yield row_dict

    def _scan_for_write(
        self, plan: pl.PlanNode
    ) -> List[Tuple[Tuple[int, int], Tuple[object, ...]]]:
        """Materialise (rid, row) pairs matched by an UPDATE/DELETE scan."""
        if isinstance(plan, pl.SeqScanPlan):
            entry = self.catalog.table(plan.table)
            names = entry.schema.column_names
            matched = []
            for rid, row in entry.heap.scan(self.tracker):
                if plan.predicate is not None:
                    self.tracker.charge_operator_ops(1)
                    row_dict = _bind_row(plan.binding, names, row)
                    if not _truthy(eval_expr(plan.predicate, row_dict)):
                        continue
                matched.append((rid, row))
            return matched
        if isinstance(plan, pl.IndexScanPlan):
            index = self.catalog.get_index(plan.index)
            if index is None:
                raise ExecutionError(
                    f"index {plan.index} is hypothetical; cannot execute"
                )
            index.lookup_count += 1
            entry = self.catalog.table(plan.table)
            names = entry.schema.column_names
            eq_values = [eval_expr(e, {}) for e in plan.eq_exprs]
            lo_parts: List[object] = list(eq_values)
            hi_parts: List[object] = list(eq_values)
            if plan.range_column is not None:
                low_v = (
                    eval_expr(plan.range_low, {})
                    if plan.range_low is not None
                    else _NEG_INF
                )
                high_v = (
                    eval_expr(plan.range_high, {})
                    if plan.range_high is not None
                    else _POS_INF
                )
                lo_parts.append(low_v if low_v is not None else _NEG_INF)
                hi_parts.append(high_v if high_v is not None else _POS_INF)
            lo = encode_bound(lo_parts, index.num_columns, low=True)
            hi = encode_bound(hi_parts, index.num_columns, low=False)
            eq_map = dict(zip(plan.index.columns, eq_values))
            entries = sorted(
                index.scan_range(
                    lo, hi, self.tracker,
                    partition=index.prune_partition(eq_map),
                ),
                key=lambda kr: kr[1],
            )
            self.tracker.charge_random_pages(
                len({rid[0] for _key, rid in entries})
            )
            matched = []
            for _key, rid in entries:
                row = entry.heap.fetch(rid)  # IO charged above
                self.tracker.charge_heap_tuples(1)
                if plan.predicate is not None:
                    self.tracker.charge_operator_ops(1)
                    row_dict = _bind_row(plan.binding, names, row)
                    if not _truthy(eval_expr(plan.predicate, row_dict)):
                        continue
                matched.append((rid, row))
            return matched
        raise ExecutionError(
            f"write scans must be table scans, got {type(plan).__name__}"
        )

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _exec_NestedLoopPlan(
        self, plan: pl.NestedLoopPlan
    ) -> Iterator[RowDict]:
        inner = plan.inner
        param_scan = isinstance(inner, pl.IndexScanPlan) and any(
            isinstance(e, ast.ColumnRef) for e in inner.eq_exprs
        )
        materialized: Optional[List[RowDict]] = None
        for outer_row in self.rows(plan.outer):
            if param_scan:
                inner_iter: Iterator[RowDict] = self._exec_IndexScanPlan(
                    inner, outer_row  # type: ignore[arg-type]
                )
            else:
                if materialized is None:
                    materialized = list(self.rows(inner))
                inner_iter = iter(materialized)
                self.tracker.charge_operator_ops(len(materialized))
            for inner_row in inner_iter:
                combined = {**outer_row, **inner_row}
                if plan.predicate is not None:
                    self.tracker.charge_operator_ops(1)
                    if not _truthy(eval_expr(plan.predicate, combined)):
                        continue
                yield combined

    def _exec_HashJoinPlan(self, plan: pl.HashJoinPlan) -> Iterator[RowDict]:
        table: Dict[Tuple, List[RowDict]] = {}
        for row in self.rows(plan.right):
            self.tracker.charge_operator_ops(1)
            key = tuple(eval_expr(k, row) for k in plan.right_keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(row)
        for row in self.rows(plan.left):
            self.tracker.charge_operator_ops(1)
            key = tuple(eval_expr(k, row) for k in plan.left_keys)
            for match in table.get(key, ()):
                combined = {**row, **match}
                if plan.predicate is not None:
                    self.tracker.charge_operator_ops(1)
                    if not _truthy(eval_expr(plan.predicate, combined)):
                        continue
                yield combined

    # ------------------------------------------------------------------
    # shaping operators
    # ------------------------------------------------------------------

    def _exec_SubqueryScanPlan(
        self, plan: pl.SubqueryScanPlan
    ) -> Iterator[RowDict]:
        for row in self.rows(plan.child):
            out = row.get(("out",))
            rebased: RowDict = {}
            if out is not None:
                for name, value in zip(plan.output_columns, out):  # type: ignore[arg-type]
                    rebased[("col", plan.binding, name)] = value
            yield rebased

    def _exec_FilterPlan(self, plan: pl.FilterPlan) -> Iterator[RowDict]:
        for row in self.rows(plan.child):
            self.tracker.charge_operator_ops(1)
            if _truthy(eval_expr(plan.predicate, row)):
                yield row

    def _exec_SortPlan(self, plan: pl.SortPlan) -> Iterator[RowDict]:
        rows = list(self.rows(plan.child))
        n = len(rows)
        if n > 1:
            self.tracker.charge_operator_ops(n * math.log2(n) * 2)
        for item in reversed(plan.keys):
            rows.sort(
                key=lambda r, e=item.expr: _sort_key(eval_expr(e, r)),
                reverse=item.descending,
            )
        yield from rows

    def _exec_AggregatePlan(self, plan: pl.AggregatePlan) -> Iterator[RowDict]:
        groups: Dict[Tuple, List[RowDict]] = {}
        order: List[Tuple] = []
        for row in self.rows(plan.child):
            self.tracker.charge_operator_ops(1 + len(plan.aggregates))
            key = tuple(
                _sort_key(eval_expr(g, row)) for g in plan.group_exprs
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not groups and not plan.group_exprs:
            groups[()] = []
            order.append(())
        for key in order:
            members = groups[key]
            out: RowDict = {}
            if members:
                out.update(members[0])
            for g in plan.group_exprs:
                value = eval_expr(g, members[0]) if members else None
                out[("expr", str(g))] = value
            for agg in plan.aggregates:
                out[("expr", str(agg))] = _aggregate(agg, members)
            yield out

    def _exec_ProjectPlan(self, plan: pl.ProjectPlan) -> Iterator[RowDict]:
        for row in self.rows(plan.child):
            values: List[object] = []
            for item in plan.items:
                if isinstance(item.expr, ast.Star):
                    bindings = (
                        (item.expr.table,)
                        if item.expr.table
                        else plan.star_bindings
                    )
                    for binding in bindings:
                        values.extend(
                            v
                            for k, v in row.items()
                            if k[0] == "col" and k[1] == binding
                        )
                else:
                    values.append(eval_expr(item.expr, row))
            out = dict(row)
            out[("out",)] = tuple(values)
            yield out

    def _exec_DistinctPlan(self, plan: pl.DistinctPlan) -> Iterator[RowDict]:
        seen = set()
        for row in self.rows(plan.child):
            self.tracker.charge_operator_ops(1)
            key = _sort_key(row.get(("out",)))
            if key in seen:
                continue
            seen.add(key)
            yield row

    def _exec_LimitPlan(self, plan: pl.LimitPlan) -> Iterator[RowDict]:
        count = 0
        for row in self.rows(plan.child):
            if count >= plan.limit:
                return
            count += 1
            yield row

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def run_insert(self, plan: pl.InsertPlan) -> int:
        """Insert the plan's rows; charges heap IO plus per-index
        maintenance (Section V model). Returns rows inserted."""
        entry = self.catalog.table(plan.table)
        schema = entry.schema
        positions = {c: schema.column_index(c) for c in plan.columns}
        count = 0
        for values in plan.rows:
            full = [None] * len(schema.columns)
            for col, value in zip(plan.columns, values):
                full[positions[col]] = value
            row = tuple(full)
            rid = entry.heap.insert(row, self.tracker)
            for index in entry.indexes.values():
                self._charge_index_insert(index)
                splits = index.insert_row(rid, row)
                if splits:
                    self.tracker.charge_index_page_writes(splits)
            count += 1
        return count

    def run_update(self, plan: pl.UpdatePlan) -> int:
        """Apply the UPDATE: matched rows are materialised first, then
        heap slots are rewritten and affected indexes re-keyed
        (delete + insert, charged per Section V). Returns rows."""
        entry = self.catalog.table(plan.table)
        schema = entry.schema
        names = schema.column_names
        matched = self._scan_for_write(plan.child)
        changed_cols = {a.column for a in plan.assignments}
        count = 0
        for rid, row in matched:
            row_dict = _bind_row(plan.binding, names, row)
            new_row = list(row)
            for a in plan.assignments:
                new_row[schema.column_index(a.column)] = eval_expr(
                    a.value, row_dict
                )
            new_tuple = tuple(new_row)
            entry.heap.update(rid, new_tuple, self.tracker)
            partition_moved = (
                schema.partition_key in changed_cols
                if schema.partition_key is not None
                else False
            )
            for index in entry.indexes.values():
                keyed = bool(set(index.definition.columns) & changed_cols)
                # A LOCAL index must also re-route its entry when the
                # row's partition key changes, even if no indexed
                # column did.
                rerouted = partition_moved and index.partition_count > 1
                if not keyed and not rerouted:
                    continue
                # Index update = delete old entry + insert new entry;
                # charged with the paper's t_start + t_running model.
                self._charge_index_insert(index)
                index.delete_row(rid, row)
                splits = index.insert_row(rid, new_tuple)
                if splits:
                    self.tracker.charge_index_page_writes(splits)
            count += 1
        return count

    def run_delete(self, plan: pl.DeletePlan) -> int:
        """Apply the DELETE; index entry removal is performed but,
        per the paper's model, charged at zero cost. Returns rows."""
        entry = self.catalog.table(plan.table)
        matched = self._scan_for_write(plan.child)
        count = 0
        for rid, row in matched:
            entry.heap.delete(rid, self.tracker)
            # Paper, Section V: deletes update indexes after the query
            # finishes, so their index maintenance cost is zero. The
            # physical entry removal still happens (NULL_TRACKER).
            for index in entry.indexes.values():
                index.delete_row(rid, row)
            count += 1
        return count

    def _charge_index_insert(self, index: Index) -> None:
        """Charge one index-entry insertion per the Section V model."""
        start = index_start_cost(
            max(index.entry_count, 1), index.height, self.params
        )
        running = index_running_cost(1, self.params)
        # Convert the cost-unit values back into counter units so they
        # flow through the same tracker weighting.
        self.tracker.charge_operator_ops(start / self.params.cpu_operator_cost)
        self.tracker.charge_index_tuples(
            running / self.params.cpu_index_tuple_cost
        )


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------


def _bind_row(
    binding: str, names: Tuple[str, ...], row: Tuple[object, ...]
) -> RowDict:
    return {("col", binding, name): value for name, value in zip(names, row)}


# Subqueries are inlined before execution and projection expands Star
# during planning, so neither can reach the evaluator:
# lint: exhaustive[Expr] fallthrough=ScalarSubquery,InSubquery,Star
def eval_expr(
    expr: ast.Expr, row: RowDict, outer: Optional[RowDict] = None
) -> object:
    """Evaluate an expression against a row (plus optional outer row)."""
    computed = row.get(("expr", str(expr)), _MISSING)
    if computed is not _MISSING:
        return computed
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        key = ("col", expr.table, expr.column)
        if key in row:
            return row[key]
        if outer is not None and key in outer:
            return outer[key]
        raise ExecutionError(f"unbound column {expr}")
    if isinstance(expr, ast.Comparison):
        left = eval_expr(expr.left, row, outer)
        right = eval_expr(expr.right, row, outer)
        return _compare(expr.op, left, right)
    if isinstance(expr, ast.Between):
        value = eval_expr(expr.expr, row, outer)
        low = eval_expr(expr.low, row, outer)
        high = eval_expr(expr.high, row, outer)
        if value is None or low is None or high is None:
            return None
        return low <= value <= high
    if isinstance(expr, ast.InList):
        value = eval_expr(expr.expr, row, outer)
        if value is None:
            return None
        return any(
            eval_expr(item, row, outer) == value for item in expr.items
        )
    if isinstance(expr, ast.Like):
        value = eval_expr(expr.expr, row, outer)
        pattern = eval_expr(expr.pattern, row, outer)
        if value is None or pattern is None:
            return None
        return _like_match(str(value), str(pattern))
    if isinstance(expr, ast.IsNull):
        value = eval_expr(expr.expr, row, outer)
        return (value is None) != expr.negated
    if isinstance(expr, ast.And):
        for item in expr.items:
            if not _truthy(eval_expr(item, row, outer)):
                return False
        return True
    if isinstance(expr, ast.Or):
        for item in expr.items:
            if _truthy(eval_expr(item, row, outer)):
                return True
        return False
    if isinstance(expr, ast.Not):
        return not _truthy(eval_expr(expr.child, row, outer))
    if isinstance(expr, ast.Arith):
        left = eval_expr(expr.left, row, outer)
        right = eval_expr(expr.right, row, outer)
        return apply_arith(expr.op, left, right)
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr} evaluated outside Aggregate node"
            )
        return _scalar_function(expr, row, outer)
    if isinstance(expr, ast.Placeholder):
        raise ExecutionError("cannot execute a templated query (placeholder)")
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


_MISSING = object()


def _truthy(value: object) -> bool:
    return bool(value) and value is not None


def _compare(op: str, left: object, right: object) -> Optional[bool]:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return None
    raise ExecutionError(f"unknown comparison operator {op!r}")


def apply_arith(op: str, left: object, right: object) -> object:
    """SQL arithmetic with NULL propagation; division by zero is NULL."""
    if left is None or right is None:
        return None
    if op == "+":
        return left + right  # type: ignore[operator]
    if op == "-":
        return left - right  # type: ignore[operator]
    if op == "*":
        return left * right  # type: ignore[operator]
    if op == "/":
        if right == 0:
            return None
        result = left / right  # type: ignore[operator]
        return result
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with % and _ wildcards (greedy backtracking)."""
    import re

    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None


def _scalar_function(
    expr: ast.FuncCall, row: RowDict, outer: Optional[RowDict]
) -> object:
    name = expr.name.lower()
    args = [eval_expr(a, row, outer) for a in expr.args]
    if name == "abs" and len(args) == 1:
        return None if args[0] is None else abs(args[0])  # type: ignore[arg-type]
    if name == "length" and len(args) == 1:
        return None if args[0] is None else len(str(args[0]))
    if name == "coalesce":
        for a in args:
            if a is not None:
                return a
        return None
    raise ExecutionError(f"unknown function {expr.name!r}")


def _aggregate(agg: ast.FuncCall, rows: List[RowDict]) -> object:
    name = agg.name.lower()
    if name == "count":
        if not agg.args or isinstance(agg.args[0], ast.Star):
            return len(rows)
        values = [eval_expr(agg.args[0], r) for r in rows]
        values = [v for v in values if v is not None]
        if agg.distinct:
            return len(set(values))
        return len(values)
    values = [eval_expr(agg.args[0], r) for r in rows]
    values = [v for v in values if v is not None]
    if agg.distinct:
        # First-occurrence dedup, not list(set(...)): float summation
        # order must not depend on PYTHONHASHSEED, and mixed-type
        # columns need not be sortable.
        values = list(dict.fromkeys(values))
    if not values:
        return None
    if name == "sum":
        return sum(values)  # type: ignore[arg-type]
    if name == "avg":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    raise ExecutionError(f"unknown aggregate {agg.name!r}")


def _sort_key(value: object):
    """Total ordering for heterogeneous values (None first)."""
    if isinstance(value, tuple):
        return tuple(_sort_key(v) for v in value)
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))
