"""A real B+Tree with node splits, height tracking, and composite keys.

This is the physical structure behind every secondary index in the
engine. It matters to the reproduction for three reasons:

* **height** and **page counts** feed the paper's Section V cost
  features (`t_start` depends on tree height ``H``; `C_io` on pages);
* **splits** make maintenance cost grow realistically with index size,
  which is what separates AutoIndex's write-aware estimator from the
  plain optimizer model;
* **leftmost-prefix scans** implement the multi-column index semantics
  the candidate generator's merge rule assumes.

Keys are tuples of column values. NULLs sort first. Duplicate keys are
supported by ordering entries on ``(key, rid)``.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.engine.cost import PAGE_SIZE, CostTracker
from repro.engine.storage import Rid

# Encoded key parts are tuples whose first element orders value
# classes: -1 = below everything, 0 = NULL, 1 = a real value,
# 2 = above everything.
_NEG_INF = (-1,)
_POS_INF = (2,)

EncodedKey = Tuple[Tuple[object, ...], ...]


def encode_key(values: Sequence[object]) -> EncodedKey:
    """Encode raw column values into a totally-ordered composite key."""
    return tuple((0, 0) if v is None else (1, v) for v in values)


def encode_bound(
    values: Sequence[object], num_columns: int, low: bool
) -> EncodedKey:
    """Encode a (possibly partial) bound, padding with ±infinity.

    A prefix bound on the first k of n columns becomes a full n-part
    key whose missing parts are -inf (for low bounds) or +inf (for
    high bounds), which is exactly leftmost-prefix range semantics.
    """
    parts: List[Tuple[object, ...]] = []
    for v in values[:num_columns]:
        if v is _NEG_INF or v is _POS_INF:
            parts.append(v)  # caller-provided open end on this column
        elif v is None:
            parts.append((0, 0))
        else:
            parts.append((1, v))
    fill = _NEG_INF if low else _POS_INF
    parts.extend([fill] * (num_columns - len(parts)))
    return tuple(parts)


class _Leaf:
    __slots__ = ("entries", "next")

    def __init__(self) -> None:
        self.entries: List[Tuple[EncodedKey, Rid]] = []
        self.next: Optional["_Leaf"] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds entries < keys[i]; children[-1] holds the rest.
        self.keys: List[Tuple[EncodedKey, Rid]] = []
        self.children: List[object] = []


class BTree:
    """B+Tree index over composite keys with duplicate support."""

    def __init__(self, key_byte_width: int):
        # Fanout derived from real byte widths so page counts and
        # heights scale with data like a disk-resident tree.
        entry_width = key_byte_width + 16  # key + rid + slot overhead
        self.leaf_capacity = max(8, PAGE_SIZE // entry_width)
        self.inner_capacity = max(8, PAGE_SIZE // (key_byte_width + 24))
        self._root: object = _Leaf()
        self._height = 1  # levels, leaf-only tree has height 1
        self._num_leaves = 1
        self._num_inners = 0
        self._num_entries = 0
        self._split_count = 0

    # -- observability ----------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    @property
    def entry_count(self) -> int:
        return self._num_entries

    @property
    def page_count(self) -> int:
        return self._num_leaves + self._num_inners

    @property
    def leaf_page_count(self) -> int:
        return self._num_leaves

    @property
    def byte_size(self) -> int:
        return self.page_count * PAGE_SIZE

    @property
    def split_count(self) -> int:
        """Total page splits since creation (a maintenance-cost signal)."""
        return self._split_count

    # -- bulk load ---------------------------------------------------------------

    def bulk_load(self, entries: List[Tuple[EncodedKey, Rid]]) -> None:
        """Build the tree from scratch out of (key, rid) pairs.

        Entries are sorted and packed into leaves at ~90% fill, then
        inner levels are built bottom-up — the standard fast build used
        by CREATE INDEX.
        """
        entries = sorted(entries)
        self._num_entries = len(entries)
        self._split_count = 0
        fill = max(1, int(self.leaf_capacity * 0.9))
        leaves: List[_Leaf] = []
        for start in range(0, len(entries), fill) or [0]:
            leaf = _Leaf()
            leaf.entries = entries[start : start + fill]
            leaves.append(leaf)
        if not leaves:
            leaves = [_Leaf()]
        for prev, nxt in zip(leaves, leaves[1:]):
            prev.next = nxt
        self._num_leaves = len(leaves)
        self._num_inners = 0

        level: List[object] = list(leaves)
        height = 1
        inner_fill = max(2, int(self.inner_capacity * 0.9))
        while len(level) > 1:
            parents: List[object] = []
            for start in range(0, len(level), inner_fill):
                group = level[start : start + inner_fill]
                inner = _Inner()
                inner.children = list(group)
                inner.keys = [self._lowest_entry(child) for child in group[1:]]
                parents.append(inner)
                self._num_inners += 1
            level = parents
            height += 1
        self._root = level[0]
        self._height = height

    @staticmethod
    def _lowest_entry(node: object) -> Tuple[EncodedKey, Rid]:
        while isinstance(node, _Inner):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node.entries[0]

    # -- point mutations -----------------------------------------------------------

    def insert(self, key: EncodedKey, rid: Rid) -> int:
        """Insert an entry; returns the number of page splits caused."""
        splits_before = self._split_count
        result = self._insert(self._root, (key, rid))
        if result is not None:
            sep, right = result
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._num_inners += 1
        self._num_entries += 1
        return self._split_count - splits_before

    def _insert(
        self, node: object, entry: Tuple[EncodedKey, Rid]
    ) -> Optional[Tuple[Tuple[EncodedKey, Rid], object]]:
        if isinstance(node, _Leaf):
            bisect.insort(node.entries, entry)
            if len(node.entries) <= self.leaf_capacity:
                return None
            return self._split_leaf(node)
        assert isinstance(node, _Inner)
        idx = bisect.bisect_right(node.keys, entry)
        result = self._insert(node.children[idx], entry)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self.inner_capacity:
            return None
        return self._split_inner(node)

    def _split_leaf(
        self, leaf: _Leaf
    ) -> Tuple[Tuple[EncodedKey, Rid], object]:
        mid = len(leaf.entries) // 2
        right = _Leaf()
        right.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        right.next = leaf.next
        leaf.next = right
        self._num_leaves += 1
        self._split_count += 1
        return right.entries[0], right

    def _split_inner(
        self, inner: _Inner
    ) -> Tuple[Tuple[EncodedKey, Rid], object]:
        mid = len(inner.keys) // 2
        sep = inner.keys[mid]
        right = _Inner()
        right.keys = inner.keys[mid + 1 :]
        right.children = inner.children[mid + 1 :]
        inner.keys = inner.keys[:mid]
        inner.children = inner.children[: mid + 1]
        self._num_inners += 1
        self._split_count += 1
        return sep, right

    def delete(self, key: EncodedKey, rid: Rid) -> bool:
        """Remove one entry. Nodes are allowed to underfill (no merge),
        which matches how B-trees behave under DELETE in practice
        (space is reclaimed by VACUUM, not eagerly)."""
        node = self._root
        entry = (key, rid)
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, entry)
            node = node.children[idx]
        assert isinstance(node, _Leaf)
        idx = bisect.bisect_left(node.entries, entry)
        if idx < len(node.entries) and node.entries[idx] == entry:
            node.entries.pop(idx)
            self._num_entries -= 1
            return True
        return False

    # -- lookups --------------------------------------------------------------------

    def _descend(
        self, key: EncodedKey, tracker: Optional[CostTracker]
    ) -> _Leaf:
        node = self._root
        probe = (key, (-1, -1))
        while isinstance(node, _Inner):
            if tracker is not None:
                tracker.charge_random_pages(1)
            idx = bisect.bisect_right(node.keys, probe)
            node = node.children[idx]
        if tracker is not None:
            tracker.charge_random_pages(1)
        assert isinstance(node, _Leaf)
        return node

    def scan_range(
        self,
        lo: EncodedKey,
        hi: EncodedKey,
        tracker: Optional[CostTracker] = None,
    ) -> Iterator[Tuple[EncodedKey, Rid]]:
        """Yield entries with lo <= key <= hi in key order.

        Charges the descent plus one page per leaf visited and one
        index-tuple op per entry returned.
        """
        leaf = self._descend(lo, tracker)
        lo_probe = (lo, (-1, -1))
        idx = bisect.bisect_left(leaf.entries, lo_probe)
        while leaf is not None:
            while idx < len(leaf.entries):
                key, rid = leaf.entries[idx]
                if key > hi:
                    return
                if tracker is not None:
                    tracker.charge_index_tuples(1)
                yield key, rid
                idx += 1
            leaf = leaf.next
            idx = 0
            if leaf is not None and tracker is not None:
                tracker.charge_random_pages(1)

    def search_eq(
        self,
        values: Sequence[object],
        num_columns: int,
        tracker: Optional[CostTracker] = None,
    ) -> List[Rid]:
        """Point/prefix lookup: all rids whose key starts with ``values``."""
        lo = encode_bound(values, num_columns, low=True)
        hi = encode_bound(values, num_columns, low=False)
        return [rid for _, rid in self.scan_range(lo, hi, tracker)]

    def scan_all(
        self, tracker: Optional[CostTracker] = None
    ) -> Iterator[Tuple[EncodedKey, Rid]]:
        """Full ordered scan of every entry (for index-only plans)."""
        node = self._root
        while isinstance(node, _Inner):
            if tracker is not None:
                tracker.charge_random_pages(1)
            node = node.children[0]
        leaf: Optional[_Leaf] = node  # type: ignore[assignment]
        while leaf is not None:
            if tracker is not None:
                tracker.charge_seq_pages(1)
            for key, rid in leaf.entries:
                if tracker is not None:
                    tracker.charge_index_tuples(1)
                yield key, rid
            leaf = leaf.next

    # -- integrity (used by property tests) -------------------------------------------

    def check_invariants(self) -> None:
        """Validate ordering, linkage, and entry counts; raises on violation."""
        entries = list(self._iter_entries_structurally(self._root))
        flat = [e for leaf in entries for e in leaf]
        if flat != sorted(flat):
            raise AssertionError("B+Tree entries out of order")
        if len(flat) != self._num_entries:
            raise AssertionError(
                f"entry count mismatch: {len(flat)} != {self._num_entries}"
            )
        linked = []
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        leaf: Optional[_Leaf] = node  # type: ignore[assignment]
        while leaf is not None:
            linked.extend(leaf.entries)
            leaf = leaf.next
        if linked != flat:
            raise AssertionError("leaf chain disagrees with tree structure")

    def _iter_entries_structurally(self, node: object):
        if isinstance(node, _Leaf):
            yield node.entries
            return
        assert isinstance(node, _Inner)
        for child in node.children:
            yield from self._iter_entries_structurally(child)


def estimate_btree_shape(
    num_entries: int, key_byte_width: int
) -> Tuple[int, int, int]:
    """Estimate (height, leaf_pages, total_pages) without building.

    Used for hypothetical indexes: same fanout math as the real tree at
    ~90% fill, so what-if costing matches materialised indexes closely.
    """
    entry_width = key_byte_width + 16
    leaf_capacity = max(8, PAGE_SIZE // entry_width)
    inner_capacity = max(8, PAGE_SIZE // (key_byte_width + 24))
    fill = max(1, int(leaf_capacity * 0.9))
    inner_fill = max(2, int(inner_capacity * 0.9))
    leaves = max(1, math.ceil(num_entries / fill))
    total = leaves
    level = leaves
    height = 1
    while level > 1:
        level = math.ceil(level / inner_fill)
        total += level
        height += 1
    return height, leaves, total
