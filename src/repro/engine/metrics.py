"""Workload execution metrics, cache accounting, and index usage.

Feeds the paper's *Index Diagnosis* module: per-index usage counters
(how often an index served a scan vs how often it had to be
maintained) and a rolling view of workload cost used to detect
performance regression.

Also home to the bounded :class:`LruCache` (with hit/miss/eviction
counters) shared by the costing layers — the estimator's per-query
cost and feature caches and the planner's access-path memo all report
their behaviour through :class:`CacheStats` so tuning overhead stays
observable.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Tuple

from repro.engine.index import IndexDef


class Stopwatch:
    """The sanctioned elapsed-time measurement outside ``bench/``.

    Cost estimation and planning must be pure functions of their
    inputs, so the determinism lint bans ``time``/``datetime`` imports
    everywhere except ``bench/`` and this module.  Components that
    legitimately need wall-clock durations for *reporting* (advisor
    and baseline tuning reports) go through this helper instead of
    importing ``time`` themselves — which both removes the duplicated
    ``perf_counter`` bookkeeping and keeps the whitelist surface to a
    single audited call site.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the reference point to now."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._start


@dataclass
class CacheStats:
    """Point-in-time counters for one bounded cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / max(self.lookups, 1)

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class LruCache:
    """A size-bounded mapping with LRU eviction and usage counters.

    ``maxsize <= 0`` disables the cache entirely (every ``get`` is a
    miss, ``put`` is a no-op) — used by benchmarks to emulate the
    uncached baseline without code forks.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 50_000):
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default=None):
        if self.maxsize <= 0:
            self.misses += 1
            return default
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        if self.maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            maxsize=self.maxsize,
        )


@dataclass
class IndexUsage:
    """Usage counters for one index over an observation window."""

    definition: IndexDef
    lookups: int = 0
    maintenance_ops: int = 0
    byte_size: int = 0

    @property
    def is_rarely_used(self) -> bool:
        return self.lookups == 0

    def maintenance_ratio(self) -> float:
        """Maintenance ops per lookup (high = write-dominated index)."""
        return self.maintenance_ops / max(self.lookups, 1)


@dataclass
class QueryRecord:
    """One executed query: its cost and the indexes its plan used."""

    fingerprint: str
    cost: float
    is_write: bool
    indexes_used: Tuple[IndexDef, ...] = ()


class WorkloadMonitor:
    """Rolling record of executed queries for regression detection.

    The paper's diagnosis module "monitors the system metrics during
    workload execution" and fires when it "detects abnormal status
    (e.g. performance regression)". We keep two adjacent windows of
    per-query cost and compare their means.
    """

    def __init__(self, window: int = 200, regression_factor: float = 1.25):
        self.window = window
        self.regression_factor = regression_factor
        self._recent: Deque[QueryRecord] = deque(maxlen=window)
        self._previous: Deque[QueryRecord] = deque(maxlen=window)
        self.total_queries = 0
        self.total_cost = 0.0

    def record(self, record: QueryRecord) -> None:
        """Append one executed query to the rolling windows."""
        if len(self._recent) == self._recent.maxlen:
            self._previous.append(self._recent.popleft())
        self._recent.append(record)
        self.total_queries += 1
        self.total_cost += record.cost

    def mean_recent_cost(self) -> float:
        if not self._recent:
            return 0.0
        return sum(r.cost for r in self._recent) / len(self._recent)

    def mean_previous_cost(self) -> float:
        if not self._previous:
            return 0.0
        return sum(r.cost for r in self._previous) / len(self._previous)

    def regression_detected(self) -> bool:
        """True when recent mean cost exceeds the previous window's."""
        prev = self.mean_previous_cost()
        if prev <= 0 or len(self._previous) < self.window // 2:
            return False
        return self.mean_recent_cost() > prev * self.regression_factor

    def recent_records(self) -> List[QueryRecord]:
        return list(self._recent)

    def reset_windows(self) -> None:
        self._recent.clear()
        self._previous.clear()
