"""Cost-based query planner.

Turns resolved SQL ASTs into physical plans:

* access-path selection per relation (sequential scan vs B+Tree scan
  vs index-only scan), driven by statistics and the catalog's
  *visible* index set — which may include hypothetical indexes under a
  what-if overlay;
* greedy join ordering with a choice between hash join and
  index nested-loop join;
* sort avoidance when an index scan already delivers the requested
  order;
* write planning that charges per-index maintenance using the paper's
  Section V cost features (so hypothetical indexes penalise writes in
  what-if mode exactly as real ones would).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine import plan as pl
from repro.engine.catalog import Catalog
from repro.engine.cost import (
    CostParams,
    DEFAULT_PARAMS,
    index_cpu_cost,
    pages_fetched,
)
from repro.engine.faults import FaultInjector, check as fault_check
from repro.engine.index import IndexDef, IndexShape
from repro.engine.metrics import CacheStats, LruCache
from repro.engine.stats import TableStats
from repro.sql import ast
from repro.sql.predicates import (
    FilterPredicate,
    classify_atom,
    conjuncts_of,
    referenced_columns,
)


class PlanningError(ValueError):
    """Raised when a statement cannot be planned (bad names, etc.)."""


@dataclass
class _Scope:
    """Name-resolution scope: binding -> ordered visible columns."""

    bindings: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def resolve(self, ref: ast.ColumnRef) -> ast.ColumnRef:
        if ref.table is not None:
            if ref.table not in self.bindings:
                raise PlanningError(f"unknown table binding {ref.table!r}")
            if ref.column not in self.bindings[ref.table]:
                raise PlanningError(
                    f"no column {ref.column!r} in {ref.table!r}"
                )
            return ref
        owners = [
            b for b, cols in self.bindings.items() if ref.column in cols
        ]
        if not owners:
            raise PlanningError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise PlanningError(
                f"ambiguous column {ref.column!r} (in {owners})"
            )
        return ast.ColumnRef(column=ref.column, table=owners[0])


@dataclass
class _BaseRel:
    """A FROM-clause relation plus its chosen standalone access path."""

    binding: str
    plan: pl.PlanNode
    table: Optional[str]  # None for derived tables
    local_predicate: Optional[ast.Expr]


class Planner:
    """Plans statements against a :class:`Catalog`."""

    def __init__(
        self,
        catalog: Catalog,
        params: CostParams = DEFAULT_PARAMS,
        plan_cache_size: int = 8192,
        faults: Optional[FaultInjector] = None,
    ):
        self.catalog = catalog
        self.params = params
        self.faults = faults
        # Access-path memo: (table, binding, predicate, needed columns,
        # per-table index signature, catalog version) -> chosen plan.
        # Statement ASTs are immutable, so a cached subtree can be
        # grafted into any number of enclosing plans. The per-table
        # signature (not the whole configuration) is the key insight:
        # two what-if configurations that differ only on *other*
        # tables reuse this relation's access-path work.
        self.plan_cache = LruCache(plan_cache_size)
        self.plan_cache_enabled = True
        self.access_paths_computed = 0

    def plan_cache_stats(self) -> CacheStats:
        return self.plan_cache.stats()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan(self, stmt: ast.Statement) -> pl.PlanNode:
        """Plan any supported statement (dispatch by statement type)."""
        fault_check(self.faults, "planner.plan")
        if isinstance(stmt, ast.Select):
            return self.plan_select(stmt)
        if isinstance(stmt, ast.Insert):
            return self.plan_insert(stmt)
        if isinstance(stmt, ast.Update):
            return self.plan_update(stmt)
        if isinstance(stmt, ast.Delete):
            return self.plan_delete(stmt)
        raise PlanningError(f"cannot plan {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def plan_select(self, select: ast.Select) -> pl.PlanNode:
        """Plan a SELECT: resolve names, choose access paths, order
        joins, and place filter/aggregate/sort/limit operators."""
        scope = self._scope_for(select.sources)
        where = self._qualify_opt(select.where, scope)
        items = tuple(
            ast.SelectItem(expr=self._qualify(i.expr, scope), alias=i.alias)
            for i in select.items
        )
        # SELECT-list aliases are visible (at top level) in GROUP BY,
        # HAVING, and ORDER BY, per standard SQL scoping.
        aliases = {i.alias: i.expr for i in items if i.alias}

        def substitute_aliases(expr: ast.Expr) -> ast.Expr:
            """Replace bare alias references with the aliased expression
            (real columns shadow aliases, per SQL scoping)."""
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                if expr.column in aliases and not any(
                    expr.column in cols for cols in scope.bindings.values()
                ):
                    return aliases[expr.column]
                return expr
            cls_fields = getattr(expr, "__dataclass_fields__", None)
            if not cls_fields:
                return expr
            changes = {}
            for name in cls_fields:
                value = getattr(expr, name)
                if isinstance(value, ast.Expr):
                    changes[name] = substitute_aliases(value)
                elif isinstance(value, tuple) and value and all(
                    isinstance(v, ast.Expr) for v in value
                ):
                    changes[name] = tuple(
                        substitute_aliases(v) for v in value
                    )
            if not changes:
                return expr
            from dataclasses import replace

            return replace(expr, **changes)

        def qualify_out(expr: ast.Expr) -> ast.Expr:
            return self._qualify(substitute_aliases(expr), scope)

        group_by = tuple(qualify_out(g) for g in select.group_by)
        having = (
            None if select.having is None else qualify_out(select.having)
        )
        order_by = tuple(
            ast.OrderItem(expr=qualify_out(o.expr), descending=o.descending)
            for o in select.order_by
        )

        needed = self._needed_columns(items, where, group_by, having, order_by)
        conjuncts = conjuncts_of(where)
        local, join_preds, cross = self._partition_conjuncts(
            conjuncts, scope
        )

        rels = {
            src.binding: self._plan_source(src, local.get(src.binding), needed)
            for src in select.sources
        }
        joined = self._plan_joins(rels, join_preds, cross, list(scope.bindings))

        plan = joined
        aggregates = self._collect_aggregates(items, having, order_by)
        if group_by or aggregates:
            agg = pl.AggregatePlan(
                child=plan, group_exprs=group_by, aggregates=tuple(aggregates)
            )
            group_distinct = max(
                1.0,
                plan.est_rows
                ** (0.7 if group_by else 0.0),  # heuristic group count
            )
            agg.est_rows = group_distinct if group_by else 1.0
            agg.est_cost = plan.est_cost + plan.est_rows * (
                self.params.cpu_operator_cost * (1 + len(aggregates))
            )
            plan = agg
            if having is not None:
                flt = pl.FilterPlan(child=plan, predicate=having)
                flt.est_rows = max(plan.est_rows * 0.5, 1.0)
                flt.est_cost = plan.est_cost + plan.est_rows * (
                    self.params.cpu_operator_cost
                )
                plan = flt

        if order_by and not self._order_satisfied(plan, order_by):
            sort = pl.SortPlan(child=plan, keys=order_by)
            rows = max(plan.est_rows, 1.0)
            sort.est_rows = plan.est_rows
            sort.est_cost = plan.est_cost + rows * math.log2(rows + 1) * (
                self.params.cpu_operator_cost * 2
            )
            plan = sort

        project = pl.ProjectPlan(
            child=plan,
            items=items,
            star_bindings=tuple(scope.bindings),
        )
        project.est_rows = plan.est_rows
        project.est_cost = plan.est_cost + plan.est_rows * (
            self.params.cpu_operator_cost * max(len(items), 1)
        )
        plan = project

        if select.distinct:
            distinct = pl.DistinctPlan(child=plan)
            distinct.est_rows = max(plan.est_rows * 0.8, 1.0)
            distinct.est_cost = plan.est_cost + plan.est_rows * (
                self.params.cpu_operator_cost
            )
            plan = distinct

        if select.limit is not None:
            limited = pl.LimitPlan(child=plan, limit=select.limit)
            limited.est_rows = min(plan.est_rows, select.limit)
            limited.est_cost = plan.est_cost
            plan = limited
        return plan

    # -- scope / resolution ------------------------------------------------

    def _scope_for(self, sources: Sequence[ast.Source]) -> _Scope:
        scope = _Scope()
        for src in sources:
            if isinstance(src, ast.TableRef):
                if not self.catalog.has_table(src.name):
                    raise PlanningError(f"unknown table {src.name!r}")
                schema = self.catalog.table(src.name).schema
                scope.bindings[src.binding] = schema.column_names
            else:
                scope.bindings[src.binding] = self._subquery_outputs(
                    src.select
                )
        return scope

    def _subquery_outputs(self, select: ast.Select) -> Tuple[str, ...]:
        names: List[str] = []
        for i, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                inner_scope = self._scope_for(select.sources)
                for binding in (
                    [item.expr.table] if item.expr.table else inner_scope.bindings
                ):
                    names.extend(inner_scope.bindings[binding])
                continue
            names.append(_output_name(item, i))
        return tuple(names)

    # lint: exhaustive[Expr] fallthrough=Literal,Placeholder,Star
    def _qualify(self, expr: ast.Expr, scope: _Scope) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            return scope.resolve(expr)
        if isinstance(expr, ast.Comparison):
            return ast.Comparison(
                op=expr.op,
                left=self._qualify(expr.left, scope),
                right=self._qualify(expr.right, scope),
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                expr=self._qualify(expr.expr, scope),
                low=self._qualify(expr.low, scope),
                high=self._qualify(expr.high, scope),
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                expr=self._qualify(expr.expr, scope),
                items=tuple(self._qualify(i, scope) for i in expr.items),
            )
        if isinstance(expr, ast.Like):
            return ast.Like(
                expr=self._qualify(expr.expr, scope),
                pattern=self._qualify(expr.pattern, scope),
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(
                expr=self._qualify(expr.expr, scope), negated=expr.negated
            )
        if isinstance(expr, ast.And):
            return ast.And(
                items=tuple(self._qualify(i, scope) for i in expr.items)
            )
        if isinstance(expr, ast.Or):
            return ast.Or(
                items=tuple(self._qualify(i, scope) for i in expr.items)
            )
        if isinstance(expr, ast.Not):
            return ast.Not(child=self._qualify(expr.child, scope))
        if isinstance(expr, ast.Arith):
            return ast.Arith(
                op=expr.op,
                left=self._qualify(expr.left, scope),
                right=self._qualify(expr.right, scope),
            )
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                name=expr.name,
                args=tuple(self._qualify(a, scope) for a in expr.args),
                distinct=expr.distinct,
            )
        if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery)):
            raise PlanningError(
                "subqueries in WHERE must be inlined before planning "
                "(Database.execute does this automatically)"
            )
        return expr  # Literal, Placeholder, Star

    def _qualify_opt(
        self, expr: Optional[ast.Expr], scope: _Scope
    ) -> Optional[ast.Expr]:
        return None if expr is None else self._qualify(expr, scope)

    # -- conjunct partitioning ------------------------------------------------

    def _partition_conjuncts(
        self, conjuncts: Sequence[ast.Expr], scope: _Scope
    ) -> Tuple[
        Dict[str, List[ast.Expr]],
        List[Tuple[ast.ColumnRef, ast.ColumnRef, ast.Expr]],
        List[ast.Expr],
    ]:
        """Split WHERE conjuncts into per-binding, equi-join, and cross."""
        local: Dict[str, List[ast.Expr]] = {}
        joins: List[Tuple[ast.ColumnRef, ast.ColumnRef, ast.Expr]] = []
        cross: List[ast.Expr] = []
        for conj in conjuncts:
            bindings = {t for t, _ in referenced_columns(conj) if t}
            if len(bindings) <= 1:
                binding = next(iter(bindings), None)
                if binding is None:
                    cross.append(conj)  # constant predicate
                else:
                    local.setdefault(binding, []).append(conj)
                continue
            kind, payload = classify_atom(conj)
            if kind == "join" and len(bindings) == 2:
                joins.append((payload.left, payload.right, conj))
            else:
                cross.append(conj)
        return local, joins, cross

    def _needed_columns(self, items, where, group_by, having, order_by):
        """All (binding, column) pairs the query touches, per binding."""
        needed: Dict[str, Set[str]] = {}
        nodes: List[ast.Node] = [i.expr for i in items]
        nodes.extend(group_by)
        nodes.extend(o.expr for o in order_by)
        if where is not None:
            nodes.append(where)
        if having is not None:
            nodes.append(having)
        star_seen = [False]

        def collect(sub: ast.Node) -> None:
            if isinstance(sub, ast.FuncCall):
                # COUNT(*) needs no columns at all — don't let its
                # star disable index-only scans.
                for arg in sub.args:
                    if not isinstance(arg, ast.Star):
                        collect(arg)
                return
            if isinstance(sub, ast.Star):
                star_seen[0] = True
                return
            if isinstance(sub, ast.ColumnRef):
                if sub.table:
                    needed.setdefault(sub.table, set()).add(sub.column)
                return
            for child in ast._children(sub):
                collect(child)

        for node in nodes:
            collect(node)
        if star_seen[0]:
            return None  # everything needed; disables index-only scans
        return needed

    # -- base relations -------------------------------------------------------

    def _plan_source(
        self,
        src: ast.Source,
        local_conjuncts: Optional[List[ast.Expr]],
        needed: Optional[Dict[str, Set[str]]],
    ) -> _BaseRel:
        predicate = _and_all(local_conjuncts or [])
        if isinstance(src, ast.SubquerySource):
            child = self.plan_select(src.select)
            outputs = self._subquery_outputs(src.select)
            sub = pl.SubqueryScanPlan(
                child=child,
                binding=src.binding,
                output_columns=outputs,
                items=tuple(src.select.items),
            )
            sub.est_rows = child.est_rows
            sub.est_cost = child.est_cost
            plan: pl.PlanNode = sub
            if predicate is not None:
                flt = pl.FilterPlan(child=plan, predicate=predicate)
                flt.est_rows = max(plan.est_rows * 0.3, 1.0)
                flt.est_cost = plan.est_cost + plan.est_rows * (
                    self.params.cpu_operator_cost
                )
                plan = flt
            return _BaseRel(
                binding=src.binding, plan=plan, table=None,
                local_predicate=predicate,
            )

        needed_cols = None if needed is None else needed.get(src.binding)
        plan = self.best_access_path(
            src.name, src.binding, predicate, needed_cols
        )
        return _BaseRel(
            binding=src.binding,
            plan=plan,
            table=src.name,
            local_predicate=predicate,
        )

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------

    def best_access_path(
        self,
        table: str,
        binding: str,
        predicate: Optional[ast.Expr],
        needed_columns: Optional[Set[str]] = None,
    ) -> pl.PlanNode:
        """Choose the cheapest access path for one relation.

        Results are memoized on (table, binding, predicate, needed
        columns, *servable* index signature, catalog version); the
        returned plan node must therefore never be mutated by callers
        — wrap it instead.

        The signature component covers only the visible indexes whose
        lead column is sargable for this predicate — the only ones
        :meth:`_match_index` can turn into a plan. Keying on the full
        visible set made every candidate configuration a unique key
        (hypothetical indexes on unrelated columns churned it), so
        repeated configurations never hit.
        """
        eq_map, range_map = self._sargable_maps(predicate, binding)
        servable = [
            d
            for d in self.catalog.visible_index_defs(table)
            if d.columns
            and (d.columns[0] in eq_map or d.columns[0] in range_map)
        ]
        cache_key = None
        if self.plan_cache_enabled:
            cache_key = (
                "access",
                table,
                binding,
                predicate,
                None if needed_columns is None else frozenset(needed_columns),
                self.catalog.index_signature_of(servable),
                self.catalog.version,
            )
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                return cached
        self.access_paths_computed += 1
        entry = self.catalog.table(table)
        stats = entry.stats
        selectivity = self.estimate_selectivity(predicate, stats, binding)
        rows = max(stats.row_count * selectivity, 0.0)

        seq = pl.SeqScanPlan(table=table, binding=binding, predicate=predicate)
        seq.est_rows = rows
        seq.est_cost = (
            max(entry.heap.page_count, 1) * self.params.seq_page_cost
            + stats.row_count * self.params.cpu_tuple_cost
            + stats.row_count
            * self.params.cpu_operator_cost
            * max(len(conjuncts_of(predicate)), 1)
        )
        best: pl.PlanNode = seq

        for index_def in servable:
            candidate = self._match_index(
                index_def,
                table,
                binding,
                predicate,
                eq_map,
                range_map,
                stats,
                rows,
                needed_columns,
            )
            if candidate is not None and candidate.est_cost < best.est_cost:
                best = candidate
        if cache_key is not None:
            self.plan_cache.put(cache_key, best)
        return best

    def _sargable_maps(
        self, predicate: Optional[ast.Expr], binding: str
    ) -> Tuple[
        Dict[str, ast.Expr],
        Dict[str, Tuple[Optional[ast.Expr], Optional[ast.Expr], bool, bool]],
    ]:
        """Extract per-column equality and range bounds from conjuncts."""
        eq_map: Dict[str, ast.Expr] = {}
        range_map: Dict[
            str, Tuple[Optional[ast.Expr], Optional[ast.Expr], bool, bool]
        ] = {}
        for conj in conjuncts_of(predicate):
            kind, payload = classify_atom(conj)
            if kind != "filter":
                continue
            fp: FilterPredicate = payload  # type: ignore[assignment]
            if fp.column.table not in (binding, None):
                continue
            col = fp.column.column
            value_exprs = _value_exprs_of(conj)
            if fp.op == "=" and col not in eq_map and value_exprs:
                eq_map[col] = value_exprs[0]
            elif fp.op == "isnull" and col not in eq_map:
                # B+Tree keys store NULLs (sorted first), so IS NULL
                # is an equality probe on the NULL key.
                eq_map[col] = ast.Literal(value=None)
            elif fp.op in ("<", "<=") and value_exprs:
                low, high, li, hi_ = range_map.get(col, (None, None, True, True))
                range_map[col] = (low, value_exprs[0], li, fp.op == "<=")
            elif fp.op in (">", ">=") and value_exprs:
                low, high, li, hi_ = range_map.get(col, (None, None, True, True))
                range_map[col] = (value_exprs[0], high, fp.op == ">=", hi_)
            elif fp.op == "between" and len(value_exprs) == 2:
                range_map[col] = (value_exprs[0], value_exprs[1], True, True)
            elif fp.op == "like" and value_exprs:
                bounds = _like_prefix_bounds(value_exprs[0])
                if bounds is not None:
                    range_map[col] = bounds
        return eq_map, range_map

    def _match_index(
        self,
        index_def: IndexDef,
        table: str,
        binding: str,
        predicate: Optional[ast.Expr],
        eq_map: Dict[str, ast.Expr],
        range_map: Dict,
        stats: TableStats,
        result_rows: float,
        needed_columns: Optional[Set[str]],
    ) -> Optional[pl.IndexScanPlan]:
        """Build an index-scan plan if the index's prefix is sargable."""
        eq_exprs: List[ast.Expr] = []
        eq_columns: List[str] = []
        range_spec = None
        for col in index_def.columns:
            if col in eq_map:
                eq_exprs.append(eq_map[col])
                eq_columns.append(col)
                continue
            if col in range_map:
                range_spec = (col,) + range_map[col]
            break
        if not eq_exprs and range_spec is None:
            return None

        prefix_sel = 1.0
        for col, expr in zip(eq_columns, eq_exprs):
            prefix_sel *= stats.column(col).eq_selectivity(_literal_value(expr))
        scan_sel = prefix_sel
        if range_spec is not None:
            col, low, high, li, hi_inc = range_spec
            scan_sel *= stats.column(col).range_selectivity(
                _literal_value(low), _literal_value(high), li, hi_inc
            )

        shape = self.catalog.index_shape(index_def)
        index_only = (
            needed_columns is not None
            and needed_columns <= set(index_def.columns)
        )
        plan = pl.IndexScanPlan(
            table=table,
            binding=binding,
            index=index_def,
            eq_exprs=tuple(eq_exprs),
            predicate=predicate,
            index_only=index_only,
        )
        if range_spec is not None:
            col, low, high, li, hi_inc = range_spec
            plan.range_column = col
            plan.range_low = low
            plan.range_high = high
            plan.range_low_inclusive = li
            plan.range_high_inclusive = hi_inc
        plan.est_rows = result_rows
        heap_pages = self.catalog.table(table).heap.page_count
        probes = self._probe_count(index_def, table, eq_columns)
        plan.est_cost = self.index_scan_cost(
            shape, scan_sel, stats.row_count, index_only, heap_pages,
            probes,
        )
        return plan

    def _probe_count(
        self, index_def: IndexDef, table: str, eq_columns: List[str]
    ) -> int:
        """Trees a lookup must descend: 1 unless the index is LOCAL on
        a partitioned table and the partition key is not bound."""
        shape = self.catalog.index_shape(index_def)
        if shape.partitions <= 1:
            return 1
        schema = self.catalog.table(table).schema
        if schema.partition_key in eq_columns:
            return 1
        return shape.partitions

    def index_scan_cost(
        self,
        shape: IndexShape,
        scan_selectivity: float,
        table_rows: int,
        index_only: bool,
        heap_pages: float = 0.0,
        probes: int = 1,
    ) -> float:
        """Optimizer cost of one B+Tree scan with given selectivity.

        Heap access is bitmap-style: matched rows are fetched in rid
        order, so the IO charge is the expected number of *distinct*
        heap pages (Cardenas), not one random page per row. ``probes``
        multiplies the descent cost — a LOCAL index on a partitioned
        table descends one tree per partition unless the lookup prunes.
        """
        matched = max(scan_selectivity * max(table_rows, 1), 0.0)
        descent = shape.height * self.params.random_page_cost * max(probes, 1)
        leaf_pages = max(1.0, math.ceil(scan_selectivity * shape.leaf_pages))
        leaf_io = leaf_pages * self.params.random_page_cost
        entry_cpu = matched * self.params.cpu_index_tuple_cost
        if index_only:
            heap = 0.0
        else:
            heap = (
                pages_fetched(matched, heap_pages)
                * self.params.random_page_cost
                + matched * self.params.cpu_tuple_cost
            )
        return descent + leaf_io + entry_cpu + heap

    def parameterized_index_path(
        self,
        table: str,
        binding: str,
        join_column: str,
        outer_expr: ast.Expr,
        local_predicate: Optional[ast.Expr],
    ) -> Optional[pl.IndexScanPlan]:
        """An inner index scan probed once per outer row (index NL join).

        The join column may follow a prefix of columns bound by the
        inner relation's own equality filters — e.g. probing a
        composite primary key (s_w_id, s_i_id) with a constant s_w_id
        and the join key s_i_id from the outer row.
        """
        eq_map, _ranges = self._sargable_maps(local_predicate, binding)
        # As in best_access_path, the memo key fingerprints only the
        # indexes this probe could use: those reaching the join column
        # through a prefix of locally-bound equality columns.
        servable = [
            d
            for d in self.catalog.visible_index_defs(table)
            if _param_usable(d, join_column, eq_map)
        ]
        cache_key = None
        if self.plan_cache_enabled:
            cache_key = (
                "param",
                table,
                binding,
                join_column,
                outer_expr,
                local_predicate,
                self.catalog.index_signature_of(servable),
                self.catalog.version,
            )
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                return cached or None  # False sentinel = "no path"
        self.access_paths_computed += 1
        stats = self.catalog.stats(table)
        best: Optional[pl.IndexScanPlan] = None
        for index_def in servable:
            eq_exprs: List[ast.Expr] = []
            prefix_sel = 1.0
            matched_join = False
            for col in index_def.columns:
                if col == join_column:
                    eq_exprs.append(outer_expr)
                    prefix_sel *= stats.column(col).eq_selectivity(None)
                    matched_join = True
                    break
                if col in eq_map:
                    eq_exprs.append(eq_map[col])
                    prefix_sel *= stats.column(col).eq_selectivity(
                        _literal_value(eq_map[col])
                    )
                    continue
                break
            if not matched_join:
                continue
            plan = pl.IndexScanPlan(
                table=table,
                binding=binding,
                index=index_def,
                eq_exprs=tuple(eq_exprs),
                predicate=local_predicate,
            )
            local_sel = self.estimate_selectivity(
                local_predicate, stats, binding
            )
            shape = self.catalog.index_shape(index_def)
            plan.est_rows = max(
                stats.row_count
                * stats.column(join_column).eq_selectivity(None)
                * local_sel,
                0.0,
            )
            heap_pages = self.catalog.table(table).heap.page_count
            bound_columns = list(
                index_def.columns[: len(eq_exprs)]
            )
            probes = self._probe_count(index_def, table, bound_columns)
            plan.est_cost = self.index_scan_cost(
                shape, prefix_sel, stats.row_count, False, heap_pages,
                probes,
            )
            if best is None or plan.est_cost < best.est_cost:
                best = plan
        if cache_key is not None:
            # Store False (not None) so "no usable index" also caches.
            self.plan_cache.put(cache_key, best if best is not None else False)
        return best

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _plan_joins(
        self,
        rels: Dict[str, _BaseRel],
        join_preds: List[Tuple[ast.ColumnRef, ast.ColumnRef, ast.Expr]],
        cross: List[ast.Expr],
        order_hint: List[str],
    ) -> pl.PlanNode:
        if len(rels) == 1:
            plan = next(iter(rels.values())).plan
        else:
            plan = self._greedy_join(rels, join_preds, order_hint)
        if cross:
            predicate = _and_all(cross)
            flt = pl.FilterPlan(child=plan, predicate=predicate)
            flt.est_rows = max(plan.est_rows * 0.3, 1.0)
            flt.est_cost = plan.est_cost + plan.est_rows * (
                self.params.cpu_operator_cost * len(cross)
            )
            plan = flt
        return plan

    def _greedy_join(
        self,
        rels: Dict[str, _BaseRel],
        join_preds: List[Tuple[ast.ColumnRef, ast.ColumnRef, ast.Expr]],
        order_hint: List[str],
    ) -> pl.PlanNode:
        remaining = dict(rels)
        start_binding = min(
            remaining, key=lambda b: (remaining[b].plan.est_rows, order_hint.index(b))
        )
        current = remaining.pop(start_binding)
        plan = current.plan
        joined: Set[str] = {start_binding}
        pending = list(join_preds)

        while remaining:
            step = self._pick_join_step(plan, joined, remaining, pending)
            if step is None:
                # No connecting predicate: cartesian with the smallest.
                binding = min(
                    remaining, key=lambda b: remaining[b].plan.est_rows
                )
                rel = remaining.pop(binding)
                nl = pl.NestedLoopPlan(outer=plan, inner=rel.plan)
                nl.est_rows = max(plan.est_rows * rel.plan.est_rows, 1.0)
                nl.est_cost = (
                    plan.est_cost
                    + max(plan.est_rows, 1.0) * rel.plan.est_cost
                )
                plan = nl
                joined.add(binding)
                continue
            plan, binding, used = step
            joined.add(binding)
            remaining.pop(binding)
            pending = [p for p in pending if p not in used]
        return plan

    def _pick_join_step(
        self,
        outer: pl.PlanNode,
        joined: Set[str],
        remaining: Dict[str, _BaseRel],
        pending: List[Tuple[ast.ColumnRef, ast.ColumnRef, ast.Expr]],
    ) -> Optional[Tuple[pl.PlanNode, str, List]]:
        best: Optional[Tuple[float, pl.PlanNode, str, List]] = None
        for binding, rel in remaining.items():
            usable = []
            for pred in pending:
                left, right, _conj = pred
                sides = {left.table, right.table}
                if binding in sides and (sides - {binding}) <= joined:
                    usable.append(pred)
            if not usable:
                continue
            candidate = self._build_join(outer, rel, usable)
            if best is None or candidate.est_cost < best[0]:
                best = (candidate.est_cost, candidate, binding, usable)
        if best is None:
            return None
        _, candidate, binding, usable = best
        return candidate, binding, usable

    def _build_join(
        self,
        outer: pl.PlanNode,
        rel: _BaseRel,
        preds: List[Tuple[ast.ColumnRef, ast.ColumnRef, ast.Expr]],
    ) -> pl.PlanNode:
        """Build the cheaper of hash join / index NL for this step."""
        outer_keys: List[ast.Expr] = []
        inner_keys: List[ast.Expr] = []
        for left, right, _conj in preds:
            if left.table == rel.binding:
                inner_keys.append(left)
                outer_keys.append(right)
            else:
                inner_keys.append(right)
                outer_keys.append(left)

        join_rows = self._join_cardinality(outer, rel, inner_keys)

        hash_join = pl.HashJoinPlan(
            left=outer,
            right=rel.plan,
            left_keys=tuple(outer_keys),
            right_keys=tuple(inner_keys),
        )
        hash_join.est_rows = join_rows
        hash_join.est_cost = (
            outer.est_cost
            + rel.plan.est_cost
            + rel.plan.est_rows * self.params.cpu_operator_cost * 2
            + outer.est_rows * self.params.cpu_operator_cost * 2
        )
        best: pl.PlanNode = hash_join

        if rel.table is not None:
            first_inner = inner_keys[0]
            param_scan = self.parameterized_index_path(
                rel.table,
                rel.binding,
                first_inner.column,
                outer_keys[0],
                rel.local_predicate,
            )
            if param_scan is not None:
                residual = _and_all(
                    [conj for _, _, conj in preds[1:]]
                )
                nl = pl.NestedLoopPlan(
                    outer=outer, inner=param_scan, predicate=residual
                )
                nl.est_rows = join_rows
                nl.est_cost = (
                    outer.est_cost
                    + max(outer.est_rows, 1.0) * param_scan.est_cost
                )
                if nl.est_cost < best.est_cost:
                    best = nl
        return best

    def _join_cardinality(
        self,
        outer: pl.PlanNode,
        rel: _BaseRel,
        inner_keys: List[ast.ColumnRef],
    ) -> float:
        distinct = 1.0
        if rel.table is not None and inner_keys:
            stats = self.catalog.stats(rel.table)
            distinct = max(
                float(stats.column(inner_keys[0].column).n_distinct), 1.0
            )
        denom = max(distinct, 1.0)
        return max(outer.est_rows * rel.plan.est_rows / denom, 1.0)

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------

    def _order_satisfied(
        self, plan: pl.PlanNode, order_by: Tuple[ast.OrderItem, ...]
    ) -> bool:
        """True if ``plan`` already emits rows in the requested order."""
        node = plan
        while isinstance(node, (pl.ProjectPlan, pl.FilterPlan, pl.LimitPlan)):
            node = node.child
        if not isinstance(node, pl.IndexScanPlan):
            return False
        if any(o.descending for o in order_by):
            return False
        offset = len(node.eq_exprs)
        available = node.index.columns[offset:]
        wanted: List[str] = []
        for item in order_by:
            if not isinstance(item.expr, ast.ColumnRef):
                return False
            if item.expr.table != node.binding:
                return False
            wanted.append(item.expr.column)
        return tuple(wanted) == tuple(available[: len(wanted)])

    # ------------------------------------------------------------------
    # selectivity
    # ------------------------------------------------------------------

    @staticmethod
    def _unique_atoms(items) -> List[ast.Expr]:
        """Items deduped on semantic identity, order preserved.

        Independence-assumption selectivity math squares (or worse)
        when the same condition appears twice, so equivalent atoms
        that merely differ in spelling must collapse: an IN-list is
        keyed by its value set, and a one-element IN is the same atom
        as the corresponding equality.
        """
        seen = {}
        for item in items:
            key: object = item
            if isinstance(item, ast.InList):
                values = frozenset(item.items)
                if len(values) == 1:
                    (only,) = values
                    key = ("=", item.expr, only)
                else:
                    key = ("in", item.expr, values)
            elif isinstance(item, ast.Comparison) and item.op == "=":
                key = ("=", item.left, item.right)
            if key not in seen:
                seen[key] = item
        return list(seen.values())

    @staticmethod
    def _merged_range_selectivity(
        atoms: Sequence[ast.Expr], stats: TableStats
    ) -> Tuple[float, List[ast.Expr]]:
        """Estimate multi-bound range conjuncts as single intervals.

        Under the independence assumption ``b > 9 AND b < 10``
        multiplies two loose one-sided selectivities, grossly
        overestimating narrow (or empty) ranges. Bounds on the same
        column are intersected instead and estimated with one
        ``range_selectivity`` call. Returns the merged selectivity
        product plus the atoms left for the per-atom path — columns
        with fewer than two usable bounds, unknown values
        (placeholders), and non-comparable bound types all fall back.
        """
        bounds: Dict[str, List[Tuple[str, Tuple[object, ...]]]] = {}
        atoms_by_column: Dict[str, List[ast.Expr]] = {}
        for atom in atoms:
            kind, payload = classify_atom(atom)
            if kind != "filter":
                continue
            fp: FilterPredicate = payload  # type: ignore[assignment]
            if fp.op not in ("<", "<=", ">", ">=", "between"):
                continue
            if not fp.values or any(v is None for v in fp.values):
                continue
            bounds.setdefault(fp.column.column, []).append(
                (fp.op, fp.values)
            )
            atoms_by_column.setdefault(fp.column.column, []).append(atom)
        sel = 1.0
        merged_atoms: set = set()
        for column, entries in bounds.items():
            if len(entries) < 2:
                continue
            interval = _intersect_bounds(entries)
            if interval is None:
                continue
            low, high, low_inc, high_inc = interval
            sel *= stats.column(column).range_selectivity(
                low, high, low_inc, high_inc
            )
            merged_atoms.update(id(a) for a in atoms_by_column[column])
        rest = [a for a in atoms if id(a) not in merged_atoms]
        return sel, rest

    def estimate_selectivity(
        self,
        predicate: Optional[ast.Expr],
        stats: TableStats,
        binding: str,
    ) -> float:
        if predicate is None:
            return 1.0
        if isinstance(predicate, ast.And):
            # Dedupe repeated conjuncts: `a IN (1,2) AND a IN (2,1)`
            # must not square the selectivity. Atoms are deduped on a
            # canonical key (IN-lists by value *set*, one-element
            # IN ≡ equality), not raw node equality.
            atoms = self._unique_atoms(predicate.items)
            sel, rest = self._merged_range_selectivity(atoms, stats)
            for item in rest:
                sel *= self.estimate_selectivity(item, stats, binding)
            return sel
        if isinstance(predicate, ast.Or):
            sel = 0.0
            for item in self._unique_atoms(predicate.items):
                s = self.estimate_selectivity(item, stats, binding)
                sel = sel + s - sel * s
            return sel
        if isinstance(predicate, ast.Not):
            return max(
                1.0 - self.estimate_selectivity(predicate.child, stats, binding),
                1e-9,
            )
        kind, payload = classify_atom(predicate)
        if kind == "filter":
            fp: FilterPredicate = payload  # type: ignore[assignment]
            return stats.column(fp.column.column).selectivity(fp.op, fp.values)
        if kind == "join":
            return 1.0  # handled at the join step
        return 0.25  # unknown atom

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def plan_insert(self, stmt: ast.Insert) -> pl.InsertPlan:
        """Plan an INSERT; cost = heap IO + per-index maintenance."""
        if not self.catalog.has_table(stmt.table):
            raise PlanningError(f"unknown table {stmt.table!r}")
        schema = self.catalog.table(stmt.table).schema
        for col in stmt.columns:
            if not schema.has_column(col):
                raise PlanningError(
                    f"no column {col!r} in table {stmt.table!r}"
                )
        rows = tuple(
            tuple(_require_literal(v) for v in row) for row in stmt.rows
        )
        plan = pl.InsertPlan(table=stmt.table, columns=stmt.columns, rows=rows)
        plan.est_rows = float(len(rows))
        plan.est_cost = len(rows) * (
            self.params.random_page_cost + self.params.cpu_tuple_cost
        ) + len(rows) * self.maintenance_cost_per_row(stmt.table)
        return plan

    def plan_update(self, stmt: ast.Update) -> pl.UpdatePlan:
        """Plan an UPDATE: scan access path + maintenance on indexes
        covering any assigned column."""
        scope = self._scope_for((ast.TableRef(name=stmt.table),))
        where = self._qualify_opt(stmt.where, scope)
        schema = self.catalog.table(stmt.table).schema
        for a in stmt.assignments:
            if not schema.has_column(a.column):
                raise PlanningError(
                    f"no column {a.column!r} in table {stmt.table!r}"
                )
        assignments = tuple(
            ast.Assignment(
                column=a.column, value=self._qualify(a.value, scope)
            )
            for a in stmt.assignments
        )
        child = self.best_access_path(stmt.table, stmt.table, where)
        plan = pl.UpdatePlan(
            child=child,
            table=stmt.table,
            binding=stmt.table,
            assignments=assignments,
        )
        changed = {a.column for a in assignments}
        plan.est_rows = child.est_rows
        plan.est_cost = child.est_cost + child.est_rows * (
            self.params.random_page_cost
            + self.maintenance_cost_per_row(stmt.table, changed)
        )
        return plan

    def plan_delete(self, stmt: ast.Delete) -> pl.DeletePlan:
        """Plan a DELETE; per the paper, no index maintenance charge."""
        scope = self._scope_for((ast.TableRef(name=stmt.table),))
        where = self._qualify_opt(stmt.where, scope)
        child = self.best_access_path(stmt.table, stmt.table, where)
        plan = pl.DeletePlan(child=child, table=stmt.table, binding=stmt.table)
        plan.est_rows = child.est_rows
        # Per the paper's model, DELETE defers index maintenance: only
        # heap work is charged.
        plan.est_cost = child.est_cost + child.est_rows * (
            self.params.random_page_cost
        )
        return plan

    def maintenance_components_per_row(
        self, table: str, changed_columns: Optional[Set[str]] = None
    ) -> Tuple[float, float]:
        """Per-row index maintenance (io, cpu) over *visible* indexes.

        Implements the Section V formulas: ``C_cpu = t_start +
        t_running`` per affected index, plus amortized page-write IO
        (one leaf write per insert plus 1/fanout of split writes).
        Under a what-if overlay this charges hypothetical indexes too,
        which is how the advisor sees the write penalty of a candidate
        before building it.
        """
        io_total = 0.0
        cpu_total = 0.0
        schema = self.catalog.table(table).schema
        partition_moves = (
            changed_columns is not None
            and schema.partition_key is not None
            and schema.partition_key in changed_columns
        )
        for index_def in self.catalog.visible_index_defs(table):
            keyed = changed_columns is None or bool(
                set(index_def.columns) & changed_columns
            )
            rerouted = partition_moves and (
                index_def.scope.value == "local" and schema.is_partitioned
            )
            if not keyed and not rerouted:
                continue
            shape = self.catalog.index_shape(index_def)
            cpu_total += index_cpu_cost(
                max(shape.entry_count, 1), shape.height, 1, self.params
            )
            leaf_fanout = max(
                shape.entry_count / max(shape.leaf_pages, 1), 8.0
            )
            io_total += (1.0 + 1.0 / leaf_fanout) * self.params.seq_page_cost
        return io_total, cpu_total

    def maintenance_cost_per_row(
        self, table: str, changed_columns: Optional[Set[str]] = None
    ) -> float:
        """Scalar form of :meth:`maintenance_components_per_row`."""
        io, cpu = self.maintenance_components_per_row(table, changed_columns)
        return io + cpu

    # ------------------------------------------------------------------
    # collection helpers
    # ------------------------------------------------------------------

    def _collect_aggregates(
        self,
        items: Tuple[ast.SelectItem, ...],
        having: Optional[ast.Expr],
        order_by: Tuple[ast.OrderItem, ...],
    ) -> List[ast.FuncCall]:
        seen: Dict[str, ast.FuncCall] = {}
        nodes: List[ast.Node] = [i.expr for i in items]
        if having is not None:
            nodes.append(having)
        nodes.extend(o.expr for o in order_by)
        for node in nodes:
            for sub in ast.walk(node):
                if isinstance(sub, ast.FuncCall) and sub.is_aggregate:
                    seen.setdefault(str(sub), sub)
        return list(seen.values())


# ---------------------------------------------------------------------------
# module helpers
# ---------------------------------------------------------------------------


def _and_all(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ast.And(items=tuple(conjuncts))


def _output_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.column
    return f"c{position}"


def _intersect_bounds(
    entries: Sequence[Tuple[str, Tuple[object, ...]]],
) -> Optional[Tuple[object, object, bool, bool]]:
    """Intersect ``(op, values)`` range bounds into one interval.

    Returns ``(low, high, low_inclusive, high_inclusive)`` with open
    ends as ``None``, or ``None`` when any pair of bounds is not
    mutually comparable (mixed types) — callers then fall back to
    independent per-atom estimation. An exclusive bound wins over an
    inclusive one at the same value (the tighter constraint).
    """
    low: object = None
    high: object = None
    low_inc = True
    high_inc = True

    def tighter_low(value: object, inclusive: bool) -> None:
        nonlocal low, low_inc
        if low is None or value > low:  # type: ignore[operator]
            low, low_inc = value, inclusive
        elif value == low:
            low_inc = low_inc and inclusive

    def tighter_high(value: object, inclusive: bool) -> None:
        nonlocal high, high_inc
        if high is None or value < high:  # type: ignore[operator]
            high, high_inc = value, inclusive
        elif value == high:
            high_inc = high_inc and inclusive

    try:
        for op, values in entries:
            if op == "<":
                tighter_high(values[0], False)
            elif op == "<=":
                tighter_high(values[0], True)
            elif op == ">":
                tighter_low(values[0], False)
            elif op == ">=":
                tighter_low(values[0], True)
            elif op == "between":
                tighter_low(values[0], True)
                tighter_high(values[1], True)
    except TypeError:
        return None
    return low, high, low_inc, high_inc


# lint: ignore[ast-exhaustive] -- validator, not a dispatcher: rejects all non-constants by design
def _require_literal(expr: ast.Expr) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    if (
        isinstance(expr, ast.Arith)
        and isinstance(expr.left, ast.Literal)
        and isinstance(expr.right, ast.Literal)
    ):
        from repro.engine.executor import apply_arith

        return apply_arith(expr.op, expr.left.value, expr.right.value)
    raise PlanningError(f"INSERT values must be literals, got {expr}")


def _param_usable(
    index_def: IndexDef,
    join_column: str,
    eq_map: Dict[str, ast.Expr],
) -> bool:
    """Can this index serve an index-NL probe on ``join_column``?

    Mirrors the column walk in :meth:`Planner.parameterized_index_path`:
    the join column must be reachable through a prefix of columns bound
    by the inner relation's own equality filters.
    """
    for col in index_def.columns:
        if col == join_column:
            return True
        if col in eq_map:
            continue
        return False
    return False


def _value_exprs_of(conj: ast.Expr) -> List[ast.Expr]:
    """Constant-side expressions of a sargable filter conjunct."""
    if isinstance(conj, ast.Comparison):
        if isinstance(conj.left, ast.ColumnRef):
            return [conj.right]
        return [conj.left]
    if isinstance(conj, ast.Between):
        return [conj.low, conj.high]
    if isinstance(conj, ast.Like):
        return [conj.pattern]
    if isinstance(conj, ast.InList):
        return list(conj.items)
    return []


def _literal_value(expr: Optional[ast.Expr]) -> Optional[object]:
    if isinstance(expr, ast.Literal):
        return expr.value
    return None


def _like_prefix_bounds(pattern_expr: ast.Expr):
    """Convert a constant prefix LIKE pattern into range bounds."""
    if not isinstance(pattern_expr, ast.Literal):
        return None
    pattern = pattern_expr.value
    if not isinstance(pattern, str):
        return None
    prefix = pattern.split("%", 1)[0].split("_", 1)[0]
    if not prefix or prefix == pattern:
        return None
    low = ast.Literal(value=prefix)
    high = ast.Literal(value=prefix + "￿")
    return (low, high, True, False)
