"""The Database facade: DDL, DML, what-if costing, and monitoring.

This is the substrate's public surface. It stands in for the openGauss
instance the paper deploys AutoIndex against:

* ``execute(sql)`` parses, plans, and runs a statement, returning rows
  plus the deterministic execution cost;
* ``create_index`` / ``drop_index`` materialise real B+Trees;
* per-index usage metrics and a workload monitor feed AutoIndex's
  diagnosis module.

The hypopg-style what-if API lives one layer up, on the ports
boundary (``repro.ports``): the tuner speaks ``TuningBackend``, and
``MemoryBackend`` adapts this facade to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.catalog import Catalog
from repro.engine.cost import CostParams, CostTracker, DEFAULT_PARAMS
from repro.engine.executor import Executor
from repro.engine.faults import FaultInjector, check as fault_check
from repro.engine.index import Index, IndexDef
from repro.engine.metrics import IndexUsage, QueryRecord, WorkloadMonitor
from repro.engine.plan import (
    DeletePlan,
    InsertPlan,
    PlanNode,
    UpdatePlan,
    indexes_used,
)
from repro.engine.planner import Planner
from repro.engine.schema import TableSchema
from repro.engine.stats import analyze_table
from repro.sql import ast, parse
from repro.sql.fingerprint import fingerprint


@dataclass
class ExecutionResult:
    """The outcome of one executed statement."""

    rows: List[Tuple[object, ...]] = field(default_factory=list)
    rowcount: int = 0
    cost: float = 0.0
    tracker: CostTracker = field(default_factory=CostTracker)
    plan: Optional[PlanNode] = None

    @property
    def scalar(self) -> object:
        """First column of the first row (for aggregate lookups)."""
        if not self.rows:
            return None
        return self.rows[0][0]


class Database:
    """An in-process relational database with cost instrumentation."""

    def __init__(
        self,
        params: CostParams = DEFAULT_PARAMS,
        faults: Optional[FaultInjector] = None,
    ):
        self.params = params
        self.faults = faults
        self.catalog = Catalog()
        self.planner = Planner(self.catalog, params, faults=faults)
        self.monitor = WorkloadMonitor()
        self._statement_cache: Dict[str, ast.Statement] = {}
        # Bumped whenever usage counters are reset out-of-band (the
        # catalog version does not move then); incremental diagnosis
        # keys its classification reuse on this.
        self._usage_epoch = 0

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Create a table; its primary key gets a unique index."""
        self.catalog.add_table(schema)
        if schema.primary_key:
            self.create_index(
                IndexDef(
                    table=schema.name,
                    columns=tuple(schema.primary_key),
                    name=f"pk_{schema.name}",
                    unique=True,
                )
            )

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def create_index(self, definition: IndexDef) -> Index:
        """Materialise an index (bulk-built from current table data).

        Atomic with respect to the catalog: the B+Tree build happens
        *before* registration, so a build failure (including an
        injected ``index.build`` fault) leaves the catalog exactly as
        it was — no half-registered index.
        """
        entry = self.catalog.table(definition.table)
        fault_check(self.faults, "index.build")
        index = Index(definition, entry.schema)
        index.build(list(entry.heap.scan()))
        self.catalog.add_index(index)
        return index

    def drop_index(self, definition: IndexDef) -> None:
        # Drops share the ``index.build`` fault point with creates:
        # it fires *before* the catalog mutates, so an injected DDL
        # fault leaves the index fully in place — never half-dropped.
        fault_check(self.faults, "index.build")
        self.catalog.drop_index(definition)

    def has_index(self, definition: IndexDef) -> bool:
        return self.catalog.get_index(definition) is not None

    def index_defs(self) -> List[IndexDef]:
        return self.catalog.real_index_defs()

    # ------------------------------------------------------------------
    # bulk loading & stats
    # ------------------------------------------------------------------

    def load_rows(
        self, table: str, rows: Iterable[Tuple[object, ...]]
    ) -> int:
        """Bulk-load rows without cost accounting (initial data load).

        Existing indexes are rebuilt afterwards (bulk load), matching
        how real systems load then index.
        """
        entry = self.catalog.table(table)
        count = 0
        for row in rows:
            entry.heap.insert(row)
            count += 1
        contents = list(entry.heap.scan())
        for index in entry.indexes.values():
            index.build(contents)
        self.catalog.bump_version()
        return count

    def analyze(self, table: Optional[str] = None) -> None:
        """Recompute statistics (ANALYZE) for one table or all."""
        names = [table] if table else self.catalog.table_names()
        for name in names:
            fault_check(self.faults, "stats.refresh")
            entry = self.catalog.table(name)
            rows = [row for _rid, row in entry.heap.scan()]
            entry.stats = analyze_table(rows, entry.schema.column_names)
        self.catalog.bump_version()

    def table_row_count(self, table: str) -> int:
        return self.catalog.table(table).heap.row_count

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def parse_statement(self, sql: str) -> ast.Statement:
        fault_check(self.faults, "parser.parse")
        cached = self._statement_cache.get(sql)
        if cached is None:
            cached = parse(sql)
            if len(self._statement_cache) < 50000:
                self._statement_cache[sql] = cached
        return cached

    def execute(
        self, statement: Union[str, ast.Statement]
    ) -> ExecutionResult:
        """Parse, plan, execute, and meter one statement."""
        if isinstance(statement, str):
            statement = self.parse_statement(statement)
        tracker = CostTracker()
        statement = self._inline_subqueries(statement, tracker)
        plan = self.planner.plan(statement)
        executor = Executor(self.catalog, self.params, tracker)

        result = ExecutionResult(plan=plan, tracker=tracker)
        if isinstance(plan, InsertPlan):
            result.rowcount = executor.run_insert(plan)
            self.catalog.bump_version()
        elif isinstance(plan, UpdatePlan):
            result.rowcount = executor.run_update(plan)
            self.catalog.bump_version()
        elif isinstance(plan, DeletePlan):
            result.rowcount = executor.run_delete(plan)
            self.catalog.bump_version()
        else:
            result.rows = executor.run_select(plan)
            result.rowcount = len(result.rows)
        result.cost = tracker.total(self.params)

        self.monitor.record(
            QueryRecord(
                fingerprint=fingerprint(statement),
                cost=result.cost,
                is_write=ast.is_write(statement),
                indexes_used=tuple(indexes_used(plan)),
            )
        )
        return result

    def explain(self, sql: str) -> str:
        """Plan a statement and render the plan tree."""
        statement = self.parse_statement(sql)
        statement = self._inline_subqueries(statement, CostTracker())
        return self.planner.plan(statement).explain()

    def explain_analyze(self, sql: str) -> str:
        """Plan *and execute* a statement; render the plan tree with
        the optimizer estimate next to the measured execution cost.

        The estimate/actual gap is exactly what the paper's learned
        estimator corrects for, so this is the first tool to reach for
        when a recommendation looks off.
        """
        result = self.execute(sql)
        assert result.plan is not None
        lines = [result.plan.explain()]
        lines.append(
            f"estimated cost: {result.plan.est_cost:.2f}   "
            f"actual cost: {result.cost:.2f}   "
            f"rows: {result.rowcount}"
        )
        tracker = result.tracker
        lines.append(
            "work: "
            f"seq_pages={tracker.seq_pages:.0f} "
            f"random_pages={tracker.random_pages:.0f} "
            f"heap_tuples={tracker.heap_tuples:.0f} "
            f"index_tuples={tracker.index_tuples:.0f} "
            f"operator_ops={tracker.operator_ops:.0f}"
        )
        return "\n".join(lines)

    def _inline_subqueries(
        self, statement: ast.Statement, tracker: CostTracker
    ) -> ast.Statement:
        """Execute uncorrelated WHERE subqueries and inline results.

        ``IN (SELECT ...)`` becomes an IN-list; scalar subqueries
        become literals. Derived tables in FROM are left for the
        planner (SubqueryScanPlan).
        """
        if isinstance(statement, ast.Select):
            if statement.where is None:
                return statement
            rewritten = self._inline_expr(statement.where, tracker)
            if rewritten is statement.where:
                return statement
            return ast.Select(
                items=statement.items,
                sources=statement.sources,
                where=rewritten,
                group_by=statement.group_by,
                having=statement.having,
                order_by=statement.order_by,
                limit=statement.limit,
                distinct=statement.distinct,
            )
        if isinstance(statement, (ast.Update, ast.Delete)):
            where = getattr(statement, "where", None)
            if where is None:
                return statement
            rewritten = self._inline_expr(where, tracker)
            if rewritten is where:
                return statement
            if isinstance(statement, ast.Update):
                return ast.Update(
                    table=statement.table,
                    assignments=statement.assignments,
                    where=rewritten,
                )
            return ast.Delete(table=statement.table, where=rewritten)
        return statement

    def _inline_expr(self, expr: ast.Expr, tracker: CostTracker) -> ast.Expr:
        if isinstance(expr, ast.InSubquery):
            values = self._run_subquery(expr.select, tracker)
            items = tuple(
                ast.Literal(value=v[0]) for v in values if v and v[0] is not None
            )
            if not items:
                items = (ast.Literal(value=None),)
            return ast.InList(expr=expr.expr, items=items)
        if isinstance(expr, ast.ScalarSubquery):
            values = self._run_subquery(expr.select, tracker)
            scalar = values[0][0] if values else None
            return ast.Literal(value=scalar)
        if isinstance(expr, ast.And):
            return ast.And(
                items=tuple(self._inline_expr(i, tracker) for i in expr.items)
            )
        if isinstance(expr, ast.Or):
            return ast.Or(
                items=tuple(self._inline_expr(i, tracker) for i in expr.items)
            )
        if isinstance(expr, ast.Not):
            return ast.Not(child=self._inline_expr(expr.child, tracker))
        if isinstance(expr, ast.Comparison):
            return ast.Comparison(
                op=expr.op,
                left=self._inline_expr(expr.left, tracker),
                right=self._inline_expr(expr.right, tracker),
            )
        if isinstance(expr, ast.Arith):
            return ast.Arith(
                op=expr.op,
                left=self._inline_expr(expr.left, tracker),
                right=self._inline_expr(expr.right, tracker),
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                expr=self._inline_expr(expr.expr, tracker),
                low=self._inline_expr(expr.low, tracker),
                high=self._inline_expr(expr.high, tracker),
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                expr=self._inline_expr(expr.expr, tracker),
                items=tuple(
                    self._inline_expr(i, tracker) for i in expr.items
                ),
            )
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                name=expr.name,
                args=tuple(
                    self._inline_expr(a, tracker) for a in expr.args
                ),
                distinct=expr.distinct,
            )
        return expr

    def _run_subquery(
        self, select: ast.Select, tracker: CostTracker
    ) -> List[Tuple[object, ...]]:
        plan = self.planner.plan(select)
        executor = Executor(self.catalog, self.params, tracker)
        return executor.run_select(plan)

    # ------------------------------------------------------------------
    # sizes & metrics
    # ------------------------------------------------------------------

    def index_size_bytes(self, definition: IndexDef) -> int:
        """Size of an index — real bytes if built, estimated otherwise."""
        return self.catalog.index_shape(definition).byte_size

    def total_index_bytes(self) -> int:
        return self.catalog.total_index_bytes()

    def index_usage(self) -> List[IndexUsage]:
        """Current usage counters for every materialised index."""
        return [
            IndexUsage(
                definition=ix.definition,
                lookups=ix.lookup_count,
                maintenance_ops=ix.maintenance_count,
                byte_size=ix.byte_size,
            )
            for ix in self.catalog.real_indexes()
        ]

    def reset_index_usage(self) -> None:
        for ix in self.catalog.real_indexes():
            ix.lookup_count = 0
            ix.maintenance_count = 0
        self._usage_epoch += 1

    def usage_epoch(self) -> int:
        """Monotone counter of out-of-band usage-counter resets."""
        return self._usage_epoch
