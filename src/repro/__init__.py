"""AutoIndex reproduction: incremental index management for dynamic
workloads (Zhou et al., ICDE 2022), on a from-scratch relational
substrate.

Public API quick tour::

    from repro import AutoIndexAdvisor, IndexDef, create_backend
    from repro.workloads import TpccWorkload

    workload = TpccWorkload(scale=1)
    db = create_backend("memory")   # or "sqlite"
    workload.build(db)

    advisor = AutoIndexAdvisor(db, storage_budget=50 * 1024 * 1024)
    for query in workload.queries(500):
        result = db.execute(query.sql)
        advisor.observe(query.sql)
    report = advisor.tune()
    print(report.created, report.dropped)
"""

from repro.core.advisor import AutoIndexAdvisor, TuningReport
from repro.core.baselines import DefaultAdvisor, GreedyAdvisor, QueryLevelAdvisor
from repro.core.estimator import (
    BenefitEstimator,
    DeepIndexEstimator,
    WhatIfCostModel,
)
from repro.core.templates import TemplateStore
from repro.engine.database import Database, ExecutionResult
from repro.engine.index import IndexDef, IndexScope
from repro.engine.schema import Column, ColumnType, TableSchema, table
from repro.ports import (
    MemoryBackend,
    SqliteBackend,
    TuningBackend,
    available_backends,
    create_backend,
)

__version__ = "1.0.0"

__all__ = [
    "AutoIndexAdvisor",
    "BenefitEstimator",
    "Column",
    "ColumnType",
    "Database",
    "DeepIndexEstimator",
    "DefaultAdvisor",
    "ExecutionResult",
    "GreedyAdvisor",
    "IndexDef",
    "IndexScope",
    "MemoryBackend",
    "QueryLevelAdvisor",
    "SqliteBackend",
    "TableSchema",
    "TemplateStore",
    "TuningBackend",
    "TuningReport",
    "WhatIfCostModel",
    "available_backends",
    "create_backend",
    "table",
]
