"""repro.serve — the streaming multi-tenant tuning daemon.

The serve layer turns the call-per-round advisor library into a
long-running service: a :class:`~repro.serve.daemon.TuningDaemon`
hosts many per-tenant tuning contexts (each with its own backend,
template store, safety controller, and round lifecycle), runs due
rounds under fair admission control, and checkpoints every tenant
into its own crash-safe namespace.

Layering: serve imports core/ports/engine/workloads; nothing outside
``python -m repro.serve`` and the tests imports serve (enforced by
the layers checker, like bench).
"""

from repro.serve.config import (
    TenantSpec,
    make_generator,
    parse_tenant_spec,
    workload_names,
)
from repro.serve.daemon import TuningDaemon
from repro.serve.registry import TenantRegistry, TenantRuntime
from repro.serve.scheduler import RoundJob, RoundScheduler

__all__ = [
    "TenantSpec",
    "TenantRegistry",
    "TenantRuntime",
    "TuningDaemon",
    "RoundJob",
    "RoundScheduler",
    "make_generator",
    "parse_tenant_spec",
    "workload_names",
]
