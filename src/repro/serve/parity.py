"""Daemon-vs-library parity: the determinism contract, executable.

The headline guarantee of the serve layer is that moving from the
one-shot library path (``advisor.observe(...)`` + ``advisor.tune()``)
to the streaming daemon changes *when* rounds run, never *what* they
compute.  This module makes that checkable: :func:`replay_library_path`
re-runs a workload-seeded tenant's exact statement stream through a
fresh advisor using only library calls, and :func:`compare_surfaces`
diffs the two normalized surfaces —

* the per-round :meth:`~repro.core.pipeline.TuningReport.to_dict`
  sequence (timing-free),
* the template-store state,
* the applied index set,
* the benefit-ledger claims.

``python -m repro.serve verify`` drives this offline against a
tenant's checkpoint namespace; ``tests/serve/test_parity.py`` drives
it in-process against a live daemon.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core import checkpoint
from repro.core.advisor import AutoIndexAdvisor
from repro.ports.factory import create_backend
from repro.serve.config import TenantSpec, make_generator
from repro.serve.registry import SERVE_COMPONENT

__all__ = [
    "library_surface",
    "replay_library_path",
    "checkpoint_surface",
    "compare_surfaces",
]

#: Keep in sync with the registry's default (ports can't import core,
#: so the advisor default is mirrored rather than imported there).
_DEFAULT_TEMPLATE_CAPACITY = 5000


def replay_library_path(
    spec: TenantSpec, statement_count: int
) -> dict:
    """Run a tenant's stream through the plain library path.

    Rebuilds the tenant world from its spec (same backend kind, seed,
    shard budget, workload, advisor knobs, safety policy), generates
    the same ``statement_count``-long query stream, and fires
    ``advisor.tune()`` at exactly the offsets the daemon's inline
    session fires rounds: every ``round_every`` pending statements,
    capped by the round budget.  Returns the normalized surface.
    """
    if spec.workload is None:
        raise ValueError(
            f"tenant {spec.tenant_id!r} has no workload; the library "
            "replay needs a regenerable stream"
        )
    backend = create_backend(
        spec.backend.kind,
        seed=spec.backend.seed,
        shard_budget=spec.backend.shard_budget,
    )
    generator = make_generator(spec.workload, seed=spec.workload_seed)
    generator.build(backend)
    capacity = (
        spec.backend.shard_budget
        if spec.backend.shard_budget is not None
        else _DEFAULT_TEMPLATE_CAPACITY
    )
    advisor = AutoIndexAdvisor(
        backend,
        storage_budget=spec.storage_budget,
        template_capacity=capacity,
        mcts_iterations=spec.mcts_iterations,
        rollouts=spec.rollouts,
        top_templates=spec.top_templates,
        seed=spec.backend.seed,
        safety=spec.safety.controller(),
    )
    queries = generator.queries(
        statement_count, seed=spec.workload_seed
    )
    reports = []
    pending = 0
    ingested = 0
    for query in queries:
        advisor.observe(query.sql)
        pending += 1
        ingested += 1
        budget_left = (
            spec.round_budget is None
            or len(reports) < spec.round_budget
        )
        if (
            pending >= spec.round_every
            and ingested >= spec.min_statements
            and budget_left
        ):
            reports.append(
                advisor.tune(
                    force=spec.force_rounds,
                    trigger_threshold=spec.trigger_threshold,
                )
            )
            pending = 0
    return library_surface(advisor, backend, reports)


def library_surface(advisor, backend, reports) -> dict:
    """Normalize an advisor/backend pair into the parity surface."""
    return {
        "reports": [report.to_dict() for report in reports],
        "templates": advisor.store.to_dict(),
        "applied_indexes": sorted(
            "|".join(map(str, d.key)) for d in backend.index_defs()
        ),
        "ledger": advisor.safety.ledger.to_dict(),
    }


def checkpoint_surface(
    root, tenant_id: str
) -> Optional[dict]:
    """Read a tenant's parity surface from its checkpoint namespace.

    Returns None when the namespace has no usable checkpoint.  The
    surface comes from the crash-safe components the daemon writes
    after every round: ``serve.json`` (spec, counters, reports,
    applied indexes), ``templates.json``, and ``safety.json``
    (which embeds the benefit ledger).
    """
    directory = checkpoint.tenant_namespace(root, tenant_id)
    manifest = checkpoint.read_manifest(directory)
    report = checkpoint.CheckpointLoadReport()

    def _json(blob: bytes):
        return json.loads(blob.decode("utf-8"))

    serve_state = checkpoint.read_component(
        directory, SERVE_COMPONENT, _json, manifest, report
    )
    if not isinstance(serve_state, dict):
        return None
    templates = checkpoint.read_component(
        directory, "templates.json", _json, manifest, report
    )
    safety_state = checkpoint.read_component(
        directory, "safety.json", _json, manifest, report
    )
    ledger = {}
    if isinstance(safety_state, dict):
        ledger = safety_state.get("safety", {}).get("ledger", {})
    return {
        "spec": serve_state.get("spec", {}),
        "counters": serve_state.get("counters", {}),
        "reports": serve_state.get("reports", []),
        "templates": templates if templates is not None else {},
        "applied_indexes": serve_state.get("applied_indexes", []),
        "ledger": ledger,
    }


def compare_surfaces(daemon_surface: dict, library: dict) -> List[str]:
    """Diff two parity surfaces; returns mismatch descriptions
    (empty == bit-identical on every compared component)."""
    mismatches: List[str] = []

    daemon_reports = daemon_surface.get("reports", [])
    library_reports = library.get("reports", [])
    if len(daemon_reports) != len(library_reports):
        mismatches.append(
            f"round count: daemon ran {len(daemon_reports)}, "
            f"library ran {len(library_reports)}"
        )
    for i, (ours, theirs) in enumerate(
        zip(daemon_reports, library_reports)
    ):
        if ours != theirs:
            keys = sorted(
                k
                for k in set(ours) | set(theirs)
                if ours.get(k) != theirs.get(k)
            )
            mismatches.append(
                f"round {i} report differs on: {', '.join(keys)}"
            )

    for component in ("templates", "applied_indexes", "ledger"):
        if daemon_surface.get(component) != library.get(component):
            mismatches.append(f"{component} state differs")

    return mismatches
