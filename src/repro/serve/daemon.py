"""The streaming tuning daemon: many tenants, background rounds.

:class:`TuningDaemon` is the long-running counterpart of the one-shot
library path (``AutoIndexAdvisor.tune()``).  It glues the three serve
pieces together: the :class:`~repro.serve.registry.TenantRegistry`
owns per-tenant contexts, each tenant's
:class:`~repro.core.lifecycle.TuningSession` decides when a round is
*due*, and the :class:`~repro.serve.scheduler.RoundScheduler` decides
when a due round may *run* (admission control: at most
``max_concurrent_rounds`` at a time, fair round-robin across
tenants).

Two execution modes share every line of round logic:

* ``workers=0`` (inline): due rounds run synchronously inside
  :meth:`ingest`, at the exact stream offset that made them due.
  This is the determinism contract — a single-tenant stream pumped
  through the daemon produces bit-identical reports, template-store
  state, and applied indexes to calling ``tune()`` at the same
  offsets, because both paths are the same
  :func:`~repro.core.lifecycle.run_round` at the same points in the
  same statement order.
* ``workers>0`` (threaded): worker threads drain the scheduler in
  the background while ingest returns immediately.  Per-tenant locks
  keep each tenant single-writer; the scheduler's queue discipline
  (not thread timing) fixes the admission order.

Both paths run under the determinism lint: no wall-clock imports —
scheduling time is the scheduler's virtual clock.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional

from repro.engine.faults import VirtualClock
from repro.serve.config import TenantSpec
from repro.serve.registry import TenantRegistry
from repro.serve.scheduler import RoundJob, RoundScheduler

__all__ = ["TuningDaemon"]


class TuningDaemon:
    """Long-running multi-tenant tuning service."""

    def __init__(
        self,
        checkpoint_root=None,
        max_concurrent_rounds: int = 1,
        workers: int = 0,
        clock: Optional[VirtualClock] = None,
        checkpoint_each_round: bool = True,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.registry = TenantRegistry(checkpoint_root=checkpoint_root)
        self.scheduler = RoundScheduler(
            max_concurrent=max_concurrent_rounds, clock=clock
        )
        self.workers = workers
        self.checkpoint_each_round = checkpoint_each_round
        #: Completed (or budget-skipped) round records, in admission
        #: order: {"tenant_id", "seq", "skipped", "report"|"reason"}.
        self.rounds: List[dict] = []
        self._record_lock = threading.Lock()
        self._cond = threading.Condition()
        self._stop = False
        self._drain = False
        self._started = False
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------

    def add_tenant(self, spec: TenantSpec) -> dict:
        runtime = self.registry.create(spec)
        return runtime.status()

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def ingest(
        self, tenant_id: str, statements: Iterable[str]
    ) -> dict:
        """Feed statements into one tenant's stream.

        Statements are observed one at a time; the round-due check
        happens after *each* statement so a round always fires at the
        exact stream offset that made it due — this is what makes the
        inline mode bit-identical to the library path.
        """
        runtime = self.registry.get(tenant_id)
        ingested = 0
        rounds_run = 0
        for sql in statements:
            with runtime.lock:
                runtime.session.ingest(sql)
                ingested += 1
                due = runtime.session.due() and not (
                    runtime.session.budget.exhausted()
                )
            if due and self.scheduler.offer(tenant_id):
                if self.workers == 0:
                    rounds_run += self.pump()
                else:
                    with self._cond:
                        self._cond.notify_all()
        with runtime.lock:
            counters = runtime.session.counters()
        return {
            "tenant_id": tenant_id,
            "ingested": ingested,
            "rounds_run": rounds_run,
            **counters,
        }

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------

    def pump(self, max_rounds: Optional[int] = None) -> int:
        """Inline drain: admit and run due rounds until the scheduler
        has nothing admissible (or ``max_rounds`` is hit)."""
        ran = 0
        while max_rounds is None or ran < max_rounds:
            job = self.scheduler.admit()
            if job is None:
                break
            self._execute(job)
            ran += 1
        return ran

    def _execute(self, job: RoundJob) -> dict:
        """Run one admitted round under the tenant's lock."""
        runtime = self.registry.get(job.tenant_id)
        with runtime.lock:
            if runtime.session.budget.exhausted():
                record = {
                    "tenant_id": job.tenant_id,
                    "seq": job.seq,
                    "skipped": True,
                    "reason": "round budget exhausted",
                }
                requeue = False
            else:
                report = runtime.session.run_round()
                record = {
                    "tenant_id": job.tenant_id,
                    "seq": job.seq,
                    "skipped": False,
                    "report": report.to_dict(),
                }
                if (
                    self.checkpoint_each_round
                    and self.registry.checkpoint_root is not None
                ):
                    runtime.save(self.registry.checkpoint_root)
                requeue = runtime.session.due() and not (
                    runtime.session.budget.exhausted()
                )
        with self._record_lock:
            self.rounds.append(record)
        self.scheduler.complete(job, requeue=requeue)
        return record

    # ------------------------------------------------------------------
    # worker threads
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn background round workers (no-op when ``workers=0``)."""
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"round-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _worker_loop(self) -> None:
        while True:
            job = self.scheduler.admit()
            if job is None:
                with self._cond:
                    if self._stop:
                        # Draining: stay alive while any round is
                        # queued or running (a running round may
                        # requeue its tenant).
                        if not (
                            self._drain and not self.scheduler.idle()
                        ):
                            return
                    self._cond.wait(timeout=0.05)
                continue
            try:
                self._execute(job)
            finally:
                with self._cond:
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def status(self) -> dict:
        with self._record_lock:
            completed = sum(
                1 for r in self.rounds if not r["skipped"]
            )
            skipped = len(self.rounds) - completed
        return {
            "tenants": {
                runtime.tenant_id: runtime.status()
                for runtime in self.registry.runtimes()
            },
            "scheduler": self.scheduler.snapshot(),
            "rounds_completed": completed,
            "rounds_skipped": skipped,
            "workers": self.workers,
            "stopping": self._stop,
        }

    def round_log(self, tenant_id: Optional[str] = None) -> List[dict]:
        with self._record_lock:
            records = list(self.rounds)
        if tenant_id is not None:
            records = [
                r for r in records if r["tenant_id"] == tenant_id
            ]
        return records

    def recommendations(self, tenant_id: str) -> List[dict]:
        """Pending (gated) recommendations for one tenant."""
        runtime = self.registry.get(tenant_id)
        with runtime.lock:
            return [
                rec.to_dict()
                for rec in runtime.advisor.pending_recommendations()
            ]

    def resolve_review(
        self,
        tenant_id: str,
        rec_id: int,
        accept: bool,
        note: str = "",
    ) -> dict:
        """Record a DBA verdict on a gated recommendation and act on
        it (apply the accepted change / train on the rejection)."""
        runtime = self.registry.get(tenant_id)
        with runtime.lock:
            if accept:
                rec = runtime.advisor.accept_recommendation(
                    rec_id, note=note
                )
            else:
                rec = runtime.advisor.reject_recommendation(
                    rec_id, note=note
                )
            if self.registry.checkpoint_root is not None:
                runtime.save(self.registry.checkpoint_root)
            return rec.to_dict()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def shutdown(self, drain: bool = True) -> dict:
        """Stop the daemon: optionally drain queued rounds, stop
        workers, and checkpoint every tenant."""
        with self._cond:
            self._stop = True
            self._drain = drain
            self._cond.notify_all()
        if self.workers == 0 and drain:
            self.pump()
        for thread in self._threads:
            thread.join(timeout=30.0)
        saved = self.registry.save_all()
        with self._record_lock:
            completed = sum(
                1 for r in self.rounds if not r["skipped"]
            )
        return {
            "rounds_completed": completed,
            "checkpoints_saved": saved,
            "tenants": self.registry.tenant_ids(),
        }
