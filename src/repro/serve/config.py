"""Per-tenant configuration for the streaming tuning daemon.

A :class:`TenantSpec` is the complete description of one tenant: the
backend it pins (kind + seed + template-store shard budget, via
:class:`~repro.ports.factory.BackendSpec`), the advisor knobs, the
round-firing policy and round budget, the safety policy (per-tenant
regret budget / apply mode), and optionally a workload generator that
seeds the tenant's schema and data at creation time.

Specs round-trip through dicts (for the daemon's wire protocol and
the per-tenant ``serve.json`` checkpoint component) and parse from
the CLI's compact ``name,key=value,...`` spelling::

    alpha,backend=sqlite,seed=11,capacity=512,workload=banking
    beta,backend=memory,round-every=200,regret-bound=500
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.lifecycle import RoundBudget, RoundPolicy
from repro.core.safety import SafetyPolicy
from repro.ports.factory import BackendSpec, DEFAULT_BACKEND, DEFAULT_SEED
from repro.workloads import (
    BankingWorkload,
    EpidemicWorkload,
    TpccWorkload,
    WorkloadGenerator,
)

__all__ = [
    "TenantSpec",
    "make_generator",
    "parse_tenant_spec",
    "workload_names",
]


@dataclass(frozen=True)
class TenantSpec:
    """Everything the registry needs to build (or rebuild) a tenant."""

    tenant_id: str
    backend: BackendSpec = field(default_factory=BackendSpec)
    safety: SafetyPolicy = field(default_factory=SafetyPolicy)
    #: Workload generator seeding schema + data at creation; ``None``
    #: starts the tenant on an empty backend (caller issues DDL).
    workload: Optional[str] = None
    workload_seed: int = 5
    #: Round-firing policy for the tenant's session.
    round_every: int = 500
    min_statements: int = 1
    force_rounds: bool = True
    trigger_threshold: float = 0.1
    #: Max rounds this tenant may ever consume (None = unlimited).
    round_budget: Optional[int] = None
    #: Advisor knobs (template capacity comes from backend.shard_budget).
    storage_budget: Optional[int] = None
    mcts_iterations: int = 60
    rollouts: int = 3
    top_templates: int = 120

    def round_policy(self) -> RoundPolicy:
        return RoundPolicy(
            every_statements=self.round_every,
            min_statements=self.min_statements,
            force=self.force_rounds,
            trigger_threshold=self.trigger_threshold,
        )

    def make_round_budget(self) -> RoundBudget:
        return RoundBudget(limit=self.round_budget)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant_id": self.tenant_id,
            "backend": {
                "kind": self.backend.kind,
                "seed": self.backend.seed,
                "shard_budget": self.backend.shard_budget,
            },
            "safety": self.safety.to_dict(),
            "workload": self.workload,
            "workload_seed": self.workload_seed,
            "round_every": self.round_every,
            "min_statements": self.min_statements,
            "force_rounds": self.force_rounds,
            "trigger_threshold": self.trigger_threshold,
            "round_budget": self.round_budget,
            "storage_budget": self.storage_budget,
            "mcts_iterations": self.mcts_iterations,
            "rollouts": self.rollouts,
            "top_templates": self.top_templates,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantSpec":
        backend = data.get("backend", {})
        shard_budget = backend.get("shard_budget")  # type: ignore[union-attr]
        storage = data.get("storage_budget")
        budget = data.get("round_budget")
        return cls(
            tenant_id=str(data["tenant_id"]),
            backend=BackendSpec(
                kind=str(backend.get("kind", DEFAULT_BACKEND)),  # type: ignore[union-attr]
                seed=int(backend.get("seed", DEFAULT_SEED)),  # type: ignore[union-attr]
                shard_budget=(
                    int(shard_budget) if shard_budget is not None else None  # type: ignore[arg-type]
                ),
            ),
            safety=SafetyPolicy.from_dict(
                data.get("safety", {})  # type: ignore[arg-type]
            ),
            workload=(
                str(data["workload"])
                if data.get("workload") is not None
                else None
            ),
            workload_seed=int(data.get("workload_seed", 5)),  # type: ignore[arg-type]
            round_every=int(data.get("round_every", 500)),  # type: ignore[arg-type]
            min_statements=int(data.get("min_statements", 1)),  # type: ignore[arg-type]
            force_rounds=bool(data.get("force_rounds", True)),
            trigger_threshold=float(
                data.get("trigger_threshold", 0.1)  # type: ignore[arg-type]
            ),
            round_budget=(
                int(budget) if budget is not None else None  # type: ignore[arg-type]
            ),
            storage_budget=(
                int(storage) if storage is not None else None  # type: ignore[arg-type]
            ),
            mcts_iterations=int(data.get("mcts_iterations", 60)),  # type: ignore[arg-type]
            rollouts=int(data.get("rollouts", 3)),  # type: ignore[arg-type]
            top_templates=int(data.get("top_templates", 120)),  # type: ignore[arg-type]
        )


# ---------------------------------------------------------------------------
# workload seeding
# ---------------------------------------------------------------------------

#: Daemon-scale workload constructors: the laptop-scale parameters the
#: test suites use, so tenant creation stays interactive even with
#: dozens of tenants in one process.
_WORKLOADS = {
    "banking": lambda seed: BankingWorkload(
        accounts=150, txn_rows=600, product_rows=30, seed=seed
    ),
    "tpcc": lambda seed: TpccWorkload(scale=1, seed=seed),
    "epidemic": lambda seed: EpidemicWorkload(people=800, seed=seed),
}


def workload_names() -> tuple:
    return tuple(sorted(_WORKLOADS))


def make_generator(name: str, seed: int = 5) -> WorkloadGenerator:
    """Daemon-scale workload generator by name."""
    try:
        ctor = _WORKLOADS[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise ValueError(
            f"unknown workload {name!r} (known: {known})"
        ) from None
    return ctor(seed)


# ---------------------------------------------------------------------------
# CLI spec parsing
# ---------------------------------------------------------------------------

_SPEC_KEYS = {
    "backend",
    "seed",
    "capacity",
    "workload",
    "workload-seed",
    "round-every",
    "min-statements",
    "round-budget",
    "apply-mode",
    "regret-bound",
    "regret-headroom",
    "storage-budget",
    "mcts-iterations",
    "top-templates",
}


def parse_tenant_spec(text: str) -> TenantSpec:
    """Parse the CLI's ``name,key=value,...`` tenant spelling.

    Example::

        alpha,backend=sqlite,seed=11,capacity=512,workload=banking,
        round-every=400,regret-bound=500
    """
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts or "=" in parts[0]:
        raise ValueError(
            f"tenant spec must start with the tenant id: {text!r}"
        )
    spec = TenantSpec(tenant_id=parts[0])
    backend = spec.backend
    safety = spec.safety
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(f"expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in _SPEC_KEYS:
            known = ", ".join(sorted(_SPEC_KEYS))
            raise ValueError(
                f"unknown tenant spec key {key!r} (known: {known})"
            )
        if key == "backend":
            backend = replace(backend, kind=value)
        elif key == "seed":
            backend = replace(backend, seed=int(value))
        elif key == "capacity":
            backend = replace(backend, shard_budget=int(value))
        elif key == "workload":
            spec = replace(spec, workload=value)
        elif key == "workload-seed":
            spec = replace(spec, workload_seed=int(value))
        elif key == "round-every":
            spec = replace(spec, round_every=int(value))
        elif key == "min-statements":
            spec = replace(spec, min_statements=int(value))
        elif key == "round-budget":
            spec = replace(spec, round_budget=int(value))
        elif key == "apply-mode":
            safety = replace(safety, apply_mode=value)
        elif key == "regret-bound":
            safety = replace(safety, regret_bound=float(value))
        elif key == "regret-headroom":
            safety = replace(safety, regret_headroom=float(value))
        elif key == "storage-budget":
            spec = replace(spec, storage_budget=int(value))
        elif key == "mcts-iterations":
            spec = replace(spec, mcts_iterations=int(value))
        elif key == "top-templates":
            spec = replace(spec, top_templates=int(value))
    return replace(spec, backend=backend, safety=safety)
