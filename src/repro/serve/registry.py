"""The tenant registry: who owns each tuning context.

One daemon process hosts many tenants; each tenant is a fully
independent tuning world — its own backend (pinned kind + seed +
template-store shard budget via :class:`~repro.ports.factory.
BackendSpec`), its own :class:`~repro.core.advisor.AutoIndexAdvisor`
(and therefore its own template store, estimator, rng stream, safety
controller with per-tenant regret budget and ledger), and its own
:class:`~repro.core.lifecycle.TuningSession` deciding when rounds are
due.  Nothing is shared between tenants except the process.

The registry also owns per-tenant persistence: each tenant
checkpoints into its namespace under the daemon's checkpoint root
(``<root>/tenant-<id>/``, see :func:`repro.core.checkpoint.
tenant_namespace`) with the advisor's crash-safe component writes
plus a ``serve.json`` component recording the tenant spec, lifecycle
counters, normalized round reports, and the applied index set — the
surface the offline ``python -m repro.serve verify`` parity check
replays against.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List

from repro.core import checkpoint
from repro.core.advisor import AutoIndexAdvisor
from repro.core.lifecycle import TuningSession
from repro.ports.factory import create_backend
from repro.serve.config import TenantSpec, make_generator

__all__ = ["SERVE_COMPONENT", "TenantRuntime", "TenantRegistry"]

SERVE_COMPONENT = "serve.json"

#: Advisor default mirrored here so a tenant without an explicit
#: shard budget gets the library default capacity.
_DEFAULT_TEMPLATE_CAPACITY = 5000


class TenantRuntime:
    """One tenant's live state inside the daemon.

    ``lock`` serializes everything that mutates the tenant — ingest,
    rounds, review verdicts, checkpointing — so a tenant is always
    single-writer even when the daemon runs rounds on worker threads.
    Different tenants' locks are independent: a long round on one
    tenant never blocks ingest for another.
    """

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.lock = threading.RLock()
        self.backend = create_backend(
            spec.backend.kind,
            seed=spec.backend.seed,
            shard_budget=spec.backend.shard_budget,
        )
        if spec.workload is not None:
            generator = make_generator(
                spec.workload, seed=spec.workload_seed
            )
            generator.build(self.backend)
        capacity = (
            spec.backend.shard_budget
            if spec.backend.shard_budget is not None
            else _DEFAULT_TEMPLATE_CAPACITY
        )
        self.advisor = AutoIndexAdvisor(
            self.backend,
            storage_budget=spec.storage_budget,
            template_capacity=capacity,
            mcts_iterations=spec.mcts_iterations,
            rollouts=spec.rollouts,
            top_templates=spec.top_templates,
            seed=spec.backend.seed,
            safety=spec.safety.controller(),
        )
        self.session = TuningSession(
            self.advisor,
            policy=spec.round_policy(),
            budget=spec.make_round_budget(),
        )
        self.checkpoints_written = 0

    @property
    def tenant_id(self) -> str:
        return self.spec.tenant_id

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Point-in-time counters for the status API."""
        with self.lock:
            advisor = self.advisor
            regret = advisor.regret_summary()
            return {
                "tenant_id": self.tenant_id,
                "backend": self.spec.backend.kind,
                "templates": len(advisor.store),
                "template_capacity": advisor.store.capacity,
                "indexes": len(self.backend.index_defs()),
                "pending_recommendations": len(
                    advisor.pending_recommendations()
                ),
                "observe_failures": advisor.observe_failures,
                "checkpoints_written": self.checkpoints_written,
                "regret": regret,
                **self.session.counters(),
            }

    def normalized_reports(self) -> List[dict]:
        with self.lock:
            return [
                report.to_dict()
                for report in self.advisor.tuning_history
            ]

    def applied_index_keys(self) -> List[str]:
        """The current index configuration, as sorted stable keys."""
        with self.lock:
            return sorted(
                "|".join(map(str, d.key))
                for d in self.backend.index_defs()
            )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def serve_state(self) -> dict:
        """The ``serve.json`` payload for this tenant."""
        with self.lock:
            return {
                "spec": self.spec.to_dict(),
                "counters": self.session.counters(),
                "reports": self.normalized_reports(),
                "applied_indexes": self.applied_index_keys(),
            }

    def save(self, root) -> None:
        """Checkpoint this tenant into its namespace under ``root``."""
        with self.lock:
            directory = checkpoint.tenant_namespace(root, self.tenant_id)
            self.advisor.save_state(directory)
            checkpoint.update_component(
                directory,
                SERVE_COMPONENT,
                json.dumps(self.serve_state()).encode("utf-8"),
                faults=self.backend.faults,
            )
            self.checkpoints_written += 1

    def restore(self, root) -> bool:
        """Restore advisor state from the tenant's namespace, if any.

        Returns True when something was loaded.  Lifecycle counters
        are restored from ``serve.json`` so a restarted daemon does
        not re-fire rounds for statements already tuned against.
        """
        with self.lock:
            directory = checkpoint.tenant_namespace(root, self.tenant_id)
            report = self.advisor.load_state(directory)
            loaded = any(
                component.status in ("loaded", "fallback")
                for component in report.components
            )
            state = checkpoint.read_component(
                directory,
                SERVE_COMPONENT,
                lambda blob: json.loads(blob.decode("utf-8")),
                checkpoint.read_manifest(directory),
                checkpoint.CheckpointLoadReport(),
                faults=self.backend.faults,
            )
            if isinstance(state, dict):
                counters = state.get("counters", {})
                self.session.ingested = int(
                    counters.get("ingested", 0)
                )
                rounds = int(counters.get("rounds_completed", 0))
                self.session.rounds_completed = rounds
                self.session.budget.spent = rounds
                pending = int(counters.get("pending_statements", 0))
                self.session.ingested_at_last_round = (
                    self.session.ingested - pending
                )
                loaded = True
            return loaded


class TenantRegistry:
    """All tenants of one daemon, with per-tenant checkpoint roots.

    Owns tenant creation (including restore-from-checkpoint when the
    tenant's namespace already exists under ``checkpoint_root``),
    lookup, and enumeration.  Round *scheduling* deliberately lives
    elsewhere (:mod:`repro.serve.scheduler`): the registry answers
    "who owns this context", the scheduler answers "when may its
    round run".
    """

    def __init__(self, checkpoint_root=None):
        self.checkpoint_root = checkpoint_root
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantRuntime] = {}

    def create(self, spec: TenantSpec) -> TenantRuntime:
        """Create (and maybe restore) a tenant; id must be new."""
        runtime = TenantRuntime(spec)
        with self._lock:
            if spec.tenant_id in self._tenants:
                raise ValueError(
                    f"tenant {spec.tenant_id!r} already exists"
                )
            self._tenants[spec.tenant_id] = runtime
        if self.checkpoint_root is not None:
            runtime.restore(self.checkpoint_root)
        return runtime

    def get(self, tenant_id: str) -> TenantRuntime:
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise KeyError(
                    f"unknown tenant {tenant_id!r}"
                ) from None

    def has(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def tenant_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def runtimes(self) -> List[TenantRuntime]:
        with self._lock:
            return [
                self._tenants[tid] for tid in sorted(self._tenants)
            ]

    def save_all(self) -> int:
        """Checkpoint every tenant; returns how many were saved."""
        if self.checkpoint_root is None:
            return 0
        saved = 0
        for runtime in self.runtimes():
            runtime.save(self.checkpoint_root)
            saved += 1
        return saved
