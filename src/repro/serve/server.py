"""JSON-lines control socket for the tuning daemon.

One request per line, one response per line, over a Unix domain
socket — the simplest transport that lets the CLI (and the CI smoke
job) drive a daemon in another process without pulling in any
dependency the container doesn't already have.

Request:  ``{"op": "...", ...}``
Response: ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``

Ops:

``ping``        → ``{"ok": true, "pong": true}``
``add_tenant``  → body ``{"spec": <TenantSpec dict>}``
``ingest``      → body ``{"tenant": id, "statements": [sql, ...]}``
``status``      → daemon-wide counters (per-tenant + scheduler)
``rounds``      → body ``{"tenant": id?}`` — round log records
``recommend``   → body ``{"tenant": id}`` — pending recommendations
``review``      → body ``{"tenant": id, "rec_id": n, "accept": bool,
                  "note": str}``
``shutdown``    → drain + checkpoint + stop serving

The server is deliberately thin: every op maps 1:1 onto a
:class:`~repro.serve.daemon.TuningDaemon` method, so everything the
socket can do is equally reachable (and tested) in-process.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional

from repro.serve.daemon import TuningDaemon

__all__ = ["DaemonServer", "DaemonClient", "request"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "DaemonServer" = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                response = server.dispatch(
                    json.loads(line.decode("utf-8"))
                )
            except Exception as exc:
                # The daemon must answer malformed/failing requests,
                # not die on them; the error travels to the client.
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            self.wfile.write(
                json.dumps(response).encode("utf-8") + b"\n"
            )
            self.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                break


class _SocketServer(
    socketserver.ThreadingMixIn, socketserver.UnixStreamServer
):
    daemon_threads = True
    allow_reuse_address = True


class DaemonServer:
    """Serve a :class:`TuningDaemon` over a Unix domain socket."""

    def __init__(self, daemon: TuningDaemon, socket_path: str):
        self.daemon = daemon
        self.socket_path = str(socket_path)
        self._server = _SocketServer(self.socket_path, _Handler)
        # The handler reaches the daemon through server.dispatch.
        self._server.dispatch = self.dispatch  # type: ignore[attr-defined]
        self._shutdown_result: Optional[dict] = None
        self._stop_event = threading.Event()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request_body: dict) -> dict:
        op = request_body.get("op")
        daemon = self.daemon
        if op == "ping":
            return {"ok": True, "op": op, "pong": True}
        if op == "add_tenant":
            from repro.serve.config import TenantSpec

            spec = TenantSpec.from_dict(request_body["spec"])
            return {
                "ok": True,
                "op": op,
                "status": daemon.add_tenant(spec),
            }
        if op == "ingest":
            result = daemon.ingest(
                request_body["tenant"],
                [str(s) for s in request_body["statements"]],
            )
            return {"ok": True, "op": op, **result}
        if op == "status":
            return {"ok": True, "op": op, **daemon.status()}
        if op == "rounds":
            return {
                "ok": True,
                "op": op,
                "rounds": daemon.round_log(request_body.get("tenant")),
            }
        if op == "recommend":
            return {
                "ok": True,
                "op": op,
                "recommendations": daemon.recommendations(
                    request_body["tenant"]
                ),
            }
        if op == "review":
            return {
                "ok": True,
                "op": op,
                "recommendation": daemon.resolve_review(
                    request_body["tenant"],
                    int(request_body["rec_id"]),
                    bool(request_body["accept"]),
                    note=str(request_body.get("note", "")),
                ),
            }
        if op == "shutdown":
            self._shutdown_result = daemon.shutdown(
                drain=bool(request_body.get("drain", True))
            )
            self._stop_event.set()
            return {"ok": True, "op": op, **self._shutdown_result}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> Optional[dict]:
        """Serve until a ``shutdown`` request arrives; returns the
        shutdown result."""
        self.daemon.start()
        thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        thread.start()
        try:
            self._stop_event.wait()
        finally:
            self._server.shutdown()
            self._server.server_close()
            thread.join(timeout=5.0)
        return self._shutdown_result

    def close(self) -> None:
        self._stop_event.set()
        self._server.shutdown()
        self._server.server_close()


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------


def request(socket_path: str, body: dict, timeout: float = 30.0) -> dict:
    """One request/response round-trip over the control socket."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.sendall(json.dumps(body).encode("utf-8") + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError(
            f"no response from daemon at {socket_path}"
        )
    return json.loads(raw.decode("utf-8"))


class DaemonClient:
    """Convenience wrapper: one connection per call, typed helpers."""

    def __init__(self, socket_path: str, timeout: float = 30.0):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def call(self, body: dict) -> dict:
        response = request(
            self.socket_path, body, timeout=self.timeout
        )
        if not response.get("ok"):
            raise RuntimeError(
                response.get("error", "daemon request failed")
            )
        return response

    def ping(self) -> bool:
        try:
            return bool(self.call({"op": "ping"}).get("pong"))
        except (OSError, ConnectionError):
            return False

    def add_tenant(self, spec_dict: dict) -> dict:
        return self.call({"op": "add_tenant", "spec": spec_dict})

    def ingest(self, tenant: str, statements) -> dict:
        return self.call(
            {
                "op": "ingest",
                "tenant": tenant,
                "statements": list(statements),
            }
        )

    def status(self) -> dict:
        return self.call({"op": "status"})

    def rounds(self, tenant: Optional[str] = None) -> dict:
        return self.call({"op": "rounds", "tenant": tenant})

    def recommend(self, tenant: str) -> dict:
        return self.call({"op": "recommend", "tenant": tenant})

    def review(
        self, tenant: str, rec_id: int, accept: bool, note: str = ""
    ) -> dict:
        return self.call(
            {
                "op": "review",
                "tenant": tenant,
                "rec_id": rec_id,
                "accept": accept,
                "note": note,
            }
        )

    def shutdown(self, drain: bool = True) -> dict:
        return self.call({"op": "shutdown", "drain": drain})
