"""``python -m repro.serve`` — drive the streaming tuning daemon.

Subcommands::

    start      run a daemon on a Unix control socket (foreground)
    ingest     send statements (literal, from a file, or generated
               from a named workload) into one tenant's stream
    status     daemon-wide counters: per-tenant sessions + scheduler
    rounds     the round log (admission order), optionally per tenant
    recommend  pending gated recommendations for one tenant
    review     record a DBA verdict on a gated recommendation
    shutdown   drain queued rounds, checkpoint every tenant, stop
    verify     offline parity check: replay a checkpointed tenant's
               stream through the library path and diff the surfaces

Example — two tenants on different backends in one daemon::

    python -m repro.serve start --socket /tmp/ai.sock \\
        --checkpoint-dir /tmp/ai-ckpt \\
        --tenant alpha,backend=memory,workload=banking,round-every=120 \\
        --tenant beta,backend=sqlite,seed=11,workload=tpcc &
    python -m repro.serve ingest --socket /tmp/ai.sock \\
        --tenant alpha --workload banking --count 120
    python -m repro.serve status --socket /tmp/ai.sock
    python -m repro.serve shutdown --socket /tmp/ai.sock
    python -m repro.serve verify --checkpoint-dir /tmp/ai-ckpt \\
        --tenant alpha
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.serve.config import (
    TenantSpec,
    make_generator,
    parse_tenant_spec,
    workload_names,
)

__all__ = ["main"]


def _print(payload) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _add_socket(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        required=True,
        help="path of the daemon's Unix control socket",
    )


def _client(args):
    from repro.serve.server import DaemonClient

    return DaemonClient(args.socket, timeout=args.timeout)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_start(args) -> int:
    from repro.serve.daemon import TuningDaemon
    from repro.serve.server import DaemonServer

    specs: List[TenantSpec] = [
        parse_tenant_spec(text) for text in args.tenant
    ]
    checkpoint_root = (
        pathlib.Path(args.checkpoint_dir)
        if args.checkpoint_dir
        else None
    )
    if checkpoint_root is not None:
        checkpoint_root.mkdir(parents=True, exist_ok=True)
    daemon = TuningDaemon(
        checkpoint_root=checkpoint_root,
        max_concurrent_rounds=args.max_concurrent_rounds,
        workers=args.workers,
    )
    for spec in specs:
        daemon.add_tenant(spec)
    socket_path = pathlib.Path(args.socket)
    if socket_path.exists():
        socket_path.unlink()
    server = DaemonServer(daemon, str(socket_path))
    print(
        f"serving {len(specs)} tenant(s) on {socket_path} "
        f"(workers={args.workers})",
        file=sys.stderr,
    )
    result = server.serve_forever()
    if socket_path.exists():
        socket_path.unlink()
    _print(result if result is not None else {"stopped": True})
    return 0


def _gather_statements(args) -> List[str]:
    statements: List[str] = []
    for sql in args.sql or ():
        statements.append(sql)
    if args.file:
        text = pathlib.Path(args.file).read_text(encoding="utf-8")
        statements.extend(
            line.strip()
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("--")
        )
    if args.workload:
        generator = make_generator(args.workload, seed=args.seed)
        statements.extend(
            q.sql for q in generator.queries(args.count, seed=args.seed)
        )
    if not statements:
        raise SystemExit(
            "nothing to ingest: pass --sql, --file, or --workload"
        )
    return statements


def cmd_ingest(args) -> int:
    _print(
        _client(args).ingest(args.tenant, _gather_statements(args))
    )
    return 0


def cmd_status(args) -> int:
    _print(_client(args).status())
    return 0


def cmd_rounds(args) -> int:
    _print(_client(args).rounds(args.tenant))
    return 0


def cmd_recommend(args) -> int:
    _print(_client(args).recommend(args.tenant))
    return 0


def cmd_review(args) -> int:
    _print(
        _client(args).review(
            args.tenant,
            args.rec_id,
            accept=args.verdict == "accept",
            note=args.note,
        )
    )
    return 0


def cmd_shutdown(args) -> int:
    _print(_client(args).shutdown(drain=not args.no_drain))
    return 0


def cmd_verify(args) -> int:
    from repro.serve.parity import (
        checkpoint_surface,
        compare_surfaces,
        replay_library_path,
    )

    surface = checkpoint_surface(args.checkpoint_dir, args.tenant)
    if surface is None:
        print(
            f"no usable checkpoint for tenant {args.tenant!r} "
            f"under {args.checkpoint_dir}",
            file=sys.stderr,
        )
        return 2
    spec = TenantSpec.from_dict(surface["spec"])
    ingested = int(surface["counters"].get("ingested", 0))
    library = replay_library_path(spec, ingested)
    mismatches = compare_surfaces(surface, library)
    _print(
        {
            "tenant": args.tenant,
            "statements_replayed": ingested,
            "rounds": len(surface["reports"]),
            "parity": not mismatches,
            "mismatches": mismatches,
        }
    )
    return 0 if not mismatches else 1


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="streaming multi-tenant tuning daemon",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="client socket timeout in seconds (default 60)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run a daemon (foreground)")
    _add_socket(p)
    p.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="SPEC",
        help="tenant spec: name,key=value,... (repeatable); keys "
        "include backend, seed, capacity, workload, round-every, "
        "round-budget, apply-mode, regret-bound",
    )
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="root under which each tenant gets a tenant-<id>/ "
        "checkpoint namespace",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="background round workers; 0 = run rounds inline "
        "during ingest (default 1)",
    )
    p.add_argument(
        "--max-concurrent-rounds",
        type=int,
        default=1,
        help="admission-control cap on simultaneous rounds",
    )
    p.set_defaults(func=cmd_start)

    p = sub.add_parser("ingest", help="send statements to a tenant")
    _add_socket(p)
    p.add_argument("--tenant", required=True)
    p.add_argument(
        "--sql", action="append", help="literal statement (repeatable)"
    )
    p.add_argument("--file", help="file of statements, one per line")
    p.add_argument(
        "--workload",
        choices=workload_names(),
        help="generate statements from a named workload",
    )
    p.add_argument("--count", type=int, default=100)
    p.add_argument("--seed", type=int, default=5)
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("status", help="daemon-wide counters")
    _add_socket(p)
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("rounds", help="round log in admission order")
    _add_socket(p)
    p.add_argument("--tenant", default=None)
    p.set_defaults(func=cmd_rounds)

    p = sub.add_parser(
        "recommend", help="pending recommendations for a tenant"
    )
    _add_socket(p)
    p.add_argument("--tenant", required=True)
    p.set_defaults(func=cmd_recommend)

    p = sub.add_parser("review", help="record a DBA verdict")
    _add_socket(p)
    p.add_argument("--tenant", required=True)
    p.add_argument("--rec-id", type=int, required=True)
    p.add_argument("verdict", choices=("accept", "reject"))
    p.add_argument("--note", default="")
    p.set_defaults(func=cmd_review)

    p = sub.add_parser(
        "shutdown", help="drain, checkpoint, and stop the daemon"
    )
    _add_socket(p)
    p.add_argument(
        "--no-drain",
        action="store_true",
        help="stop without running queued rounds",
    )
    p.set_defaults(func=cmd_shutdown)

    p = sub.add_parser(
        "verify",
        help="offline daemon-vs-library parity check for a "
        "checkpointed tenant",
    )
    p.add_argument("--checkpoint-dir", required=True)
    p.add_argument("--tenant", required=True)
    p.set_defaults(func=cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
