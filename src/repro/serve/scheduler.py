"""Admission control for background tuning rounds.

The daemon never runs a round the moment it becomes due.  Due tenants
enter a fair round-robin ready queue; :meth:`RoundScheduler.admit`
hands out at most ``max_concurrent`` running jobs at a time, in FIFO
order over the queue, and a tenant that is still due when its round
completes re-enters at the *tail* — so one hot tenant (the 1%-of-
tenants-90%-of-traffic skew case) cannot starve fifty cold ones.

Time is a deterministic :class:`~repro.engine.faults.VirtualClock`:
it advances by one tick per scheduler event (offer/admit/complete),
never reads the wall clock, and stamps every job — so a test can
assert the exact admission order and timestamps of a whole run, and
two replays of the same ingest stream schedule identically.

Thread-safe: the daemon's worker threads and ingest handlers share
one scheduler; all state transitions happen under the scheduler lock.
Fairness and determinism are properties of the queue discipline, not
of thread timing — whichever worker admits next gets the queue head.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.engine.faults import VirtualClock

__all__ = ["RoundJob", "RoundScheduler"]


@dataclass(frozen=True)
class RoundJob:
    """One admitted tuning round (a ticket, not the round itself)."""

    tenant_id: str
    #: Global admission sequence number (0, 1, 2, ... over the
    #: daemon's lifetime) — the total order tests assert against.
    seq: int
    #: Virtual-clock times of enqueue and admission.
    offered_at: float
    admitted_at: float


class RoundScheduler:
    """Fair, bounded, deterministic admission of tuning rounds."""

    def __init__(
        self,
        max_concurrent: int = 1,
        clock: Optional[VirtualClock] = None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.clock = clock if clock is not None else VirtualClock()
        self._lock = threading.Lock()
        #: tenant id -> virtual enqueue time, in FIFO order.  A tenant
        #: appears at most once (queued) and never while running.
        self._ready: Deque[str] = deque()
        self._offered_at: Dict[str, float] = {}
        self._running: Dict[str, RoundJob] = {}
        self._seq = 0
        self.admitted_total = 0
        self.completed_total = 0

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------

    def offer(self, tenant_id: str) -> bool:
        """Mark a tenant's round as due; returns True if newly queued.

        A tenant already queued or running is not double-queued — one
        round at a time per tenant is what keeps a tenant's advisor
        state single-writer.
        """
        with self._lock:
            self.clock.sleep(1.0)
            if tenant_id in self._offered_at or tenant_id in self._running:
                return False
            self._ready.append(tenant_id)
            self._offered_at[tenant_id] = self.clock.now()
            return True

    def admit(self) -> Optional[RoundJob]:
        """Admit the next ready tenant, or None (full / nothing due)."""
        with self._lock:
            if len(self._running) >= self.max_concurrent:
                return None
            if not self._ready:
                return None
            self.clock.sleep(1.0)
            tenant_id = self._ready.popleft()
            job = RoundJob(
                tenant_id=tenant_id,
                seq=self._seq,
                offered_at=self._offered_at.pop(tenant_id),
                admitted_at=self.clock.now(),
            )
            self._seq += 1
            self._running[tenant_id] = job
            self.admitted_total += 1
            return job

    def complete(self, job: RoundJob, requeue: bool = False) -> None:
        """Finish a job; ``requeue`` puts the tenant back at the tail
        (it was still due when its round ended — fairness means it
        waits behind every other ready tenant)."""
        with self._lock:
            self.clock.sleep(1.0)
            current = self._running.get(job.tenant_id)
            if current is None or current.seq != job.seq:
                raise ValueError(
                    f"job {job.seq} for {job.tenant_id!r} is not running"
                )
            del self._running[job.tenant_id]
            self.completed_total += 1
            if requeue:
                self._ready.append(job.tenant_id)
                self._offered_at[job.tenant_id] = self.clock.now()

    def forget(self, tenant_id: str) -> None:
        """Drop a queued tenant (e.g. removed from the registry)."""
        with self._lock:
            if tenant_id in self._offered_at:
                self._ready.remove(tenant_id)
                del self._offered_at[tenant_id]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def has_work(self) -> bool:
        with self._lock:
            return bool(self._ready) and (
                len(self._running) < self.max_concurrent
            )

    def idle(self) -> bool:
        """True when nothing is queued or running."""
        with self._lock:
            return not self._ready and not self._running

    def queued(self) -> List[str]:
        with self._lock:
            return list(self._ready)

    def running(self) -> List[str]:
        with self._lock:
            return sorted(self._running)

    def snapshot(self) -> dict:
        """Counters for the status API."""
        with self._lock:
            return {
                "queued": list(self._ready),
                "running": sorted(self._running),
                "max_concurrent": self.max_concurrent,
                "admitted_total": self.admitted_total,
                "completed_total": self.completed_total,
                "virtual_time": self.clock.now(),
            }
