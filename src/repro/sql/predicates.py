"""Boolean predicate normalization and classification.

Implements the analysis machinery behind the paper's candidate index
generation (Section IV-A, step 2):

* rewrite of arbitrary boolean predicates into *Disjunctive Normal
  Form* (DNF) so that every disjunct is a conjunction of atomic
  predicates — this resolves the paper's Example 6 ambiguity, where
  ``(a AND b) OR (a AND c)`` and ``a AND (b OR c)`` must yield the same
  candidates;
* classification of atomic predicates into **filter** predicates
  (column vs constant), **join** predicates (column vs column of a
  different table), and everything else;
* column usage extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.sql import ast

# DNF expansion is exponential in the worst case; cap the number of
# disjuncts so adversarial predicates cannot blow up candidate
# generation. Past the cap we keep the first MAX_DNF_TERMS disjuncts,
# which still covers every realistic workload query.
MAX_DNF_TERMS = 64


def to_nnf(expr: ast.Expr) -> ast.Expr:
    """Push negations down to atoms (negation normal form)."""
    if isinstance(expr, ast.Not):
        return _negate(to_nnf(expr.child))
    if isinstance(expr, ast.And):
        return ast.And(items=tuple(to_nnf(item) for item in expr.items))
    if isinstance(expr, ast.Or):
        return ast.Or(items=tuple(to_nnf(item) for item in expr.items))
    return expr


_COMPARISON_NEGATION = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


# Atoms listed in fallthrough= keep an explicit NOT wrapper (or, for
# pure value expressions, can never appear as boolean atoms):
# lint: exhaustive[Expr] fallthrough=Literal,Placeholder,ColumnRef,Star,Between,InList,Like,Arith,FuncCall,ScalarSubquery,InSubquery
def _negate(expr: ast.Expr) -> ast.Expr:
    """Return the negation of an NNF expression, staying in NNF."""
    if isinstance(expr, ast.Not):
        return expr.child
    if isinstance(expr, ast.And):
        return ast.Or(items=tuple(_negate(item) for item in expr.items))
    if isinstance(expr, ast.Or):
        return ast.And(items=tuple(_negate(item) for item in expr.items))
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(
            op=_COMPARISON_NEGATION[expr.op], left=expr.left, right=expr.right
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(expr=expr.expr, negated=not expr.negated)
    # BETWEEN / IN / LIKE atoms keep an explicit NOT wrapper.
    return ast.Not(child=expr)


def to_dnf(expr: ast.Expr) -> ast.Expr:
    """Rewrite ``expr`` into disjunctive normal form.

    The result is ``Or(And(atom...), ...)`` with single-atom layers
    collapsed, mirroring the factorized form the paper derives
    candidates from. If full expansion would exceed
    :data:`MAX_DNF_TERMS`, the original expression is returned
    unchanged — a truncated DNF would change the predicate's
    semantics, which is never acceptable for a rewrite.
    """
    terms, truncated = _dnf_terms_with_flag(expr)
    if truncated:
        return expr
    conjunctions: List[ast.Expr] = []
    for term in terms:
        if len(term) == 1:
            conjunctions.append(term[0])
        else:
            conjunctions.append(ast.And(items=tuple(term)))
    if len(conjunctions) == 1:
        return conjunctions[0]
    return ast.Or(items=tuple(conjunctions))


def dnf_terms(expr: ast.Expr) -> List[Tuple[ast.Expr, ...]]:
    """Return DNF as a list of conjunct tuples (one tuple per disjunct).

    Capped at :data:`MAX_DNF_TERMS` — callers here use the terms to
    *enumerate candidate indexes*, where analysing a prefix of an
    adversarially large expansion is the right trade-off (unlike a
    semantic rewrite; see :func:`to_dnf`).
    """
    terms, _truncated = _dnf_terms_with_flag(expr)
    return terms


def _dnf_terms_with_flag(
    expr: ast.Expr,
) -> Tuple[List[Tuple[ast.Expr, ...]], bool]:
    nnf = to_nnf(expr)
    truncated = [False]
    terms = _distribute(nnf, truncated)
    return terms, truncated[0]


def _distribute(
    expr: ast.Expr, truncated: List[bool]
) -> List[Tuple[ast.Expr, ...]]:
    if isinstance(expr, ast.Or):
        terms: List[Tuple[ast.Expr, ...]] = []
        for item in expr.items:
            terms.extend(_distribute(item, truncated))
            if len(terms) >= MAX_DNF_TERMS:
                if len(terms) > MAX_DNF_TERMS or item is not expr.items[-1]:
                    truncated[0] = True
                return terms[:MAX_DNF_TERMS]
        return terms
    if isinstance(expr, ast.And):
        terms = [()]
        for item in expr.items:
            item_terms = _distribute(item, truncated)
            combined: List[Tuple[ast.Expr, ...]] = []
            for prefix in terms:
                for suffix in item_terms:
                    combined.append(prefix + suffix)
                    if len(combined) >= MAX_DNF_TERMS:
                        break
                if len(combined) >= MAX_DNF_TERMS:
                    truncated[0] = True
                    break
            terms = combined
        return terms
    return [(expr,)]


def conjuncts_of(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Split a WHERE clause into top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.And):
        result: List[ast.Expr] = []
        for item in expr.items:
            result.extend(conjuncts_of(item))
        return result
    return [expr]


# ---------------------------------------------------------------------------
# Atomic predicate classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FilterPredicate:
    """Column-vs-constant atom, the unit of filter candidate generation.

    ``op`` is one of ``=``, ``<``, ``<=``, ``>``, ``>=``, ``<>``,
    ``between``, ``in``, ``like``, ``isnull``.
    """

    column: ast.ColumnRef
    op: str
    values: Tuple[object, ...] = ()

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    @property
    def is_range(self) -> bool:
        return self.op in ("<", "<=", ">", ">=", "between", "like")


@dataclass(frozen=True)
class JoinPredicate:
    """Equi-join atom between columns of two different relations."""

    left: ast.ColumnRef
    right: ast.ColumnRef


@dataclass
class ClassifiedConjuncts:
    """The result of classifying a conjunction of atoms."""

    filters: List[FilterPredicate] = field(default_factory=list)
    joins: List[JoinPredicate] = field(default_factory=list)
    other: List[ast.Expr] = field(default_factory=list)


_CONST_TYPES = (ast.Literal, ast.Placeholder)


def _is_constantish(expr: ast.Expr) -> bool:
    """True for literals, placeholders, and arithmetic over them."""
    if isinstance(expr, _CONST_TYPES):
        return True
    if isinstance(expr, ast.Arith):
        return _is_constantish(expr.left) and _is_constantish(expr.right)
    return False


def _const_value(expr: ast.Expr) -> object:
    """Best-effort constant value for selectivity estimation.

    Placeholders (templated literals) yield None, which downstream
    estimation treats as "unknown value of known shape".
    """
    if isinstance(expr, ast.Literal):
        return expr.value
    return None


def classify_atom(atom: ast.Expr) -> Tuple[str, object]:
    """Classify one atomic predicate.

    Returns ``("filter", FilterPredicate)``, ``("join",
    JoinPredicate)``, or ``("other", atom)``.
    """
    if isinstance(atom, ast.Comparison):
        left_col = isinstance(atom.left, ast.ColumnRef)
        right_col = isinstance(atom.right, ast.ColumnRef)
        if left_col and _is_constantish(atom.right):
            return (
                "filter",
                FilterPredicate(
                    column=atom.left,
                    op=atom.op,
                    values=(_const_value(atom.right),),
                ),
            )
        if right_col and _is_constantish(atom.left):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                atom.op, atom.op
            )
            return (
                "filter",
                FilterPredicate(
                    column=atom.right,
                    op=flipped,
                    values=(_const_value(atom.left),),
                ),
            )
        if left_col and right_col and atom.op == "=":
            left, right = atom.left, atom.right
            if left.table != right.table or left.table is None:
                return ("join", JoinPredicate(left=left, right=right))
    elif isinstance(atom, ast.Between) and isinstance(
        atom.expr, ast.ColumnRef
    ):
        if _is_constantish(atom.low) and _is_constantish(atom.high):
            return (
                "filter",
                FilterPredicate(
                    column=atom.expr,
                    op="between",
                    values=(_const_value(atom.low), _const_value(atom.high)),
                ),
            )
    elif isinstance(atom, ast.InList) and isinstance(atom.expr, ast.ColumnRef):
        if all(_is_constantish(item) for item in atom.items):
            return (
                "filter",
                FilterPredicate(
                    column=atom.expr,
                    op="in",
                    values=tuple(_const_value(item) for item in atom.items),
                ),
            )
    elif isinstance(atom, ast.Like) and isinstance(atom.expr, ast.ColumnRef):
        return (
            "filter",
            FilterPredicate(
                column=atom.expr,
                op="like",
                values=(_const_value(atom.pattern),),
            ),
        )
    elif isinstance(atom, ast.IsNull) and isinstance(atom.expr, ast.ColumnRef):
        op = "isnotnull" if atom.negated else "isnull"
        return (
            "filter",
            FilterPredicate(column=atom.expr, op=op, values=()),
        )
    return ("other", atom)


def classify_conjuncts(conjuncts: Sequence[ast.Expr]) -> ClassifiedConjuncts:
    """Classify each atom of a conjunction into filter/join/other."""
    result = ClassifiedConjuncts()
    for atom in conjuncts:
        kind, payload = classify_atom(atom)
        if kind == "filter":
            result.filters.append(payload)  # type: ignore[arg-type]
        elif kind == "join":
            result.joins.append(payload)  # type: ignore[arg-type]
        else:
            result.other.append(payload)  # type: ignore[arg-type]
    return result


def referenced_columns(node: ast.Node) -> Set[Tuple[Optional[str], str]]:
    """All ``(table, column)`` pairs referenced anywhere under ``node``."""
    columns: Set[Tuple[Optional[str], str]] = set()
    for item in ast.walk(node):
        if isinstance(item, ast.ColumnRef):
            columns.add((item.table, item.column))
    return columns
