"""Typed abstract syntax tree for the engine's SQL dialect.

The node set deliberately covers the constructs the AutoIndex paper
reasons about: SPJ queries with conjunctive/disjunctive predicates,
grouping, ordering, limits, scalar IN-lists, BETWEEN, prefix LIKE, and
the three write statements (INSERT / UPDATE / DELETE) whose index
maintenance cost the estimator must model.

All nodes are immutable dataclasses so they can be hashed, cached, and
shared between the planner, the template store, and the candidate
generator without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value: number, string, boolean, or NULL."""

    value: object

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True)
class Placeholder(Expr):
    """A parameter marker (``$n``) produced by query templating."""

    index: int = 0

    def __str__(self) -> str:
        return f"${self.index}"


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison: ``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN low AND high`` (inclusive on both ends)."""

    expr: Expr
    low: Expr
    high: Expr

    def __str__(self) -> str:
        return f"{self.expr} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)``."""

    expr: Expr
    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(item) for item in self.items)
        return f"{self.expr} IN ({inner})"


@dataclass(frozen=True)
class Like(Expr):
    """``expr LIKE pattern``; only used with constant patterns."""

    expr: Expr
    pattern: Expr

    def __str__(self) -> str:
        return f"{self.expr} LIKE {self.pattern}"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.expr} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""

    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " AND ".join(_paren_bool(item) for item in self.items)


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " OR ".join(_paren_bool(item) for item in self.items)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    child: Expr

    def __str__(self) -> str:
        return f"NOT {_paren_bool(self.child)}"


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic: ``+``, ``-``, ``*``, ``/``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; aggregates are SUM/COUNT/AVG/MIN/MAX."""

    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False

    AGGREGATES = frozenset({"sum", "count", "avg", "min", "max"})

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in self.AGGREGATES

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({prefix}{inner})"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A subquery used as a scalar or IN-subquery expression."""

    select: "Select"

    def __str__(self) -> str:
        return f"({self.select})"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr IN (SELECT ...)``."""

    expr: Expr
    select: "Select"

    def __str__(self) -> str:
        return f"{self.expr} IN ({self.select})"


def _paren_bool(expr: Expr) -> str:
    """Parenthesize nested boolean connectives for readable SQL text."""
    if isinstance(expr, (And, Or)):
        return f"({expr})"
    return str(expr)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for SQL statements."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectItem(Node):
    """One entry in a SELECT list: expression plus optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class TableRef(Node):
    """A base-table source in a FROM clause."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name the table is visible as inside the query."""
        return self.alias or self.name

    def __str__(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass(frozen=True)
class SubquerySource(Node):
    """A derived table (subquery in FROM) with a mandatory alias."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def __str__(self) -> str:
        return f"({self.select}) AS {self.alias}"


Source = Union[TableRef, SubquerySource]


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} DESC" if self.descending else str(self.expr)


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement.

    Joins are expressed in canonical comma-join form: all sources live
    in ``sources`` and join conditions are ordinary conjuncts in
    ``where``. The parser folds explicit ``JOIN ... ON`` syntax into
    this form, which is what the planner and the candidate generator
    consume.
    """

    items: Tuple[SelectItem, ...]
    sources: Tuple[Source, ...]
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.items))
        parts.append("FROM")
        parts.append(", ".join(str(src) for src in self.sources))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(g) for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table (cols) VALUES (row), (row), ...``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expr, ...], ...]

    def __str__(self) -> str:
        cols = ", ".join(self.columns)
        rows = ", ".join(
            "(" + ", ".join(str(v) for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table} ({cols}) VALUES {rows}"


@dataclass(frozen=True)
class Assignment(Node):
    """``column = expr`` inside an UPDATE."""

    column: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.column} = {self.value}"


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr, ... WHERE ...``."""

    table: str
    assignments: Tuple[Assignment, ...]
    where: Optional[Expr] = None

    def __str__(self) -> str:
        sets = ", ".join(str(a) for a in self.assignments)
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table WHERE ...``."""

    table: str
    where: Optional[Expr] = None

    def __str__(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


def is_write(stmt: Statement) -> bool:
    """Return True for statements that modify data (and hence indexes)."""
    return isinstance(stmt, (Insert, Update, Delete))


def walk(node: Node):
    """Yield ``node`` and every descendant AST node, depth-first.

    Used by analysis passes that need to visit every expression in a
    statement (e.g. column usage extraction).
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for value in _children(current):
            stack.append(value)


def _children(node: Node):
    """Return the direct child nodes of an AST node."""
    result = []
    cls_fields = getattr(node, "__dataclass_fields__", None)
    if not cls_fields:
        return result
    for name in cls_fields:
        value = getattr(node, name)
        if isinstance(value, Node):
            result.append(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    result.append(item)
                elif isinstance(item, tuple):
                    result.extend(v for v in item if isinstance(v, Node))
    return result
