"""Hand-written tokenizer for the engine's SQL dialect.

Two surfaces over the same lexical grammar:

* :class:`Lexer` / :func:`tokenize` — the parser's token stream:
  rich :class:`Token` objects with positions, unquoted string
  values, and ``matches`` helpers;
* :func:`scan` — the ingest fast path: one compiled master regex
  producing bare ``(kind, value)`` tuples, several times faster
  because no Token objects are allocated. Token boundaries and error
  conditions mirror the Lexer exactly (the raw-key normalizer's
  soundness depends on it); only the surface differs — string values
  stay quoted (callers mask them anyway) and error positions may
  differ on malformed input.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input (lexing or parsing)."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PLACEHOLDER = "placeholder"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "or",
        "not",
        "group",
        "order",
        "by",
        "having",
        "limit",
        "asc",
        "desc",
        "insert",
        "into",
        "values",
        "update",
        "set",
        "delete",
        "as",
        "join",
        "inner",
        "left",
        "on",
        "between",
        "in",
        "like",
        "is",
        "null",
        "distinct",
        "true",
        "false",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),."


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``slots=True`` matters here: the ingest fast path lexes every
    observed statement, so token allocation is the dominant cost of
    :func:`repro.sql.normalize.normalize_sql`.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: Optional[str] = None) -> bool:
        if self.type is not type_:
            return False
        return value is None or self.value == value


class Lexer:
    """Tokenizes a SQL string into a list of :class:`Token`."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._length = len(text)

    def tokens(self) -> List[Token]:
        """Tokenize the whole input, ending with an EOF token."""
        result: List[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _next_token(self) -> Token:
        self._skip_whitespace()
        if self._pos >= self._length:
            return Token(TokenType.EOF, "", self._pos)

        start = self._pos
        char = self._text[start]

        if char == "'":
            return self._lex_string(start)
        if char.isdigit() or (
            char == "." and self._peek_is_digit(start + 1)
        ):
            return self._lex_number(start)
        if char == "$":
            return self._lex_placeholder(start)
        if char.isalpha() or char == "_":
            return self._lex_word(start)

        for op in _OPERATORS:
            if self._text.startswith(op, start):
                self._pos = start + len(op)
                return Token(TokenType.OPERATOR, op, start)
        if char in _PUNCT:
            self._pos = start + 1
            return Token(TokenType.PUNCT, char, start)

        raise SqlSyntaxError(f"unexpected character {char!r}", start)

    def _skip_whitespace(self) -> None:
        while self._pos < self._length:
            char = self._text[self._pos]
            if char.isspace():
                self._pos += 1
            elif self._text.startswith("--", self._pos):
                end = self._text.find("\n", self._pos)
                self._pos = self._length if end < 0 else end + 1
            else:
                return

    def _peek_is_digit(self, pos: int) -> bool:
        return pos < self._length and self._text[pos].isdigit()

    def _lex_string(self, start: int) -> Token:
        parts: List[str] = []
        pos = start + 1
        while pos < self._length:
            char = self._text[pos]
            if char == "'":
                if self._text.startswith("''", pos):
                    parts.append("'")
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(parts), start)
            parts.append(char)
            pos += 1
        raise SqlSyntaxError("unterminated string literal", start)

    def _lex_number(self, start: int) -> Token:
        pos = start
        seen_dot = False
        while pos < self._length:
            char = self._text[pos]
            if char.isdigit():
                pos += 1
            elif char == "." and not seen_dot and self._peek_is_digit(pos + 1):
                seen_dot = True
                pos += 1
            else:
                break
        self._pos = pos
        return Token(TokenType.NUMBER, self._text[start:pos], start)

    def _lex_placeholder(self, start: int) -> Token:
        pos = start + 1
        while pos < self._length and self._text[pos].isdigit():
            pos += 1
        self._pos = pos
        return Token(TokenType.PLACEHOLDER, self._text[start:pos], start)

    def _lex_word(self, start: int) -> Token:
        pos = start
        while pos < self._length and (
            self._text[pos].isalnum() or self._text[pos] == "_"
        ):
            pos += 1
        self._pos = pos
        word = self._text[start:pos]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start)
        return Token(TokenType.IDENT, lowered, start)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: tokenize ``text`` into a token list."""
    return Lexer(text).tokens()


# Master scanning regex for :func:`scan`. Each match consumes any
# leading whitespace/comments plus exactly one token, so the Python
# loop runs once per token, not once per gap. Alternation order
# encodes the Lexer's precedence: comments beat the ``-`` operator,
# ``.5`` lexes as a number while a bare ``.`` is punctuation, and the
# unrolled string body (``'' `` escapes) never backtracks. The
# whitespace prefix is possessive (``*+``): without it, a trailing
# comment would backtrack to surrender its last characters as a fake
# token (``-- done`` → comment ``-- don`` + ident ``e``).
_WS_PATTERN = r"(?:\s+|--[^\n]*+\n?)*+"
_SCAN_RE = re.compile(
    _WS_PATTERN +
    r"(?:(?P<string>'[^']*(?:''[^']*)*')"
    r"|(?P<number>\d+(?:\.\d+)?|\.\d+)"
    r"|(?P<word>[^\W\d]\w*)"
    r"|(?P<placeholder>\$\d*)"
    r"|(?P<operator><=|>=|<>|!=|[=<>+\-*/])"
    r"|(?P<punct>[(),.]))"
)
_WS_RUN_RE = re.compile(_WS_PATTERN)

# _SCAN_RE group indices, for callers dispatching on match.lastindex.
SCAN_STRING = 1
SCAN_NUMBER = 2
SCAN_WORD = 3
SCAN_PLACEHOLDER = 4
SCAN_OPERATOR = 5
SCAN_PUNCT = 6

_SCAN_KINDS = (
    None, "string", "number", "word", "placeholder", "operator",
    "punct",
)


def _scan_error(text: str, pos: int) -> None:
    if text[pos] == "'":
        raise SqlSyntaxError("unterminated string literal", pos)
    raise SqlSyntaxError(f"unexpected character {text[pos]!r}", pos)


def scan_break(text: str, pos: int) -> None:
    """Handle a scanner discontinuity at ``pos``.

    Called when the next ``_SCAN_RE`` match is not contiguous with the
    previous one, or when the matches ran out before the end of the
    input. Either the remainder is pure whitespace/comments — a later
    bogus match may even sit *inside* a trailing comment — and the
    caller must simply stop scanning (returns silently), or the first
    non-trivia character is unscannable (raises the Lexer's error).
    """
    end = _WS_RUN_RE.match(text, pos).end()
    if end != len(text):
        _scan_error(text, end)


def scan(text: str) -> List[Tuple[str, str]]:
    """Tokenize ``text`` into bare ``(kind, value)`` tuples — fast.

    Kinds are ``keyword``/``ident``/``number``/``string``/
    ``operator``/``punct``/``placeholder``; words arrive lowercased
    (like :class:`Token`), strings keep their quotes (unlike
    :class:`Token` — the one caller masks them wholesale). Raises
    :class:`SqlSyntaxError` on exactly the inputs the Lexer rejects;
    error positions may differ on malformed input.
    """
    result: List[Tuple[str, str]] = []
    append = result.append
    pos = 0
    for match in _SCAN_RE.finditer(text):
        if match.start() != pos:
            scan_break(text, pos)  # raises unless the rest is trivia
            return result
        pos = match.end()
        index = match.lastindex
        value = match.group(index)
        if index == SCAN_WORD:
            value = value.lower()
            kind = "keyword" if value in KEYWORDS else "ident"
        else:
            kind = _SCAN_KINDS[index]
        append((kind, value))
    if pos != len(text):
        scan_break(text, pos)
    return result
