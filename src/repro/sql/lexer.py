"""Hand-written tokenizer for the engine's SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input (lexing or parsing)."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PLACEHOLDER = "placeholder"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "or",
        "not",
        "group",
        "order",
        "by",
        "having",
        "limit",
        "asc",
        "desc",
        "insert",
        "into",
        "values",
        "update",
        "set",
        "delete",
        "as",
        "join",
        "inner",
        "left",
        "on",
        "between",
        "in",
        "like",
        "is",
        "null",
        "distinct",
        "true",
        "false",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: Optional[str] = None) -> bool:
        if self.type is not type_:
            return False
        return value is None or self.value == value


class Lexer:
    """Tokenizes a SQL string into a list of :class:`Token`."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._length = len(text)

    def tokens(self) -> List[Token]:
        """Tokenize the whole input, ending with an EOF token."""
        result: List[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _next_token(self) -> Token:
        self._skip_whitespace()
        if self._pos >= self._length:
            return Token(TokenType.EOF, "", self._pos)

        start = self._pos
        char = self._text[start]

        if char == "'":
            return self._lex_string(start)
        if char.isdigit() or (
            char == "." and self._peek_is_digit(start + 1)
        ):
            return self._lex_number(start)
        if char == "$":
            return self._lex_placeholder(start)
        if char.isalpha() or char == "_":
            return self._lex_word(start)

        for op in _OPERATORS:
            if self._text.startswith(op, start):
                self._pos = start + len(op)
                return Token(TokenType.OPERATOR, op, start)
        if char in _PUNCT:
            self._pos = start + 1
            return Token(TokenType.PUNCT, char, start)

        raise SqlSyntaxError(f"unexpected character {char!r}", start)

    def _skip_whitespace(self) -> None:
        while self._pos < self._length:
            char = self._text[self._pos]
            if char.isspace():
                self._pos += 1
            elif self._text.startswith("--", self._pos):
                end = self._text.find("\n", self._pos)
                self._pos = self._length if end < 0 else end + 1
            else:
                return

    def _peek_is_digit(self, pos: int) -> bool:
        return pos < self._length and self._text[pos].isdigit()

    def _lex_string(self, start: int) -> Token:
        parts: List[str] = []
        pos = start + 1
        while pos < self._length:
            char = self._text[pos]
            if char == "'":
                if self._text.startswith("''", pos):
                    parts.append("'")
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(parts), start)
            parts.append(char)
            pos += 1
        raise SqlSyntaxError("unterminated string literal", start)

    def _lex_number(self, start: int) -> Token:
        pos = start
        seen_dot = False
        while pos < self._length:
            char = self._text[pos]
            if char.isdigit():
                pos += 1
            elif char == "." and not seen_dot and self._peek_is_digit(pos + 1):
                seen_dot = True
                pos += 1
            else:
                break
        self._pos = pos
        return Token(TokenType.NUMBER, self._text[start:pos], start)

    def _lex_placeholder(self, start: int) -> Token:
        pos = start + 1
        while pos < self._length and self._text[pos].isdigit():
            pos += 1
        self._pos = pos
        return Token(TokenType.PLACEHOLDER, self._text[start:pos], start)

    def _lex_word(self, start: int) -> Token:
        pos = start
        while pos < self._length and (
            self._text[pos].isalnum() or self._text[pos] == "_"
        ):
            pos += 1
        self._pos = pos
        word = self._text[start:pos]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start)
        return Token(TokenType.IDENT, lowered, start)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: tokenize ``text`` into a token list."""
    return Lexer(text).tokens()
