"""Query fingerprinting for SQL2Template.

The paper's SQL2Template component maps each incoming query to a query
*template* by replacing predicate literals with placeholders and
matching the result against a bounded template store (Section IV-A,
step 1). This module provides the AST→template transformation and the
canonical fingerprint string used as the matching key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sql import ast


@dataclass(frozen=True)
class ParameterizedQuery:
    """A statement with literals lifted out, plus the extracted values."""

    statement: ast.Statement
    values: Tuple[object, ...]

    @property
    def fingerprint(self) -> str:
        return str(self.statement)


class _Parameterizer:
    """Rewrites an AST, replacing literals with numbered placeholders."""

    def __init__(self) -> None:
        self.values: List[object] = []

    def _bind(self, value: object) -> ast.Placeholder:
        self.values.append(value)
        return ast.Placeholder(index=len(self.values))

    # -- expression rewriting -------------------------------------------------

    def expr(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Literal):
            return self._bind(node.value)
        if isinstance(node, ast.Placeholder):
            return node
        if isinstance(node, ast.Comparison):
            return ast.Comparison(
                op=node.op, left=self.expr(node.left), right=self.expr(node.right)
            )
        if isinstance(node, ast.Between):
            return ast.Between(
                expr=self.expr(node.expr),
                low=self.expr(node.low),
                high=self.expr(node.high),
            )
        if isinstance(node, ast.InList):
            # IN-lists of different lengths should share a template:
            # collapse the whole list to a single placeholder marker.
            rewritten = self.expr(node.items[0]) if node.items else None
            if rewritten is None:
                return node
            return ast.InList(expr=self.expr(node.expr), items=(rewritten,))
        if isinstance(node, ast.Like):
            return ast.Like(
                expr=self.expr(node.expr), pattern=self.expr(node.pattern)
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(expr=self.expr(node.expr), negated=node.negated)
        if isinstance(node, ast.And):
            return ast.And(items=tuple(self.expr(i) for i in node.items))
        if isinstance(node, ast.Or):
            return ast.Or(items=tuple(self.expr(i) for i in node.items))
        if isinstance(node, ast.Not):
            return ast.Not(child=self.expr(node.child))
        if isinstance(node, ast.Arith):
            return ast.Arith(
                op=node.op, left=self.expr(node.left), right=self.expr(node.right)
            )
        if isinstance(node, ast.FuncCall):
            return ast.FuncCall(
                name=node.name,
                args=tuple(self.expr(a) for a in node.args),
                distinct=node.distinct,
            )
        if isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(select=self.select(node.select))
        if isinstance(node, ast.InSubquery):
            return ast.InSubquery(
                expr=self.expr(node.expr), select=self.select(node.select)
            )
        # ColumnRef, Star: no literals inside.
        return node

    def opt_expr(self, node):
        return None if node is None else self.expr(node)

    # -- statement rewriting ----------------------------------------------------

    def select(self, node: ast.Select) -> ast.Select:
        return ast.Select(
            items=tuple(
                ast.SelectItem(expr=self.expr(i.expr), alias=i.alias)
                for i in node.items
            ),
            sources=tuple(self.source(s) for s in node.sources),
            where=self.opt_expr(node.where),
            group_by=tuple(self.expr(g) for g in node.group_by),
            having=self.opt_expr(node.having),
            order_by=tuple(
                ast.OrderItem(expr=self.expr(o.expr), descending=o.descending)
                for o in node.order_by
            ),
            limit=node.limit,
            distinct=node.distinct,
        )

    def source(self, node: ast.Source) -> ast.Source:
        if isinstance(node, ast.SubquerySource):
            return ast.SubquerySource(
                select=self.select(node.select), alias=node.alias
            )
        return node

    # lint: exhaustive[Statement]
    def statement(self, node: ast.Statement) -> ast.Statement:
        if isinstance(node, ast.Select):
            return self.select(node)
        if isinstance(node, ast.Insert):
            # All INSERTs into a table with the same column list share a
            # template regardless of row count and values; still record
            # the first row's values for completeness.
            if node.rows:
                for value in node.rows[0]:
                    if isinstance(value, ast.Literal):
                        self.values.append(value.value)
                    else:
                        self.values.append(None)
            placeholder_row = tuple(
                ast.Placeholder(index=i + 1) for i in range(len(node.columns))
            )
            return ast.Insert(
                table=node.table, columns=node.columns, rows=(placeholder_row,)
            )
        if isinstance(node, ast.Update):
            return ast.Update(
                table=node.table,
                assignments=tuple(
                    ast.Assignment(column=a.column, value=self.expr(a.value))
                    for a in node.assignments
                ),
                where=self.opt_expr(node.where),
            )
        if isinstance(node, ast.Delete):
            return ast.Delete(table=node.table, where=self.opt_expr(node.where))
        raise TypeError(f"cannot parameterize {type(node).__name__}")


def parameterize(statement: ast.Statement) -> ParameterizedQuery:
    """Lift literals out of ``statement`` into placeholders.

    Returns the rewritten statement and the extracted literal values in
    placeholder order. Two queries that differ only in literal values
    (or IN-list length, or INSERT row count) produce identical
    templates.
    """
    rewriter = _Parameterizer()
    template = rewriter.statement(statement)
    return ParameterizedQuery(
        statement=template, values=tuple(rewriter.values)
    )


def fingerprint(statement: ast.Statement) -> str:
    """The canonical template string for ``statement``.

    This is the key SQL2Template matches on: stable across literal
    values, whitespace, and keyword case (the parser lower-cases
    identifiers and keywords).
    """
    return parameterize(statement).fingerprint


class _PlaceholderStripper(_Parameterizer):
    """Rewrites placeholders to NULL literals, keeping literals as-is."""

    def expr(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Placeholder):
            return ast.Literal(value=None)
        if isinstance(node, ast.Literal):
            return node
        if isinstance(node, ast.InList):
            # The parent walker collapses IN-lists to one item
            # (template normalisation); when costing a concrete
            # statement the full list must survive — IN (0, 1, 2) is
            # three times as selective as IN (0).
            return ast.InList(
                expr=self.expr(node.expr),
                items=tuple(self.expr(i) for i in node.items),
            )
        return super().expr(node)


# lint: exhaustive[Statement] fallthrough=Insert
def strip_placeholders(statement: ast.Statement) -> ast.Statement:
    """Make templated statements plannable by nulling placeholders.

    Cost estimation on query *templates* (SQL2Template output) uses
    unknown-value selectivities; placeholders become NULL literals,
    which the stats layer treats as "value unknown". Concrete literals
    (including full IN-lists) pass through untouched, so the same
    helper serves both template and sample-SQL costing — the single
    shared copy every what-if path must use.
    """
    stripper = _PlaceholderStripper()
    if isinstance(statement, ast.Select):
        return stripper.select(statement)
    if isinstance(statement, ast.Insert):
        rows = tuple(
            tuple(
                ast.Literal(value=None)
                if isinstance(v, ast.Placeholder)
                else v
                for v in row
            )
            for row in statement.rows
        )
        return ast.Insert(
            table=statement.table, columns=statement.columns, rows=rows
        )
    if isinstance(statement, (ast.Update, ast.Delete)):
        return stripper.statement(statement)
    return statement
