"""SQL frontend: lexer, parser, AST, predicate normalization, templating.

This package implements the SQL dialect understood by the
:mod:`repro.engine` substrate and the analysis passes that AutoIndex's
candidate-index generation relies on (DNF rewriting, predicate
classification, and literal fingerprinting for SQL2Template).
"""

from repro.sql.ast import (
    And,
    Arith,
    Between,
    ColumnRef,
    Comparison,
    Delete,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    Placeholder,
    Select,
    SelectItem,
    Star,
    SubquerySource,
    TableRef,
    Update,
)
from repro.sql.lexer import Lexer, SqlSyntaxError, Token, TokenType
from repro.sql.parser import Parser, parse
from repro.sql.fingerprint import fingerprint, parameterize
from repro.sql.normalize import NORMALIZER_VERSION, normalize_sql, raw_key
from repro.sql.predicates import (
    classify_conjuncts,
    conjuncts_of,
    to_dnf,
    referenced_columns,
)

__all__ = [
    "And",
    "Arith",
    "Between",
    "ColumnRef",
    "Comparison",
    "Delete",
    "FuncCall",
    "InList",
    "Insert",
    "IsNull",
    "Lexer",
    "Like",
    "Literal",
    "NORMALIZER_VERSION",
    "Not",
    "Or",
    "OrderItem",
    "Parser",
    "Placeholder",
    "Select",
    "SelectItem",
    "SqlSyntaxError",
    "Star",
    "SubquerySource",
    "TableRef",
    "Token",
    "TokenType",
    "Update",
    "classify_conjuncts",
    "conjuncts_of",
    "fingerprint",
    "normalize_sql",
    "parameterize",
    "parse",
    "raw_key",
    "referenced_columns",
    "to_dnf",
]
