"""Raw-SQL normalization: the zero-reparse key for SQL2Template.

The ingest hot path observes every statement the workload emits.
Full template matching costs lex → parse → AST parameterization →
fingerprint stringification per statement; this module provides the
cheap first tier: a single pass over the lexer's master scanning
regex (:data:`repro.sql.lexer._SCAN_RE` — the same token boundaries
the parser sees, no Token allocation) that masks literal values into
a canonical *raw key*.  Two statements with the same raw key are
guaranteed to produce the same parsed template fingerprint, so a
bounded ``raw key → fingerprint`` cache (see
:class:`repro.core.templates.TemplateStore`) lets repeated statement
shapes skip the parser entirely.

The guarantee is one-directional by design:

* **sound** — equal raw keys imply equal fingerprints.  The key
  preserves every token except literal *values*, and the
  parameterizer's placeholder numbering depends only on literal
  *positions*, which the key preserves;
* **not complete** — two texts with different raw keys may still share
  a fingerprint (``b = -5`` vs ``b = 5``, boolean literals, IN-lists
  mixing literals with expressions, VALUES rows mixing ``$n``
  placeholders with literals).  Incompleteness only costs a cache
  slot, never correctness.

Masking rules, each mirroring :func:`repro.sql.fingerprint.parameterize`:

* number and string tokens become ``?`` — the parameterizer lifts
  every literal into a positional placeholder;
* the number after ``LIMIT`` is kept verbatim — ``Select.limit``
  survives parameterization, so ``LIMIT 5`` and ``LIMIT 10`` are
  *different* templates and must stay different keys;
* an ``IN`` list containing only literals collapses to ``in ( ? )`` —
  the parameterizer keeps a single placeholder for the whole list, so
  list length must not split templates.  After masking, a run of
  ``?`` items *is* exactly a pure-literal list (nothing else masks to
  ``?``), so the collapse is a regex over the masked text;
* the ``VALUES`` rows of an INSERT collapse to one masked row when
  the rows are identical masked-literal rows running to the end of
  the statement — the template keys on table + column list, not on
  row count.  The backreference keeps arity, so a malformed row
  count can never alias a valid cached statement;
* ``$n`` placeholders, keywords (including ``true``/``false``/
  ``null``), identifiers, operators, and punctuation pass through
  (case-folded like the lexer does); whitespace and comments vanish
  with tokenization.

``NORMALIZER_VERSION`` must be part of any cache key derived from
:func:`normalize_sql`: a persisted or long-lived mapping built under
one set of masking rules must not be consulted under another.  The
``cache-key`` lint checker enforces this.
"""

from __future__ import annotations

import re
from typing import Tuple

from repro.sql.lexer import (
    _SCAN_RE,
    SCAN_NUMBER,
    SCAN_STRING,
    SCAN_WORD,
    scan_break,
)

#: Bump whenever the masking rules change: raw keys produced by
#: different versions are not comparable, and every cache keyed on
#: :func:`normalize_sql` output must include this constant in its key.
NORMALIZER_VERSION = 2

#: The literal mask.  ``?`` cannot be produced by the lexer, so a
#: masked key can never collide with a verbatim token.
MASK = "?"

# ``in ( ?, ?, ... )`` — every item is a masked literal (nothing else
# produces ``?``), so list length collapses like the parameterizer's
# single IN placeholder.  ``\b`` keeps idents merely *ending* in "in"
# (margin, …) from matching; an identifier spelled "in" cannot exist
# (the lexer classifies it as the keyword).
_IN_LIST_RE = re.compile(r"\bin \( \?(?: , \?)* \)")

# ``values ( ?, ... ) , ( ?, ... ) … <end>`` — all-literal rows of
# identical shape (the backreference preserves arity) running to the
# end of the statement collapse to the first row.
_VALUES_RE = re.compile(r"\bvalues (\( \?(?: , \?)* \))(?: , \1)*$")

def normalize_sql(sql: str) -> str:
    """Canonical raw key for ``sql`` (may raise ``SqlSyntaxError``).

    Scans the text with the lexer's master regex (unscannable input
    raises exactly the error a full parse would), masks literals, and
    joins the stream with single spaces.
    """
    parts = []
    append = parts.append
    pos = 0
    after_limit = False
    for match in _SCAN_RE.finditer(sql):
        if match.start() != pos:
            scan_break(sql, pos)  # raises unless the rest is trivia
            pos = len(sql)
            break
        pos = match.end()
        index = match.lastindex
        if index == SCAN_WORD:
            # Lowercase like the lexer; "limit" can only ever be the
            # keyword (the lexer never yields it as an identifier).
            word = match[index].lower()
            append(word)
            after_limit = word == "limit"
            continue
        if index == SCAN_STRING:
            append(MASK)
        elif index == SCAN_NUMBER:
            append(match[index] if after_limit else MASK)
        else:  # placeholder / operator / punctuation: verbatim
            append(match[index])
        after_limit = False
    if pos != len(sql):
        scan_break(sql, pos)
    text = " ".join(parts)
    if "in ( ?" in text:
        text = _IN_LIST_RE.sub("in ( ? )", text)
    if "values ( ?" in text:
        text = _VALUES_RE.sub(r"values \1", text)
    return text


def raw_key(sql: str) -> Tuple[int, str]:
    """The cache key for ``sql``: masking rules version + raw text key."""
    return (NORMALIZER_VERSION, normalize_sql(sql))
