"""Command-line driver: ``python -m repro.lint [targets...]``.

Runs every registered checker over the target files/directories,
subtracts the baseline and inline suppressions, prints the remaining
violations, and exits non-zero if any are left.  Typical invocations::

    PYTHONPATH=src python -m repro.lint src/repro
    PYTHONPATH=src python -m repro.lint --select determinism src/repro
    PYTHONPATH=src python -m repro.lint --write-baseline src/repro
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import registered_checkers
from repro.analysis.runner import CACHE_DIR_NAME, SCOPES, analyze_paths


def _project_root(start: Path) -> Path:
    """Nearest ancestor containing ``pyproject.toml`` (else cwd)."""
    node = start.resolve()
    for candidate in [node, *node.parents]:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return Path.cwd()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CHECKER",
        help="run only these checkers (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: auto; 1 forces serial)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <project root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current violations into the baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--scope",
        choices=SCOPES,
        default="all",
        help=(
            "run only the per-file checkers (file), only the "
            "interprocedural pass (project), or both (all, default)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "ignore and do not write the effect-summary cache "
            f"({CACHE_DIR_NAME}/): fully cold interprocedural run"
        ),
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's rationale and an example finding, then exit",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print registered checkers and exit",
    )
    return parser


def _explain(rule: str) -> int:
    checkers = registered_checkers()
    cls = checkers.get(rule)
    if cls is None:
        known = ", ".join(sorted(checkers))
        print(f"error: unknown rule: {rule} (known: {known})",
              file=sys.stderr)
        return 2
    print(f"{cls.name}: {cls.description}")
    if cls.rationale:
        print(f"\nrationale:\n{cls.rationale.strip()}")
    if cls.example:
        print(f"\nexample finding:\n{cls.example.strip()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_checkers:
        for name, cls in sorted(registered_checkers().items()):
            print(f"{name}: {cls.description}")
        return 0

    if args.explain:
        return _explain(args.explain)

    targets: List[Path] = [Path(t) for t in args.targets]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for target in missing:
            print(f"error: no such file or directory: {target}",
                  file=sys.stderr)
        return 2

    project_root = _project_root(targets[0])
    baseline_path = args.baseline or project_root / DEFAULT_BASELINE_NAME

    try:
        violations = analyze_paths(
            targets,
            project_root=project_root,
            select=args.select,
            jobs=args.jobs,
            scope=args.scope,
            use_cache=not args.no_cache,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(
            f"wrote {len(violations)} violation(s) to {baseline_path}"
        )
        return 0

    if not args.no_baseline:
        baseline = load_baseline(baseline_path)
        baselined = len(violations)
        violations = baseline.filter_new(violations)
        baselined -= len(violations)
    else:
        baselined = 0

    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": v.rule,
                        "path": v.path,
                        "line": v.line,
                        "message": v.message,
                        "fingerprint": v.fingerprint,
                    }
                    for v in violations
                ],
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        summary = f"{len(violations)} violation(s)"
        if baselined:
            summary += f" ({baselined} baselined)"
        print(summary)
    return 1 if violations else 0
