"""File discovery and (optionally parallel) analysis execution.

Two passes share this runner.  The **per-file pass** is
embarrassingly parallel: every module is parsed and checked
independently, so files fan out to a process pool when the count
justifies the fork cost.  The **project pass** runs the
interprocedural checkers in the parent process: it loads every
module, extracts (or loads from cache) per-file effect summaries,
links them into a project graph, and hands the whole thing to each
:class:`~repro.analysis.core.ProjectChecker`.

Per-file summaries are pure functions of file content, so they are
persisted to ``<project root>/.lint-cache/effects.json`` keyed on the
content hash and :data:`~repro.analysis.effects.ANALYZER_VERSION`;
repeat runs skip extraction for unchanged files.  ``use_cache=False``
(CLI ``--no-cache``) pins fully cold mode — no read, no write.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    ModuleInfo,
    ProjectContext,
    Violation,
    _is_suppressed,
    all_checkers,
    analyze_module,
    file_checkers,
    load_module,
    parse_suppressions,
    project_checkers,
)
from repro.analysis.effects import (
    ANALYZER_VERSION,
    EffectIndex,
    FileSummary,
    extract_file_summary,
)
from repro.analysis.graph import ProjectGraph

#: Below this many files a pool costs more than it saves.
_PARALLEL_THRESHOLD = 16

#: Cache directory name, relative to the project root.
CACHE_DIR_NAME = ".lint-cache"
_CACHE_FILE_NAME = "effects.json"

#: Valid values for the ``scope`` parameter / ``--scope`` flag.
SCOPES = ("file", "project", "all")


def discover_files(targets: Sequence[Path]) -> List[Path]:
    """Expand *targets* (files or directories) into sorted ``.py`` files."""
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(
                p
                for p in target.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif target.suffix == ".py":
            files.append(target)
    return sorted(set(files))


def _rel_path(path: Path, project_root: Optional[Path]) -> str:
    if project_root is not None:
        try:
            return (
                path.resolve().relative_to(project_root.resolve()).as_posix()
            )
        except ValueError:
            pass
    return path.as_posix()


def _analyze_one(
    path_str: str,
    project_root_str: Optional[str],
    select: Optional[Tuple[str, ...]],
) -> List[Violation]:
    """Analyze a single file; module-level so it pickles for the pool."""
    path = Path(path_str)
    project_root = None if project_root_str is None else Path(project_root_str)
    try:
        module = load_module(path, project_root=project_root)
    except SyntaxError as exc:
        return [
            Violation(
                rule="parse",
                path=_rel_path(path, project_root),
                line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    checkers = file_checkers(select=select)
    return analyze_module(module, checkers)


# ---------------------------------------------------------------------------
# Effect-summary cache
# ---------------------------------------------------------------------------


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _cache_path(project_root: Optional[Path], cache_dir: Optional[Path]) -> Optional[Path]:
    if cache_dir is not None:
        return cache_dir / _CACHE_FILE_NAME
    if project_root is not None:
        return project_root / CACHE_DIR_NAME / _CACHE_FILE_NAME
    return None


def _load_cache(cache_file: Optional[Path]) -> Dict[str, Dict[str, object]]:
    if cache_file is None or not cache_file.exists():
        return {}
    try:
        raw = json.loads(cache_file.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(raw, dict) or raw.get("version") != ANALYZER_VERSION:
        return {}
    files = raw.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(
    cache_file: Optional[Path], files: Dict[str, Dict[str, object]]
) -> None:
    if cache_file is None:
        return
    try:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        cache_file.write_text(
            json.dumps(
                {"version": ANALYZER_VERSION, "files": files},
                sort_keys=True,
            ),
            encoding="utf-8",
        )
    except OSError:
        # A read-only checkout must not fail the lint run.
        pass


def _summarize_modules(
    modules: Sequence[ModuleInfo],
    cache_file: Optional[Path],
    use_cache: bool,
) -> List[FileSummary]:
    """Per-file summaries, via the content-hash cache when allowed."""
    cached = _load_cache(cache_file) if use_cache else {}
    next_cache: Dict[str, Dict[str, object]] = {}
    summaries: List[FileSummary] = []
    for module in modules:
        digest = _content_hash(module.source)
        entry = cached.get(module.rel_path)
        summary: Optional[FileSummary] = None
        if (
            isinstance(entry, dict)
            and entry.get("hash") == digest
            and isinstance(entry.get("summary"), dict)
        ):
            try:
                summary = FileSummary.from_dict(
                    entry["summary"]  # type: ignore[arg-type]
                )
            except (KeyError, TypeError, ValueError, AssertionError):
                summary = None
        if summary is None:
            summary = extract_file_summary(module.rel_path, module.tree)
        summaries.append(summary)
        next_cache[module.rel_path] = {
            "hash": digest,
            "summary": summary.to_dict(),
        }
    if use_cache:
        _save_cache(cache_file, next_cache)
    return summaries


# ---------------------------------------------------------------------------
# Project pass
# ---------------------------------------------------------------------------


def _analyze_project(
    files: Sequence[Path],
    project_root: Optional[Path],
    select: Optional[Tuple[str, ...]],
    use_cache: bool,
    cache_dir: Optional[Path],
) -> List[Violation]:
    checkers = project_checkers(select=select)
    if not checkers:
        return []
    modules: List[ModuleInfo] = []
    violations: List[Violation] = []
    for path in files:
        try:
            modules.append(load_module(path, project_root=project_root))
        except SyntaxError:
            # The per-file pass owns the parse violation; the project
            # pass simply works on the files that do parse.
            continue
    summaries = _summarize_modules(
        modules, _cache_path(project_root, cache_dir), use_cache
    )
    graph = ProjectGraph([s.symbols for s in summaries])
    effects = EffectIndex(graph, summaries)
    ctx = ProjectContext(
        modules={m.rel_path: m for m in modules},
        graph=graph,
        effects=effects,
    )
    suppressions = {
        m.rel_path: parse_suppressions(m)[0] for m in modules
    }
    for checker in checkers:
        for violation in checker.check_project(ctx):
            module_sups = suppressions.get(violation.path, ())
            if not _is_suppressed(violation, module_sups):
                violations.append(violation)
    return violations


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_paths(
    targets: Sequence[Path],
    project_root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    scope: str = "all",
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> List[Violation]:
    """Analyze every ``.py`` file under *targets*.

    ``jobs=None`` auto-selects: serial for small trees, a process pool
    otherwise.  ``jobs=1`` forces serial; results are identical either
    way (and sorted, so output order is deterministic).  ``scope``
    picks the per-file pass, the interprocedural project pass, or
    both (the default).
    """
    if scope not in SCOPES:
        raise KeyError(f"unknown scope: {scope} (known: {', '.join(SCOPES)})")
    files = discover_files(targets)
    root_str = None if project_root is None else str(project_root)
    select_tuple = None if select is None else tuple(select)
    # Fail fast on unknown rule names before forking workers.
    all_checkers(select=select_tuple)

    if jobs is None:
        jobs = (
            min(8, os.cpu_count() or 1)
            if len(files) >= _PARALLEL_THRESHOLD
            else 1
        )

    violations: List[Violation] = []
    if scope in ("file", "all"):
        if jobs <= 1 or len(files) <= 1:
            for path in files:
                violations.extend(
                    _analyze_one(str(path), root_str, select_tuple)
                )
        else:
            try:
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    for result in pool.map(
                        _analyze_one,
                        [str(p) for p in files],
                        [root_str] * len(files),
                        [select_tuple] * len(files),
                    ):
                        violations.extend(result)
            except (OSError, RuntimeError):
                # Sandboxes sometimes forbid fork/spawn; degrade to serial.
                violations = []
                for path in files:
                    violations.extend(
                        _analyze_one(str(path), root_str, select_tuple)
                    )
    if scope in ("project", "all"):
        violations.extend(
            _analyze_project(
                files,
                project_root,
                select_tuple,
                use_cache=use_cache,
                cache_dir=cache_dir,
            )
        )
    unique = sorted(
        set(violations),
        key=lambda v: (v.path, v.line, v.rule, v.message),
    )
    return unique
