"""File discovery and (optionally parallel) analysis execution.

Analysis is embarrassingly parallel per file: every module is parsed
and checked independently, so the runner fans files out to a process
pool when the file count justifies the fork cost.  Workers re-import
this module by qualified name, which requires ``repro`` to be
importable in the child (the CLI is normally invoked with
``PYTHONPATH=src``, which child processes inherit).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Violation,
    all_checkers,
    analyze_module,
    load_module,
)

#: Below this many files a pool costs more than it saves.
_PARALLEL_THRESHOLD = 16


def discover_files(targets: Sequence[Path]) -> List[Path]:
    """Expand *targets* (files or directories) into sorted ``.py`` files."""
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(
                p
                for p in target.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif target.suffix == ".py":
            files.append(target)
    return sorted(set(files))


def _analyze_one(
    path_str: str,
    project_root_str: Optional[str],
    select: Optional[Tuple[str, ...]],
) -> List[Violation]:
    """Analyze a single file; module-level so it pickles for the pool."""
    path = Path(path_str)
    project_root = None if project_root_str is None else Path(project_root_str)
    try:
        module = load_module(path, project_root=project_root)
    except SyntaxError as exc:
        rel = path.as_posix()
        if project_root is not None:
            try:
                rel = path.resolve().relative_to(
                    project_root.resolve()
                ).as_posix()
            except ValueError:
                pass
        return [
            Violation(
                rule="parse",
                path=rel,
                line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    checkers = all_checkers(select=select)
    return analyze_module(module, checkers)


def analyze_paths(
    targets: Sequence[Path],
    project_root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> List[Violation]:
    """Analyze every ``.py`` file under *targets*.

    ``jobs=None`` auto-selects: serial for small trees, a process pool
    otherwise.  ``jobs=1`` forces serial; results are identical either
    way (and sorted, so output order is deterministic).
    """
    files = discover_files(targets)
    root_str = None if project_root is None else str(project_root)
    select_tuple = None if select is None else tuple(select)
    # Fail fast on unknown rule names before forking workers.
    all_checkers(select=select_tuple)

    if jobs is None:
        jobs = (
            min(8, os.cpu_count() or 1)
            if len(files) >= _PARALLEL_THRESHOLD
            else 1
        )

    violations: List[Violation] = []
    if jobs <= 1 or len(files) <= 1:
        for path in files:
            violations.extend(_analyze_one(str(path), root_str, select_tuple))
    else:
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for result in pool.map(
                    _analyze_one,
                    [str(p) for p in files],
                    [root_str] * len(files),
                    [select_tuple] * len(files),
                ):
                    violations.extend(result)
        except (OSError, RuntimeError):
            # Sandboxes sometimes forbid fork/spawn; degrade to serial.
            violations = []
            for path in files:
                violations.extend(
                    _analyze_one(str(path), root_str, select_tuple)
                )
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return violations
