"""AST-based invariant linting for the repro codebase.

The costing fast paths introduced by the delta-costing work rely on
invariants that nothing in the type system enforces: cache keys must
cover every input the cached computation reads, rollouts must draw
randomness from an explicit seeded RNG, cost/estimator code must not
read wall clocks, the layer DAG ``sql -> engine -> core -> bench``
must stay acyclic, and AST dispatchers must keep up with the node set
in ``repro.sql.ast``. This package checks all of that statically.

Architecture:

* :mod:`repro.analysis.core` — the framework: :class:`Violation`,
  :class:`ModuleInfo`, the checker registry, and inline-suppression
  parsing (``# lint: ignore[rule] -- reason``);
* :mod:`repro.analysis.baseline` — the persisted suppression file
  (``lint-baseline.json``) that lets a rule land before the tree is
  fully clean;
* :mod:`repro.analysis.runner` — file discovery plus serial and
  per-file parallel execution;
* :mod:`repro.analysis.checkers` — the shipped checkers;
* :mod:`repro.analysis.cli` — the ``python -m repro.lint`` entry
  point (exits non-zero on violations not in the baseline).

The package is deliberately stdlib-only (no numpy) so the lint can run
in environments where the engine's dependencies are absent.
"""

from repro.analysis.core import (
    Checker,
    ModuleInfo,
    Violation,
    all_checkers,
    analyze_module,
    analyze_snippet,
    load_module,
    register,
)
from repro.analysis.runner import analyze_paths, discover_files

__all__ = [
    "Checker",
    "ModuleInfo",
    "Violation",
    "all_checkers",
    "analyze_module",
    "analyze_paths",
    "analyze_snippet",
    "discover_files",
    "load_module",
    "register",
]
