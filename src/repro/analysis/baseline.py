"""Baseline file support.

A baseline records the fingerprints of violations that predate a rule
so the rule can land (and gate new regressions) before the tree is
fully clean.  The file is JSON, human-reviewable, and matched purely
by fingerprint — line numbers in the entries are informational.

The shipped ``lint-baseline.json`` is empty for ``core/`` and
``engine/`` by policy: those layers carry the delta-costing
invariants and must stay clean rather than baselined.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Set

from repro.analysis.core import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class Baseline:
    """The set of accepted (pre-existing) violation fingerprints."""

    fingerprints: Set[str] = field(default_factory=set)

    def accepts(self, violation: Violation) -> bool:
        return violation.fingerprint in self.fingerprints

    def filter_new(self, violations: Sequence[Violation]) -> List[Violation]:
        return [v for v in violations if not self.accepts(v)]


def load_baseline(path: Path) -> Baseline:
    """Load *path*; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries", [])
    return Baseline(
        fingerprints={
            entry["fingerprint"] for entry in entries if "fingerprint" in entry
        }
    )


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Persist *violations* as the new accepted baseline."""
    entries = [
        {
            "fingerprint": v.fingerprint,
            "rule": v.rule,
            "path": v.path,
            "line": v.line,
            "message": v.message,
        }
        for v in sorted(
            violations, key=lambda v: (v.path, v.line, v.rule, v.message)
        )
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
