"""Project-wide symbol table and call resolution.

The per-file checkers in :mod:`repro.analysis.checkers` see one
module at a time; the interprocedural rules (fork-safety,
stage-effects, cache-invalidation) need to follow calls across
modules.  This module provides the *symbol* half of that: per-file
extraction of classes, functions, imports and attribute types into
JSON-serializable :class:`ModuleSymbols`, and a :class:`ProjectGraph`
that links them — class hierarchy, method lookup through inheritance,
structural protocol matching, and annotation-based type resolution.

Resolution is deliberately conservative and syntactic.  Types come
from annotations (parameters, dataclass fields, ``__init__``
assignments of annotated parameters or direct constructor calls) and
from constructor-call or annotated-return assignments to locals; a
receiver whose type cannot be established resolves to *unknown* and
is neither traversed nor reported — the analyzer must never crash or
guess on dynamic code.

Everything here is stdlib-only and pure: extraction is per-file (so
results can be cached by content hash), linking is cheap and redone
every run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Annotation ref for the stdlib RNG type (``random.Random``); the
#: effects layer treats draws on values of this type as rng effects.
RANDOM_REF = "random:Random"

#: Fraction of a protocol's methods a class must define (including
#: inherited ones) to count as a structural implementation.
_PROTOCOL_MATCH_RATIO = 0.6


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a project-relative POSIX path.

    ``src/repro/core/mcts.py`` → ``repro.core.mcts``; package
    ``__init__.py`` files name the package itself.
    """
    parts = list(rel_path.split("/"))
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if not parts:
        return rel_path
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts) if parts else leaf


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    name: str
    qualname: str  # "module:func" or "module:Class.meth"
    line: int
    returns: Optional[str] = None  # resolved class ref of return type

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "line": self.line,
            "returns": self.returns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSymbol":
        return cls(
            name=str(data["name"]),
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            returns=(
                None if data.get("returns") is None
                else str(data["returns"])
            ),
        )


@dataclass
class ClassSymbol:
    """One class definition plus what checkers need to dispatch on it."""

    name: str
    qualname: str  # "module:Class"
    line: int
    end_line: int
    bases: List[str] = field(default_factory=list)  # resolved refs or raw names
    methods: Dict[str, FunctionSymbol] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    is_protocol: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "line": self.line,
            "end_line": self.end_line,
            "bases": list(self.bases),
            "methods": {
                name: sym.to_dict() for name, sym in self.methods.items()
            },
            "attr_types": dict(self.attr_types),
            "is_protocol": self.is_protocol,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClassSymbol":
        methods_raw = data.get("methods", {})
        assert isinstance(methods_raw, dict)
        return cls(
            name=str(data["name"]),
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            end_line=int(data["end_line"]),  # type: ignore[arg-type]
            bases=[str(b) for b in data.get("bases", [])],  # type: ignore[union-attr]
            methods={
                str(name): FunctionSymbol.from_dict(sym)
                for name, sym in methods_raw.items()
            },
            attr_types={
                str(k): str(v)
                for k, v in data.get("attr_types", {}).items()  # type: ignore[union-attr]
            },
            is_protocol=bool(data.get("is_protocol", False)),
        )


@dataclass
class ModuleSymbols:
    """Everything the linker needs from one module."""

    module: str
    rel_path: str
    classes: Dict[str, ClassSymbol] = field(default_factory=dict)
    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    #: alias → ``"module:Name"`` (from-imports) or ``"module"``
    #: (module imports).
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level annotated globals: name → resolved class ref.
    global_types: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "classes": {
                name: sym.to_dict() for name, sym in self.classes.items()
            },
            "functions": {
                name: sym.to_dict() for name, sym in self.functions.items()
            },
            "imports": dict(self.imports),
            "global_types": dict(self.global_types),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSymbols":
        classes_raw = data.get("classes", {})
        functions_raw = data.get("functions", {})
        assert isinstance(classes_raw, dict)
        assert isinstance(functions_raw, dict)
        return cls(
            module=str(data["module"]),
            rel_path=str(data["rel_path"]),
            classes={
                str(name): ClassSymbol.from_dict(sym)
                for name, sym in classes_raw.items()
            },
            functions={
                str(name): FunctionSymbol.from_dict(sym)
                for name, sym in functions_raw.items()
            },
            imports={
                str(k): str(v)
                for k, v in data.get("imports", {}).items()  # type: ignore[union-attr]
            },
            global_types={
                str(k): str(v)
                for k, v in data.get("global_types", {}).items()  # type: ignore[union-attr]
            },
        )


# ---------------------------------------------------------------------------
# Per-file extraction
# ---------------------------------------------------------------------------


class AnnotationResolver:
    """Resolve annotation expressions to class refs within one module."""

    def __init__(
        self,
        module: str,
        local_classes: Sequence[str],
        imports: Dict[str, str],
    ) -> None:
        self.module = module
        self.local_classes = set(local_classes)
        self.imports = imports

    def resolve(self, node: Optional[ast.expr]) -> Optional[str]:
        """Class ref (``"module:Class"``) for an annotation, or None.

        Unwraps ``Optional[T]``, ``T | None`` and string (forward)
        annotations; containers and unions of distinct types resolve
        to None — the conservative "unknown" answer.
        """
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return None
            return self.resolve(parsed.body)
        if isinstance(node, ast.Name):
            return self.resolve_name(node.id)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                target = self.imports.get(base.id)
                if target is not None and ":" not in target:
                    return f"{target}:{node.attr}"
            return None
        if isinstance(node, ast.Subscript):
            head = node.value
            if isinstance(head, ast.Name) and head.id in (
                "Optional",
                "Final",
                "ClassVar",
            ):
                return self.resolve(node.slice)
            if isinstance(head, ast.Name) and head.id == "Union":
                return self._resolve_union_args(node.slice)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self.resolve(node.left)
            right = self.resolve(node.right)
            if left is not None and right is None:
                return left
            if right is not None and left is None:
                return right
            return left if left == right else None
        return None

    def _resolve_union_args(self, slice_node: ast.expr) -> Optional[str]:
        if not isinstance(slice_node, ast.Tuple):
            return self.resolve(slice_node)
        refs = []
        for element in slice_node.elts:
            if isinstance(element, ast.Constant) and element.value is None:
                continue
            refs.append(self.resolve(element))
        non_null = [r for r in refs if r is not None]
        if len(non_null) == 1 and len(refs) == 1:
            return non_null[0]
        return None

    def resolve_name(self, name: str) -> Optional[str]:
        """Class ref for a bare name in this module's scope."""
        if name in self.local_classes:
            return f"{self.module}:{name}"
        target = self.imports.get(name)
        if target is not None and ":" in target:
            return target
        return None


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: out of scope
            for alias in node.names:
                bound = alias.asname or alias.name
                imports[bound] = f"{node.module}:{alias.name}"
    return imports


def _annotated_params(fn: ast.FunctionDef) -> Dict[str, ast.expr]:
    out: Dict[str, ast.expr] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            out[arg.arg] = arg.annotation
    return out


def _is_protocol_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == "Protocol":
            return True
        if isinstance(base, ast.Attribute) and base.attr == "Protocol":
            return True
        if isinstance(base, ast.Subscript):
            head = base.value
            if isinstance(head, ast.Name) and head.id == "Protocol":
                return True
    return False


def _base_refs(
    node: ast.ClassDef, resolver: AnnotationResolver
) -> List[str]:
    refs: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            resolved = resolver.resolve_name(base.id)
            refs.append(resolved if resolved is not None else base.id)
        elif isinstance(base, ast.Attribute):
            resolved = resolver.resolve(base)
            if resolved is not None:
                refs.append(resolved)
    return refs


def _ctor_class_ref(
    value: ast.expr, resolver: AnnotationResolver
) -> Optional[str]:
    """Class ref when *value* is a direct ``ClassName(...)`` call."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return resolver.resolve_name(value.func.id)
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
        return resolver.resolve(value.func)
    return None


def _class_attr_types(
    node: ast.ClassDef, resolver: AnnotationResolver
) -> Dict[str, str]:
    """Attribute types from class-body annotations and ``__init__``."""
    attr_types: Dict[str, str] = {}
    # Dataclass fields / class-level annotations.
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            ref = resolver.resolve(stmt.annotation)
            if ref is not None:
                attr_types[stmt.target.id] = ref
    # __init__ / __post_init__ assignments.
    for stmt in node.body:
        if not isinstance(stmt, ast.FunctionDef):
            continue
        if stmt.name not in ("__init__", "__post_init__"):
            continue
        params = _annotated_params(stmt)
        for sub in ast.walk(stmt):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, annotation = sub.target, sub.value, sub.annotation
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            ref: Optional[str] = None
            if annotation is not None:
                ref = resolver.resolve(annotation)
            if ref is None and isinstance(value, ast.Name):
                ref = resolver.resolve(params.get(value.id))
            if ref is None and value is not None:
                ref = _ctor_class_ref(value, resolver)
            if ref is not None and attr not in attr_types:
                attr_types[attr] = ref
    return attr_types


def extract_symbols(rel_path: str, tree: ast.Module) -> ModuleSymbols:
    """Per-file symbol extraction (pure, cacheable by content hash)."""
    module = module_name_for(rel_path)
    imports = _collect_imports(tree)
    class_names = [
        n.name for n in tree.body if isinstance(n, ast.ClassDef)
    ]
    resolver = AnnotationResolver(module, class_names, imports)

    classes: Dict[str, ClassSymbol] = {}
    functions: Dict[str, FunctionSymbol] = {}
    global_types: Dict[str, str] = {}

    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            methods: Dict[str, FunctionSymbol] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    methods[stmt.name] = FunctionSymbol(
                        name=stmt.name,
                        qualname=f"{module}:{node.name}.{stmt.name}",
                        line=stmt.lineno,
                        returns=resolver.resolve(stmt.returns),
                    )
            classes[node.name] = ClassSymbol(
                name=node.name,
                qualname=f"{module}:{node.name}",
                line=node.lineno,
                end_line=node.end_lineno or node.lineno,
                bases=_base_refs(node, resolver),
                methods=methods,
                attr_types=_class_attr_types(node, resolver),
                is_protocol=_is_protocol_class(node),
            )
        elif isinstance(node, ast.FunctionDef):
            functions[node.name] = FunctionSymbol(
                name=node.name,
                qualname=f"{module}:{node.name}",
                line=node.lineno,
                returns=resolver.resolve(node.returns),
            )
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            ref = resolver.resolve(node.annotation)
            if ref is not None:
                global_types[node.target.id] = ref

    return ModuleSymbols(
        module=module,
        rel_path=rel_path,
        classes=classes,
        functions=functions,
        imports=imports,
        global_types=global_types,
    )


# ---------------------------------------------------------------------------
# Project linking
# ---------------------------------------------------------------------------


class ProjectGraph:
    """Linked view over every module's symbols.

    Built fresh each run (linking is cheap); the per-file
    :class:`ModuleSymbols` inputs may come from the effects cache.
    """

    def __init__(self, modules: Sequence[ModuleSymbols]) -> None:
        self.modules: Dict[str, ModuleSymbols] = {
            m.module: m for m in modules
        }
        self.classes: Dict[str, ClassSymbol] = {}
        self.class_module: Dict[str, str] = {}
        for mod in modules:
            for sym in mod.classes.values():
                self.classes[sym.qualname] = sym
                self.class_module[sym.qualname] = mod.module
        self._mro_cache: Dict[str, Tuple[str, ...]] = {}
        self._impl_cache: Dict[str, Tuple[str, ...]] = {}

    # -- classes ------------------------------------------------------------

    def mro(self, class_ref: str) -> Tuple[str, ...]:
        """The class plus its known bases, depth-first, deduplicated."""
        cached = self._mro_cache.get(class_ref)
        if cached is not None:
            return cached
        order: List[str] = []
        stack = [class_ref]
        seen = set()
        while stack:
            ref = stack.pop(0)
            if ref in seen or ref not in self.classes:
                continue
            seen.add(ref)
            order.append(ref)
            stack.extend(self.classes[ref].bases)
        result = tuple(order)
        self._mro_cache[class_ref] = result
        return result

    def attr_type(self, class_ref: str, attr: str) -> Optional[str]:
        """Declared/inferred type of ``<class>.<attr>``, through bases."""
        for ref in self.mro(class_ref):
            found = self.classes[ref].attr_types.get(attr)
            if found is not None:
                return found
        return None

    def method_names(self, class_ref: str) -> Tuple[str, ...]:
        names = set()
        for ref in self.mro(class_ref):
            names.update(self.classes[ref].methods)
        return tuple(sorted(names))

    def resolve_method(
        self, class_ref: str, name: str
    ) -> Optional[FunctionSymbol]:
        """Find *name* on the class or its known bases (first wins)."""
        for ref in self.mro(class_ref):
            found = self.classes[ref].methods.get(name)
            if found is not None:
                return found
        return None

    def resolve_function(
        self, module: str, name: str
    ) -> Optional[FunctionSymbol]:
        mod = self.modules.get(module)
        if mod is None:
            return None
        return mod.functions.get(name)

    # -- protocols ----------------------------------------------------------

    def is_protocol(self, class_ref: str) -> bool:
        sym = self.classes.get(class_ref)
        return sym is not None and sym.is_protocol

    def protocols_of(self, class_ref: str) -> Tuple[str, ...]:
        """Protocols *class_ref* structurally implements."""
        cached = self._impl_cache.get(class_ref)
        if cached is not None:
            return cached
        sym = self.classes.get(class_ref)
        matches: List[str] = []
        if sym is not None and not sym.is_protocol:
            own = set(self.method_names(class_ref))
            for proto_ref in sorted(self.classes):
                proto = self.classes[proto_ref]
                if not proto.is_protocol:
                    continue
                wanted = {
                    n for n in proto.methods if not n.startswith("__")
                }
                if not wanted:
                    continue
                needed = max(1, int(len(wanted) * _PROTOCOL_MATCH_RATIO))
                if len(wanted & own) >= needed:
                    matches.append(proto_ref)
        result = tuple(matches)
        self._impl_cache[class_ref] = result
        return result

    def protocol_for_call(self, class_ref: str) -> Optional[str]:
        """The protocol boundary a call on *class_ref* crosses, if any.

        Calls on a protocol-typed receiver, or on a class implementing
        one, are classified against the protocol's method table
        instead of being traversed into an arbitrary implementation.
        """
        if self.is_protocol(class_ref):
            return class_ref
        impls = self.protocols_of(class_ref)
        return impls[0] if impls else None
