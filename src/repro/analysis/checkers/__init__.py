"""Built-in checkers.

Importing this package registers every shipped checker with the
framework registry.  Third-party checkers can call
:func:`repro.analysis.register` themselves.

Per-file checkers run in the parallel file pass; the interprocedural
checkers (fork-safety, stage-effects, cache-invalidation) run in the
project pass over the linked symbol/effect graph.
"""

from repro.analysis.checkers.cacheinvalidation import (
    CacheInvalidationChecker,
)
from repro.analysis.checkers.cachekeys import CacheKeyChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exhaustiveness import ExhaustivenessChecker
from repro.analysis.checkers.forksafety import ForkSafetyChecker
from repro.analysis.checkers.layers import LayerChecker
from repro.analysis.checkers.mutation import FrozenMutationChecker
from repro.analysis.checkers.stageeffects import StageEffectsChecker

__all__ = [
    "CacheInvalidationChecker",
    "CacheKeyChecker",
    "DeterminismChecker",
    "ExhaustivenessChecker",
    "ForkSafetyChecker",
    "FrozenMutationChecker",
    "LayerChecker",
    "StageEffectsChecker",
]
