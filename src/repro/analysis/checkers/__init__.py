"""Built-in checkers.

Importing this package registers every shipped checker with the
framework registry.  Third-party checkers can call
:func:`repro.analysis.register` themselves.
"""

from repro.analysis.checkers.cachekeys import CacheKeyChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exhaustiveness import ExhaustivenessChecker
from repro.analysis.checkers.layers import LayerChecker
from repro.analysis.checkers.mutation import FrozenMutationChecker

__all__ = [
    "CacheKeyChecker",
    "DeterminismChecker",
    "ExhaustivenessChecker",
    "FrozenMutationChecker",
    "LayerChecker",
]
