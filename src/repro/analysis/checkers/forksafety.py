"""Fork-safety: pool jobs must not touch parent-visible state.

The MCTS rollout pool (PR 7) forks workers that inherit the parent's
search state and are only ever allowed to *cost* configurations: a
worker that writes state the parent also relies on, draws from the
parent's RNG stream, or performs DDL makes ``workers=N`` diverge from
``workers=1`` — silently, because the fork isolates the damage until
results are merged.  This rule makes the invariant static: everything
reachable from a pool job (any function submitted to
``pool.submit``) in the ``core``/``engine``/``ports`` layers must be
effect-free in the parent-visible sense.

Exemptions encode the codebase's idioms:

* writes inside ``__init__``/``__post_init__`` (the object is fresh);
* augmented assignments (monitoring counters/accumulators — the same
  convention the cache-key rule uses);
* attributes whose name marks them as cache/memo state (semantically
  transparent by declaration);
* subscript writes through parameters (output buffers).

Separately, any function in those layers that constructs a process
pool must transitively consult the backend's ``parallel_safe``
declaration before forking — the declaration is what vouches for the
backend's internals, so opening a pool without reading it bypasses
the whole contract.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.analysis.checkers._domain import (
    backend_effect_of,
    is_backend_protocol,
    render_chain,
)
from repro.analysis.core import (
    ProjectChecker,
    ProjectContext,
    Violation,
    register,
)
from repro.analysis.effects import EffectIndex, has_cache_hint

#: Layers whose pool entry points are checked (the analysis package
#: runs its own pool with registry state by design).
_CHECKED_LAYERS = ("core", "engine", "ports")


def _layer_of_rel_path(rel_path: str) -> str:
    parts = rel_path.split("/")
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 1 < len(parts) - 1:
            return parts[idx + 1]
    return ""


@register
class ForkSafetyChecker(ProjectChecker):
    name = "fork-safety"
    description = (
        "code reachable from a process-pool job must not write "
        "parent-visible state, draw from the RNG, or mutate the "
        "backend; pool construction must consult parallel_safe"
    )
    rationale = (
        "Forked rollout workers inherit the parent's search state and\n"
        "must only read it: any worker-side write, RNG draw or DDL\n"
        "makes workers=N diverge from workers=1 without any error --\n"
        "the fork isolates the mutation until the merged numbers\n"
        "disagree. Exemptions: writes in __init__ (fresh object),\n"
        "augmented counters, cache/memo-named attributes, and\n"
        "subscript writes through parameters (output buffers)."
    )
    example = (
        "src/repro/core/estimator.py:364: [fork-safety] "
        "'BenefitEstimator._degrade' assigns self.model, reachable "
        "from pool job '_pool_cost_job' (via _pool_cost_job -> "
        "_cost_of -> ... -> _degrade)"
    )

    def check_project(self, ctx: ProjectContext) -> Iterable[Violation]:
        effects = ctx.effects
        if effects is None:
            return []
        violations: List[Violation] = []
        entries = self._entries(effects)
        reported: Set[Tuple[str, str, int]] = set()
        for entry in entries:
            violations.extend(
                self._check_entry(effects, entry, reported)
            )
        violations.extend(self._check_pool_gating(effects))
        return violations

    # -- entry discovery ----------------------------------------------------

    def _entries(self, effects: EffectIndex) -> List[str]:
        seen: Set[str] = set()
        entries: List[str] = []
        for target, submitter in effects.pool_entry_points():
            if _layer_of_rel_path(submitter.rel_path) not in _CHECKED_LAYERS:
                continue
            if target not in seen:
                seen.add(target)
                entries.append(target)
        return entries

    # -- reachability check -------------------------------------------------

    def _check_entry(
        self,
        effects: EffectIndex,
        entry: str,
        reported: Set[Tuple[str, str, int]],
    ) -> Iterable[Violation]:
        entry_name = entry.rsplit(":", 1)[-1]
        reached, protocol_calls = effects.walk_from(entry)
        for node in reached:
            fn = node.effects
            if fn.is_init:
                continue
            via = render_chain(node.chain)
            for write in fn.self_writes:
                if write.kind == "aug":
                    continue
                if has_cache_hint(write.attr):
                    continue
                key = (fn.rel_path, f"w{write.attr}", write.line)
                if key in reported:
                    continue
                reported.add(key)
                verb = {
                    "assign": "assigns",
                    "del": "deletes",
                    "subscript": "writes through",
                    "deep": "writes through",
                    "call": "mutates",
                }.get(write.kind, "writes")
                yield Violation(
                    rule=self.name,
                    path=fn.rel_path,
                    line=write.line,
                    message=(
                        f"'{fn.qualname.rsplit(':', 1)[-1]}' {verb} "
                        f"self.{write.attr}, reachable from pool job "
                        f"'{entry_name}' (via {via})"
                    ),
                )
            for typed in fn.typed_writes:
                if typed.kind == "aug":
                    continue
                if has_cache_hint(typed.attr):
                    continue
                resolved = effects.resolve_type(typed.cls)
                receiver = (
                    resolved.rsplit(":", 1)[-1]
                    if resolved is not None
                    else "a typed receiver"
                )
                key = (fn.rel_path, f"t{typed.attr}", typed.line)
                if key in reported:
                    continue
                reported.add(key)
                yield Violation(
                    rule=self.name,
                    path=fn.rel_path,
                    line=typed.line,
                    message=(
                        f"'{fn.qualname.rsplit(':', 1)[-1]}' writes "
                        f"{receiver}.{typed.attr}, reachable from "
                        f"pool job '{entry_name}' (via {via})"
                    ),
                )
            for global_name, line in fn.global_writes:
                key = (fn.rel_path, f"g{global_name}", line)
                if key in reported:
                    continue
                reported.add(key)
                yield Violation(
                    rule=self.name,
                    path=fn.rel_path,
                    line=line,
                    message=(
                        f"'{fn.qualname.rsplit(':', 1)[-1]}' writes "
                        f"module global '{global_name}', reachable "
                        f"from pool job '{entry_name}' (via {via})"
                    ),
                )
            for line in fn.rng_draws:
                key = (fn.rel_path, "rng", line)
                if key in reported:
                    continue
                reported.add(key)
                yield Violation(
                    rule=self.name,
                    path=fn.rel_path,
                    line=line,
                    message=(
                        f"'{fn.qualname.rsplit(':', 1)[-1]}' draws "
                        f"from the rng, reachable from pool job "
                        f"'{entry_name}' (via {via}) -- workers must "
                        f"never consume the parent's stream"
                    ),
                )
        for call, chain in protocol_calls:
            if not is_backend_protocol(call.protocol):
                continue
            effect = backend_effect_of(call.method)
            if effect is None:
                continue
            caller = effects.functions.get(call.caller)
            rel_path = caller.rel_path if caller is not None else ""
            key = (rel_path, f"b{call.method}", call.line)
            if key in reported:
                continue
            reported.add(key)
            yield Violation(
                rule=self.name,
                path=rel_path,
                line=call.line,
                message=(
                    f"'{call.caller.rsplit(':', 1)[-1]}' calls "
                    f"backend.{call.method} ({effect}), reachable "
                    f"from pool job '{entry_name}' "
                    f"(via {render_chain(chain)})"
                ),
            )

    # -- parallel_safe gating -----------------------------------------------

    def _check_pool_gating(
        self, effects: EffectIndex
    ) -> Iterable[Violation]:
        for fn in effects.iter_functions():
            if not fn.constructs_pool:
                continue
            if _layer_of_rel_path(fn.rel_path) not in _CHECKED_LAYERS:
                continue
            reached, _calls = effects.walk_from(fn.qualname)
            if any(r.effects.reads_parallel_safe for r in reached):
                continue
            yield Violation(
                rule=self.name,
                path=fn.rel_path,
                line=fn.constructs_pool[0],
                message=(
                    f"'{fn.qualname.rsplit(':', 1)[-1]}' opens a "
                    f"process pool without consulting the backend's "
                    f"parallel_safe declaration"
                ),
            )
