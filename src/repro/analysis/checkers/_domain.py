"""Domain policy shared by the interprocedural checkers.

The graph/effects layers are mechanism; this module is policy: which
protocol is the backend boundary, how its methods classify into
effect kinds, and which class is the template store.  Checkers match
classes by *name* (the suffix after ``:``) so test fixtures can
define their own ``TuningBackend`` protocol or ``TemplateStore``
class in a throwaway package and exercise the same rules.
"""

from __future__ import annotations

import io
import tokenize
from typing import List, Optional, Tuple

#: Class name of the backend protocol (the analysis boundary).
BACKEND_PROTOCOL_NAME = "TuningBackend"

#: Class name of the template store (store-write effect receiver).
STORE_CLASS_NAME = "TemplateStore"

#: Backend protocol methods by effect kind.  Anything not listed is
#: read-only (what-if costing, plans, stats, catalog probes).
DDL_CREATE_METHODS = frozenset({"create_index", "create_table"})
DDL_DROP_METHODS = frozenset({"drop_index", "drop_table"})
BACKEND_EXEC_METHODS = frozenset({"execute", "load_rows", "analyze"})
USAGE_RESET_METHODS = frozenset({"reset_index_usage"})

BACKEND_MUTATING_METHODS = frozenset(
    DDL_CREATE_METHODS
    | DDL_DROP_METHODS
    | BACKEND_EXEC_METHODS
    | USAGE_RESET_METHODS
)

#: The stage-effect contract vocabulary (``# effect: allows[...]``).
EFFECT_VOCABULARY = (
    "ddl-create",
    "ddl-drop",
    "backend-exec",
    "usage-reset",
    "cache-invalidate",
    "store-write",
    "rng",
)


def class_name_of(ref: str) -> str:
    """``"repro.core.templates:TemplateStore"`` → ``"TemplateStore"``."""
    return ref.rsplit(":", 1)[-1]


def is_backend_protocol(ref: str) -> bool:
    return class_name_of(ref) == BACKEND_PROTOCOL_NAME


def is_store_class(ref: str) -> bool:
    return class_name_of(ref) == STORE_CLASS_NAME


def backend_effect_of(method: str) -> Optional[str]:
    """Effect-vocabulary kind of a backend protocol call, if mutating."""
    if method in DDL_CREATE_METHODS:
        return "ddl-create"
    if method in DDL_DROP_METHODS:
        return "ddl-drop"
    if method in BACKEND_EXEC_METHODS:
        return "backend-exec"
    if method in USAGE_RESET_METHODS:
        return "usage-reset"
    return None


def iter_comments(source: str) -> List[Tuple[int, str]]:
    """(lineno, text) for every real ``#`` comment in *source*.

    Tokenized, not regex-scanned, so string literals that merely
    mention an annotation (docs, checker messages) never register as
    one.  Falls back to an empty list if the file fails to tokenize —
    the parse checker owns reporting that.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(
            io.StringIO(source).readline
        ):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return comments


def render_chain(chain: Tuple[str, ...], limit: int = 4) -> str:
    """Human-readable call chain, elided in the middle when long."""
    names = [q.rsplit(":", 1)[-1] for q in chain]
    if len(names) > limit:
        names = names[:2] + ["..."] + names[-1:]
    return " -> ".join(names)
