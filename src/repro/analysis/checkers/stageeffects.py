"""Stage-effect contracts: stages declare what they may do, verified.

The tuning pipeline's stages have a strict effect discipline —
Observe may drop spilled indexes and flush caches, Diagnose and
Candidates are pure, Search may consume the RNG, and **only Apply**
may create indexes.  Until now that discipline lived in review
comments.  This rule makes it declarative and machine-checked: a
stage class carries a contract comment in its body::

    class ObserveStage:
        # effect: allows[ddl-drop, cache-invalidate]
        def run(self, ctx): ...

and the checker walks everything transitively reachable from the
stage's ``run`` method, classifies backend protocol calls, cache
flushes, RNG draws and template-store writes against the
:data:`~repro.analysis.checkers._domain.EFFECT_VOCABULARY`, and flags
any effect the contract does not allow — at the offending call site,
with the call chain that reaches it.  A ``*Stage`` class with a
``run`` method in the core layer *must* carry a contract; an unknown
vocabulary token in a contract is itself a violation.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.checkers._domain import (
    EFFECT_VOCABULARY,
    backend_effect_of,
    is_backend_protocol,
    is_store_class,
    iter_comments,
    render_chain,
)
from repro.analysis.core import (
    ModuleInfo,
    ProjectChecker,
    ProjectContext,
    Violation,
    register,
)
from repro.analysis.effects import EffectIndex, has_cache_hint
from repro.analysis.graph import module_name_for

_CONTRACT_RE = re.compile(r"#\s*effect:\s*allows\[([^\]]*)\]")


def _contracts_in(
    module: ModuleInfo,
) -> Dict[str, Tuple[Set[str], int, Tuple[str, ...]]]:
    """Map class name → (allowed effects, contract line, raw tokens).

    A contract comment binds to the innermost class whose body spans
    its line, so nested helper classes can carry their own contracts.
    """
    classes: List[ast.ClassDef] = [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
    ]
    contracts: Dict[str, Tuple[Set[str], int, Tuple[str, ...]]] = {}
    for lineno, text in iter_comments(module.source):
        match = _CONTRACT_RE.search(text)
        if match is None:
            continue
        owner: Optional[ast.ClassDef] = None
        for cls in classes:
            end = cls.end_lineno or cls.lineno
            if cls.lineno <= lineno <= end:
                if owner is None or cls.lineno > owner.lineno:
                    owner = cls
        if owner is None:
            continue
        tokens = tuple(
            part.strip()
            for part in match.group(1).split(",")
            if part.strip()
        )
        contracts[owner.name] = (set(tokens), lineno, tokens)
    return contracts


def _stage_classes(module: ModuleInfo) -> List[ast.ClassDef]:
    """Top-level ``*Stage`` classes with a ``run`` method."""
    stages: List[ast.ClassDef] = []
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Stage"):
            continue
        has_run = any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == "run"
            for stmt in node.body
        )
        if has_run:
            stages.append(node)
    return stages


@register
class StageEffectsChecker(ProjectChecker):
    name = "stage-effects"
    description = (
        "pipeline stages must declare '# effect: allows[...]' "
        "contracts and stay within them transitively; only Apply may "
        "perform DDL-create"
    )
    rationale = (
        "The pipeline's effect discipline (Observe drops/flushes,\n"
        "Diagnose and Candidates are pure, Search draws the RNG, only\n"
        "Apply creates indexes) used to live in review comments. The\n"
        "contract comment makes it declarative; this rule walks every\n"
        "function reachable from the stage's run() and flags any\n"
        "backend call, cache flush, RNG draw or store write the\n"
        "contract does not allow -- so a helper three calls deep\n"
        "cannot smuggle DDL into an observation pass."
    )
    example = (
        "src/repro/core/pipeline.py:88: [stage-effects] ObserveStage "
        "run() reaches backend.create_index (ddl-create), not in its "
        "contract allows[ddl-drop, cache-invalidate] (via run -> "
        "_refresh)"
    )

    def check_project(self, ctx: ProjectContext) -> Iterable[Violation]:
        effects = ctx.effects
        if effects is None:
            return []
        violations: List[Violation] = []
        for rel_path in sorted(ctx.modules):
            module = ctx.modules[rel_path]
            contracts = _contracts_in(module)
            stages = _stage_classes(module)
            mod_name = module_name_for(rel_path)
            contracted: Set[str] = set()
            for stage in stages:
                if module.layer == "core" and stage.name not in contracts:
                    violations.append(
                        Violation(
                            rule=self.name,
                            path=rel_path,
                            line=stage.lineno,
                            message=(
                                f"stage class '{stage.name}' has no "
                                f"effect contract; declare "
                                f"'# effect: allows[...]' in the "
                                f"class body (allowed vocabulary: "
                                f"{', '.join(EFFECT_VOCABULARY)})"
                            ),
                        )
                    )
            for class_name in sorted(contracts):
                allows, contract_line, tokens = contracts[class_name]
                contracted.add(class_name)
                unknown = [
                    t for t in tokens if t not in EFFECT_VOCABULARY
                ]
                if unknown:
                    violations.append(
                        Violation(
                            rule=self.name,
                            path=rel_path,
                            line=contract_line,
                            message=(
                                f"unknown effect token(s) "
                                f"{', '.join(unknown)} in contract "
                                f"of '{class_name}' (vocabulary: "
                                f"{', '.join(EFFECT_VOCABULARY)})"
                            ),
                        )
                    )
                    continue
                entry = f"{mod_name}:{class_name}.run"
                violations.extend(
                    self._verify(
                        effects, class_name, entry, allows
                    )
                )
        return violations

    # -- contract verification ----------------------------------------------

    def _verify(
        self,
        effects: EffectIndex,
        class_name: str,
        entry: str,
        allows: Set[str],
    ) -> Iterable[Violation]:
        reached, protocol_calls = effects.walk_from(entry)
        allow_text = f"allows[{', '.join(sorted(allows))}]"

        def forbid(
            effect: str,
            path: str,
            line: int,
            what: str,
            chain: Tuple[str, ...],
        ) -> Violation:
            return Violation(
                rule=self.name,
                path=path,
                line=line,
                message=(
                    f"{class_name} run() reaches {what} ({effect}), "
                    f"not in its contract {allow_text} "
                    f"(via {render_chain(chain)})"
                ),
            )

        for call, chain in protocol_calls:
            if not is_backend_protocol(call.protocol):
                continue
            effect = backend_effect_of(call.method)
            if effect is None or effect in allows:
                continue
            caller = effects.functions.get(call.caller)
            yield forbid(
                effect,
                caller.rel_path if caller is not None else "",
                call.line,
                f"backend.{call.method}",
                chain,
            )
        for node in reached:
            fn = node.effects
            if "cache-invalidate" not in allows:
                for method, line in fn.invalidate_calls:
                    yield forbid(
                        "cache-invalidate",
                        fn.rel_path,
                        line,
                        f"{method}()",
                        node.chain,
                    )
            if "rng" not in allows:
                for line in fn.rng_draws:
                    yield forbid(
                        "rng", fn.rel_path, line, "an rng draw",
                        node.chain,
                    )
            if "store-write" in allows:
                continue
            if (
                fn.cls is not None
                and is_store_class(fn.cls)
                and not fn.is_init
            ):
                for write in fn.self_writes:
                    if write.kind == "aug" or has_cache_hint(write.attr):
                        continue
                    yield forbid(
                        "store-write",
                        fn.rel_path,
                        write.line,
                        f"a write to TemplateStore.{write.attr}",
                        node.chain,
                    )
            for typed in fn.typed_writes:
                resolved = effects.resolve_type(typed.cls)
                if resolved is None or not is_store_class(resolved):
                    continue
                if typed.kind == "aug" or has_cache_hint(typed.attr):
                    continue
                yield forbid(
                    "store-write",
                    fn.rel_path,
                    typed.line,
                    f"a write to TemplateStore.{typed.attr}",
                    node.chain,
                )
