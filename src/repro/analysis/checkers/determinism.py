"""Determinism checker.

Three families of hazards, reported under distinct rule ids so each
can be suppressed independently:

* ``unseeded-random`` — module-level ``random.*`` / ``numpy.random.*``
  calls.  Reproducible tuning requires every draw to come from an
  explicitly seeded ``random.Random`` / ``numpy.random.default_rng``
  instance that is injected into the component (as MCTS does with its
  ``rng`` parameter).
* ``unordered-iteration`` — in ``core/`` and ``engine/`` only:
  iterating a ``set``/``frozenset`` into an ordered sink (a ``for``
  loop, a list/tuple, a non-set comprehension).  Set iteration order
  depends on ``PYTHONHASHSEED``, which silently breaks bitwise
  identical delta costing and rollout tie-breaks.  Order-free sinks
  (``sorted``, ``set``, ``len``, ``any``, ``all`` …) are exempt.
* ``wall-clock`` — importing ``time`` or ``datetime`` anywhere except
  ``bench/`` and ``repro/engine/metrics.py`` (home of the sanctioned
  :class:`~repro.engine.metrics.Stopwatch` helper).  Cost and
  estimator paths must be pure functions of their inputs.
* ``unordered-merge`` — in the ordered layers: consuming futures with
  ``concurrent.futures.as_completed`` (or ``wait`` on
  ``FIRST_COMPLETED``).  Arrival order is worker scheduling, not
  program order — merging results that way leaks OS timing into
  best-config tie-breaks.  Keep the futures in a list and merge in
  submission order (as ``core/mcts`` does for parallel rollouts).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation, register

#: Layers where set-iteration order matters (ordered outputs, costing
#: tie-breaks).  Other layers either are inherently order-free or are
#: covered by their own review (bench output is sorted explicitly).
_ORDERED_LAYERS = {"core", "engine", "ports", "serve"}

#: Call wrappers whose result does not depend on iteration order.
_ORDER_FREE_WRAPPERS = {"set", "frozenset", "sorted", "any", "all", "len"}

#: ``min``/``max`` are order-free over a total order but not when a
#: ``key=`` can produce ties resolved by encounter order.
_ORDER_FREE_UNLESS_KEYED = {"min", "max"}

#: ``random`` module attributes that construct independent generators
#: (fine) rather than drawing from the hidden global one (not fine).
_RANDOM_CONSTRUCTORS = {"Random", "SystemRandom", "getstate", "setstate"}

#: Files allowed to touch the wall clock outside ``bench/``:
#: ``metrics.py`` hosts the sanctioned Stopwatch; ``faults.py`` hosts
#: VirtualClock, whose default mode never reads the wall clock — the
#: ``time`` import only backs the opt-in ``real=True`` bench mode.
_CLOCK_WHITELIST_SUFFIXES = (
    "repro/engine/metrics.py",
    "repro/engine/faults.py",
)


@register
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "unseeded RNG calls, set iteration feeding ordered sinks in "
        "core/engine, and wall-clock access outside bench/"
    )
    rationale = (
        "Tuning rounds must replay bit-identically: an unseeded rng,\n"
        "wall-clock timing, or set-iteration order leaking into an\n"
        "ordered sink makes two runs of the same workload pick\n"
        "different index configurations, and every downstream\n"
        "comparison (A/B of search strategies, regression benches)\n"
        "stops meaning anything."
    )
    example = (
        "src/repro/core/mcts.py:210: [determinism] random.Random() "
        "without a seed; thread the run's seed through instead"
    )

    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        violations: List[Violation] = []
        aliases = _collect_aliases(module.tree)
        violations.extend(_check_unseeded_random(module, aliases))
        violations.extend(_check_wall_clock(module))
        if module.layer in _ORDERED_LAYERS:
            violations.extend(_check_unordered_iteration(module))
            violations.extend(_check_unordered_merge(module))
        return violations


# ---------------------------------------------------------------------------
# Alias tracking for random / numpy.random
# ---------------------------------------------------------------------------


class _Aliases:
    def __init__(self) -> None:
        self.random_modules: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random_modules: Set[str] = set()
        #: local name -> original function name from ``random``/
        #: ``numpy.random`` (e.g. ``from random import shuffle``).
        self.direct_functions: Dict[str, str] = {}


def _collect_aliases(tree: ast.Module) -> _Aliases:
    aliases = _Aliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname or name.name.split(".")[0]
                if name.name == "random":
                    aliases.random_modules.add(bound)
                elif name.name == "numpy":
                    aliases.numpy_modules.add(bound)
                elif name.name == "numpy.random":
                    if name.asname:
                        aliases.numpy_random_modules.add(name.asname)
                    else:
                        aliases.numpy_modules.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for name in node.names:
                    if name.name not in _RANDOM_CONSTRUCTORS:
                        bound = name.asname or name.name
                        aliases.direct_functions[bound] = name.name
            elif node.module == "numpy" and any(
                n.name == "random" for n in node.names
            ):
                for name in node.names:
                    if name.name == "random":
                        aliases.numpy_random_modules.add(
                            name.asname or name.name
                        )
            elif node.module == "numpy.random":
                for name in node.names:
                    bound = name.asname or name.name
                    aliases.direct_functions[bound] = name.name
    return aliases


def _is_numpy_random_ref(node: ast.expr, aliases: _Aliases) -> bool:
    if isinstance(node, ast.Name):
        return node.id in aliases.numpy_random_modules
    if isinstance(node, ast.Attribute) and node.attr == "random":
        return (
            isinstance(node.value, ast.Name)
            and node.value.id in aliases.numpy_modules
        )
    return False


def _check_unseeded_random(
    module: ModuleInfo, aliases: _Aliases
) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in aliases.random_modules
            ):
                if func.attr not in _RANDOM_CONSTRUCTORS:
                    yield _rng_violation(
                        module, node, f"random.{func.attr}()"
                    )
            elif _is_numpy_random_ref(value, aliases):
                if func.attr in ("default_rng", "Generator", "RandomState"):
                    if not node.args and not node.keywords:
                        yield _rng_violation(
                            module,
                            node,
                            f"numpy.random.{func.attr}() without a seed",
                        )
                else:
                    yield _rng_violation(
                        module, node, f"numpy.random.{func.attr}()"
                    )
        elif isinstance(func, ast.Name):
            original = aliases.direct_functions.get(func.id)
            if original is not None:
                if original in ("default_rng", "Generator", "RandomState"):
                    if not node.args and not node.keywords:
                        yield _rng_violation(
                            module,
                            node,
                            f"{original}() without a seed",
                        )
                else:
                    yield _rng_violation(module, node, f"{original}()")


def _rng_violation(
    module: ModuleInfo, node: ast.AST, what: str
) -> Violation:
    return Violation(
        rule="unseeded-random",
        path=module.rel_path,
        line=getattr(node, "lineno", 1),
        message=(
            f"{what} draws from global RNG state; inject a seeded "
            "random.Random / numpy.random.default_rng(seed) instead"
        ),
    )


# ---------------------------------------------------------------------------
# Wall clock
# ---------------------------------------------------------------------------


def _check_wall_clock(module: ModuleInfo) -> Iterator[Violation]:
    if module.layer in (None, "bench"):
        return
    if module.rel_path.endswith(_CLOCK_WHITELIST_SUFFIXES):
        return
    for node in ast.walk(module.tree):
        banned: Optional[str] = None
        if isinstance(node, ast.Import):
            for name in node.names:
                root = name.name.split(".")[0]
                if root in ("time", "datetime"):
                    banned = root
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in ("time", "datetime"):
                banned = root
        if banned is not None:
            yield Violation(
                rule="wall-clock",
                path=module.rel_path,
                line=node.lineno,
                message=(
                    f"'{banned}' imported outside bench/; use "
                    "repro.engine.metrics.Stopwatch (the sanctioned "
                    "clock) or move the timing into bench/"
                ),
            )


# ---------------------------------------------------------------------------
# Futures merged in arrival order
# ---------------------------------------------------------------------------


def _check_unordered_merge(module: ModuleInfo) -> Iterator[Violation]:
    """Flag ``as_completed`` / ``FIRST_COMPLETED`` merges.

    Both yield results in *arrival* order, which is worker scheduling
    — nondeterministic across runs even with every seed pinned.  A
    deterministic merge keeps the futures in submission order and
    resolves them in that order; anything else needs an explicit
    re-ordering step and a suppression explaining it.
    """
    completed_aliases: Set[str] = {"as_completed"}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if (node.module or "").startswith("concurrent"):
                for name in node.names:
                    if name.name == "as_completed":
                        completed_aliases.add(name.asname or name.name)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        called: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in completed_aliases:
            called = "as_completed()"
        elif isinstance(func, ast.Attribute):
            if func.attr == "as_completed":
                called = "as_completed()"
            elif func.attr == "wait" and any(
                kw.arg == "return_when"
                and isinstance(kw.value, (ast.Attribute, ast.Name))
                and (
                    getattr(kw.value, "attr", None) == "FIRST_COMPLETED"
                    or getattr(kw.value, "id", None) == "FIRST_COMPLETED"
                )
                for kw in node.keywords
            ):
                called = "wait(..., return_when=FIRST_COMPLETED)"
        if called is not None:
            yield Violation(
                rule="unordered-merge",
                path=module.rel_path,
                line=node.lineno,
                message=(
                    f"{called} merges futures in arrival order — "
                    "worker scheduling leaks into results; keep "
                    "futures in a list and merge in submission order "
                    "(see core/mcts parallel rollouts)"
                ),
            )


# ---------------------------------------------------------------------------
# Set iteration feeding ordered sinks
# ---------------------------------------------------------------------------


def _check_unordered_iteration(module: ModuleInfo) -> Iterator[Violation]:
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(module.tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent

    scopes: List[Tuple[ast.AST, List[ast.stmt]]] = [
        (module.tree, module.tree.body)
    ]
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node, node.body))

    for scope, body in scopes:
        set_names = _infer_set_names(scope, body)
        for stmt in body:
            for node in _walk_scope(stmt):
                yield from _flag_ordered_sinks(
                    module, node, set_names, parents
                )


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk *root* without descending into nested function scopes."""
    yield root
    for child in ast.iter_child_nodes(root):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield from _walk_scope(child)


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    names = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
             "MutableSet"}
    if isinstance(target, ast.Name):
        return target.id in names
    if isinstance(target, ast.Attribute):
        return target.attr in names
    return False


def _infer_set_names(scope: ast.AST, body: List[ast.stmt]) -> Set[str]:
    """Names that are definitely set-typed inside *scope*.

    Syntactic and conservative: parameters with set annotations, plus
    locals whose every assignment is a set-typed expression.
    """
    set_names: Set[str] = set()
    assigned: Dict[str, List[ast.expr]] = {}
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs
        ]:
            if _annotation_is_set(arg.annotation):
                set_names.add(arg.arg)
    for stmt in body:
        for node in _walk_scope(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    if _annotation_is_set(node.annotation):
                        set_names.add(node.target.id)
                    elif node.value is not None:
                        assigned.setdefault(node.target.id, []).append(
                            node.value
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                # Loop targets take element values, never whole sets;
                # but record the rebinding so the name is not inferred
                # as a set from some other assignment.
                if isinstance(node.target, ast.Name):
                    assigned.setdefault(node.target.id, []).append(node.iter)
    # Fixed point: a set-valued expression may reference another local
    # that itself is only known to be a set after the first pass.
    changed = True
    while changed:
        changed = False
        for name, values in assigned.items():
            if name in set_names:
                continue
            if values and all(
                _is_set_expr(value, set_names) for value in values
            ):
                set_names.add(name)
                changed = True
    # A loop target assignment means the name holds elements, not
    # sets — drop anything polluted that way.
    return set_names


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _consumer_is_order_free(
    node: ast.AST, parents: Dict[int, ast.AST]
) -> bool:
    parent = parents.get(id(node))
    if not isinstance(parent, ast.Call):
        return False
    if node not in parent.args:
        return False
    func = parent.func
    if isinstance(func, ast.Name):
        if func.id in _ORDER_FREE_WRAPPERS:
            return True
        if func.id in _ORDER_FREE_UNLESS_KEYED:
            return not any(kw.arg == "key" for kw in parent.keywords)
    return False


def _flag_ordered_sinks(
    module: ModuleInfo,
    node: ast.AST,
    set_names: Set[str],
    parents: Dict[int, ast.AST],
) -> Iterator[Violation]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        if _is_set_expr(node.iter, set_names):
            yield _iteration_violation(module, node.iter, "a for loop")
    elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
        if _consumer_is_order_free(node, parents):
            return
        for generator in node.generators:
            if _is_set_expr(generator.iter, set_names):
                kind = (
                    "a dict comprehension"
                    if isinstance(node, ast.DictComp)
                    else "an ordered comprehension"
                )
                yield _iteration_violation(module, generator.iter, kind)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expr(node.args[0], set_names)
        ):
            yield _iteration_violation(
                module, node, f"{func.id}() materialization"
            )


def _iteration_violation(
    module: ModuleInfo, node: ast.AST, sink: str
) -> Violation:
    return Violation(
        rule="unordered-iteration",
        path=module.rel_path,
        line=getattr(node, "lineno", 1),
        message=(
            f"set iteration order feeds {sink}; order depends on "
            "PYTHONHASHSEED — wrap the set in sorted(...) or use an "
            "order-free reduction"
        ),
    )
