"""Cache-invalidation completeness: every keyed write must invalidate.

Classes that derive cache keys from internal fields register those
fields with a comment in the class body::

    class TemplateStore:
        # cache-keys: fields[_shards, _shard_of] invalidator[_touch]

The rule then proves, per method, that **every** write to a
registered field is followed by a call to the invalidator on **all**
paths out of the method — a write in one branch with the ``_touch``
in the other is exactly the bug class this exists for: the version
counter goes stale and every downstream cache serves data for a
store that no longer exists.

The path analysis is a backward all-paths scan over the method body:
an ``if`` guarantees invalidation only if both branches do; a loop
guarantees nothing (it may run zero times); ``try`` guarantees if
the ``finally`` does, or if the body and every handler do;
``return``/``raise`` end the path immediately.  Calls to same-class
helpers that themselves invalidate on every path (computed to a
fixed point, so helpers may chain) count as invalidator calls — and
a helper that writes registered fields without invalidating is
flagged at its own write site, not at every caller.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.checkers._domain import iter_comments
from repro.analysis.core import (
    ModuleInfo,
    ProjectChecker,
    ProjectContext,
    Violation,
    register,
)

_KEYS_RE = re.compile(
    r"#\s*cache-keys:\s*fields\[([^\]]*)\]\s*invalidator\[([^\]]*)\]"
)

#: In-place mutators: calling one on ``self.<field>`` writes the field.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "add", "discard", "sort",
        "reverse", "move_to_end", "appendleft", "popleft",
    }
)

_EXEMPT_METHODS = ("__init__", "__post_init__")


@dataclass
class _Registration:
    fields: Tuple[str, ...]
    invalidator: str
    line: int


def _registrations_in(
    module: ModuleInfo,
) -> Dict[str, Tuple[ast.ClassDef, _Registration]]:
    """Map class name → (class node, cache-keys registration)."""
    classes = [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
    ]
    found: Dict[str, Tuple[ast.ClassDef, _Registration]] = {}
    for lineno, text in iter_comments(module.source):
        match = _KEYS_RE.search(text)
        if match is None:
            continue
        owner: Optional[ast.ClassDef] = None
        for cls in classes:
            end = cls.end_lineno or cls.lineno
            if cls.lineno <= lineno <= end:
                if owner is None or cls.lineno > owner.lineno:
                    owner = cls
        if owner is None:
            continue
        fields = tuple(
            part.strip()
            for part in match.group(1).split(",")
            if part.strip()
        )
        invalidator = match.group(2).strip()
        found[owner.name] = (
            owner,
            _Registration(fields, invalidator, lineno),
        )
    return found


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` → attr name.

    Subscripts and method-call chains are transparent, so
    ``self._shards.setdefault(k, {})[fp] = t`` is a ``_shards``
    write: the assignment lands in a structure reached through the
    field, which is exactly what the cache key hashes.
    """
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            node = node.func.value
        else:
            break
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_fields(
    stmt: ast.stmt, fields: Set[str]
) -> List[Tuple[str, int]]:
    """Registered fields written by *stmt* (non-call forms)."""
    hits: List[Tuple[str, int]] = []

    def visit_target(target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                visit_target(elt)
            return
        if isinstance(target, ast.Starred):
            visit_target(target.value)
            return
        attr = _self_attr(target)
        if attr is None and isinstance(target, ast.Attribute):
            # Deep write: self.<field>.x = ... mutates the field object.
            attr = _self_attr(target.value)
        if attr in fields:
            hits.append((attr, target.lineno))

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            visit_target(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(stmt, ast.AnnAssign) and stmt.value is None):
            visit_target(stmt.target)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            visit_target(target)
    return hits


def _mutator_write(expr: ast.expr, fields: Set[str]) -> Optional[str]:
    """``self.<field>.pop(...)``-style call → field name, else None."""
    if not (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _MUTATOR_METHODS
    ):
        return None
    attr = _self_attr(expr.func.value)
    return attr if attr in fields else None


def _self_method_call(expr: ast.expr) -> Optional[str]:
    """``self.<name>(...)`` → name, else None."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and isinstance(expr.func.value, ast.Name)
        and expr.func.value.id == "self"
    ):
        return expr.func.attr
    return None


class _MethodScanner:
    """Backward all-paths scan of one method body.

    ``scan(stmts, cont)`` returns whether every path entering *stmts*
    is guaranteed to hit an invalidating call before the method
    exits, given that the continuation after the block guarantees
    *cont*.  Writes to registered fields seen while the current
    guarantee is False are collected as violations.
    """

    def __init__(
        self,
        fields: Set[str],
        invalidating: Set[str],
        collect: bool,
    ) -> None:
        self.fields = fields
        self.invalidating = invalidating
        self.collect = collect
        self.unguarded: List[Tuple[str, int]] = []

    def scan(self, stmts: Sequence[ast.stmt], cont: bool) -> bool:
        guarantee = cont
        for stmt in reversed(stmts):
            guarantee = self._visit(stmt, guarantee)
        return guarantee

    def _visit(self, stmt: ast.stmt, after: bool) -> bool:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            # The path leaves immediately; nothing after this point
            # in the block runs, so prior writes see no guarantee.
            return False
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return after
        if isinstance(stmt, ast.Expr):
            call_name = _self_method_call(stmt.value)
            if call_name is not None and call_name in self.invalidating:
                return True
            written = _mutator_write(stmt.value, self.fields)
            if written is not None:
                self._record(written, stmt.lineno, after)
            return after
        if isinstance(
            stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
        ):
            for attr, line in _written_fields(stmt, self.fields):
                self._record(attr, line, after)
            # A walrus/call in the value could invalidate; we stay
            # conservative and do not look inside expressions.
            return after
        if isinstance(stmt, ast.If):
            body = self.scan(stmt.body, after)
            orelse = self.scan(stmt.orelse, after)
            return body and orelse
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # The body may run zero times, so the loop itself adds no
            # guarantee; writes inside it are covered by whatever
            # follows the loop (break/continue both funnel there).
            self.scan(stmt.body, after)
            self.scan(stmt.orelse, after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.scan(stmt.body, after)
        if isinstance(stmt, ast.Try):
            tail = self.scan(stmt.finalbody, after) if stmt.finalbody else after
            else_g = self.scan(stmt.orelse, tail)
            body = self.scan(stmt.body, else_g if stmt.orelse else tail)
            handlers = [
                self.scan(handler.body, tail)
                for handler in stmt.handlers
            ]
            if stmt.handlers:
                return body and all(handlers)
            return body
        if isinstance(stmt, ast.Match):
            cases = [
                self.scan(case.body, after) for case in stmt.cases
            ]
            has_wildcard = any(
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                for case in stmt.cases
            )
            if cases and has_wildcard:
                return all(cases)
            return after
        return after

    def _record(self, attr: str, line: int, guaranteed: bool) -> None:
        if self.collect and not guaranteed:
            self.unguarded.append((attr, line))


def _always_invalidates(
    methods: Dict[str, ast.FunctionDef],
    fields: Set[str],
    invalidator: str,
) -> Set[str]:
    """Fixed point: methods guaranteed to invalidate on every path."""
    clean: Set[str] = {invalidator}
    changed = True
    while changed:
        changed = False
        for name, fn in methods.items():
            if name in clean:
                continue
            scanner = _MethodScanner(fields, clean, collect=False)
            if scanner.scan(fn.body, False):
                clean.add(name)
                changed = True
    return clean


@register
class CacheInvalidationChecker(ProjectChecker):
    name = "cache-invalidation"
    description = (
        "every write to a field registered with '# cache-keys: "
        "fields[...] invalidator[...]' must reach the invalidator on "
        "all paths out of the method"
    )
    rationale = (
        "Cache keys are derived from internal fields (shard maps,\n"
        "table indexes, catalog entries); a write that skips the\n"
        "version bump on even one path leaves every downstream cache\n"
        "serving results for state that no longer exists -- and the\n"
        "staleness only shows up as silently wrong costs. The\n"
        "backward all-paths scan catches the classic shape: a write\n"
        "in one branch of an if, the _touch in the other. Same-class\n"
        "helpers that themselves always invalidate count as\n"
        "invalidator calls."
    )
    example = (
        "src/repro/core/templates.py:214: [cache-invalidation] "
        "'TemplateStore._insert' writes registered field '_shards' "
        "without a '_touch()' call on every following path"
    )

    def check_project(self, ctx: ProjectContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for rel_path in sorted(ctx.modules):
            module = ctx.modules[rel_path]
            for class_name, (node, reg) in sorted(
                _registrations_in(module).items()
            ):
                violations.extend(
                    self._check_class(rel_path, class_name, node, reg)
                )
        return violations

    def _check_class(
        self,
        rel_path: str,
        class_name: str,
        node: ast.ClassDef,
        reg: _Registration,
    ) -> Iterable[Violation]:
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        if reg.invalidator not in methods:
            yield Violation(
                rule=self.name,
                path=rel_path,
                line=reg.line,
                message=(
                    f"'{class_name}' registers invalidator "
                    f"'{reg.invalidator}' but defines no such method"
                ),
            )
            return
        fields = set(reg.fields)
        clean = _always_invalidates(methods, fields, reg.invalidator)
        for name in sorted(methods):
            if name == reg.invalidator or name in _EXEMPT_METHODS:
                continue
            scanner = _MethodScanner(fields, clean, collect=True)
            scanner.scan(methods[name].body, False)
            seen: Set[Tuple[str, int]] = set()
            for attr, line in scanner.unguarded:
                if (attr, line) in seen:
                    continue
                seen.add((attr, line))
                yield Violation(
                    rule=self.name,
                    path=rel_path,
                    line=line,
                    message=(
                        f"'{class_name}.{name}' writes registered "
                        f"field '{attr}' without a "
                        f"'{reg.invalidator}()' call on every "
                        f"following path"
                    ),
                )
