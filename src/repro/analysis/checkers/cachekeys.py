"""Cache-key completeness checker.

Targets the memoization idiom used by ``engine/planner.py`` and
``core/estimator.py``::

    cached = self._cache.get(key)
    if cached is not None:
        return cached
    ...compute...
    self._cache.put(key, value)        # or: self._cache[key] = value

Correctness of delta costing rests on the key covering *everything*
the computation between ``get`` and ``put`` reads.  The checker
verifies two subset relations for that region:

* every **parameter** read inside the region is reachable from the
  key expression (through local assignment chains);
* every **mutable attribute** of ``self`` read inside the region
  (directly or via same-class helper calls) is mentioned in the key.

"Mutable" is decided per class: attributes rebound by plain
assignment outside ``__init__``.  Attributes assigned only in
``__init__`` are construction constants, and attributes whose only
non-init writes are ``+=``-style counters are instrumentation; both
are exempt.  A ``get`` whose key is a bare parameter is skipped —
the caller owns key construction.

A third rule covers *versioned* key material: a cache key built from
``normalize_sql()`` output must also carry ``NORMALIZER_VERSION``
somewhere in its construction chain — a persisted or long-lived
mapping built under one set of masking rules must never be consulted
under another.  ``raw_key()`` is the blessed constructor (it embeds
the version itself) and satisfies the rule without an explicit
constant.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation, register

#: Attribute-name fragments that identify a memoization store.
_CACHE_NAME_HINTS = ("cache", "memo")

#: Helpers whose output format is governed by a version constant: a
#: cache key built from the helper must reference that constant too.
#: (``raw_key`` embeds ``NORMALIZER_VERSION`` itself and is the
#: preferred way to satisfy the rule.)
_VERSIONED_HELPERS: Dict[str, str] = {
    "normalize_sql": "NORMALIZER_VERSION",
}


def _is_cache_attr(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _CACHE_NAME_HINTS)


@dataclass
class _ClassModel:
    methods: Dict[str, ast.FunctionDef]
    mutable_attrs: Set[str]
    counter_attrs: Set[str]


def _model_class(cls: ast.ClassDef) -> _ClassModel:
    methods: Dict[str, ast.FunctionDef] = {}
    plain_writes: Dict[str, Set[str]] = {}
    aug_writes: Dict[str, Set[str]] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item  # type: ignore[assignment]
            for node in ast.walk(item):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        aug_writes.setdefault(target.attr, set()).add(
                            item.name
                        )
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        plain_writes.setdefault(target.attr, set()).add(
                            item.name
                        )
    init_names = {"__init__", "__post_init__"}
    mutable = {
        attr
        for attr, writers in plain_writes.items()
        if writers - init_names
    }
    counters = {
        attr
        for attr, writers in aug_writes.items()
        if attr not in mutable and (writers - init_names)
    }
    return _ClassModel(
        methods=methods, mutable_attrs=mutable, counter_attrs=counters
    )


@dataclass
class _CachePattern:
    cache_attr: str
    key_expr: ast.expr
    get_line: int
    put_line: int


def _find_patterns(func: ast.FunctionDef) -> List[_CachePattern]:
    gets: List[Tuple[str, ast.expr, int]] = []
    puts: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            func_expr = call.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "get"
                and _self_cache_attr(func_expr.value) is not None
                and call.args
            ):
                attr = _self_cache_attr(func_expr.value)
                assert attr is not None
                gets.append((attr, call.args[0], node.lineno))
        if isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "put"
                and _self_cache_attr(func_expr.value) is not None
            ):
                attr = _self_cache_attr(func_expr.value)
                assert attr is not None
                puts.append((attr, node.lineno))
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_cache_attr(target.value)
                    if attr is not None:
                        puts.append((attr, node.lineno))
    patterns: List[_CachePattern] = []
    for attr, key_expr, get_line in gets:
        put_lines = [
            line for put_attr, line in puts
            if put_attr == attr and line > get_line
        ]
        if put_lines:
            patterns.append(
                _CachePattern(attr, key_expr, get_line, min(put_lines))
            )
    return patterns


def _self_cache_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and _is_cache_attr(node.attr)
    ):
        return node.attr
    return None


def _param_names(func: ast.FunctionDef) -> Set[str]:
    args = func.args
    names = {
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    names.discard("self")
    return names


def _local_assignments(func: ast.FunctionDef) -> Dict[str, List[ast.expr]]:
    """Map of local name -> every expression assigned to it.

    Tuple targets map each element name to the whole right-hand side
    (``key, relevant = self._mk(...)`` covers both names); ``for``
    targets map to the iterable.
    """
    out: Dict[str, List[ast.expr]] = {}

    def record(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            out.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record(element, value)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            record(node.target, node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            record(node.target, node.iter)
    return out


def _expr_names(expr: ast.expr) -> Set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _expr_self_attrs(expr: ast.expr) -> Set[str]:
    return {
        n.attr
        for n in ast.walk(expr)
        if isinstance(n, ast.Attribute)
        and isinstance(n.value, ast.Name)
        and n.value.id == "self"
    }


def _covered_params(
    key_expr: ast.expr,
    params: Set[str],
    assignments: Dict[str, List[ast.expr]],
) -> Set[str]:
    """Parameters reachable from the key via local assignment chains."""
    covered: Set[str] = set()
    seen: Set[str] = set()
    frontier: List[ast.expr] = [key_expr]
    while frontier:
        expr = frontier.pop()
        for name in _expr_names(expr):
            if name in params:
                covered.add(name)
            elif name not in seen:
                seen.add(name)
                frontier.extend(assignments.get(name, []))
    return covered


def _key_chain(
    key_expr: ast.expr, assignments: Dict[str, List[ast.expr]]
) -> List[ast.expr]:
    """Every expression reachable from the key via local assignments."""
    exprs: List[ast.expr] = []
    seen: Set[str] = set()
    frontier: List[ast.expr] = [key_expr]
    while frontier:
        expr = frontier.pop()
        exprs.append(expr)
        for name in _expr_names(expr):
            if name not in seen:
                seen.add(name)
                frontier.extend(assignments.get(name, []))
    return exprs


def _chain_calls(exprs: List[ast.expr]) -> Set[str]:
    """Function names called anywhere in the chain (bare or ``x.f()``)."""
    names: Set[str] = set()
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Name):
                    names.add(callee.id)
                elif isinstance(callee, ast.Attribute):
                    names.add(callee.attr)
    return names


def _chain_references(exprs: List[ast.expr]) -> Set[str]:
    """Bare names and attribute names mentioned anywhere in the chain."""
    names: Set[str] = set()
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
    return names


def _region_nodes(
    func: ast.FunctionDef, start: int, end: int
) -> Iterable[ast.AST]:
    for node in ast.walk(func):
        lineno = getattr(node, "lineno", None)
        if lineno is not None and start < lineno <= end:
            yield node


def _transitive_attr_reads(
    model: _ClassModel,
    method_name: str,
    memo: Dict[str, Set[str]],
    stack: Set[str],
) -> Set[str]:
    """Mutable self-attrs read anywhere inside *method_name* (deep)."""
    if method_name in memo:
        return memo[method_name]
    if method_name in stack:
        return set()
    method = model.methods.get(method_name)
    if method is None:
        return set()
    stack.add(method_name)
    reads: Set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
            and node.attr in model.mutable_attrs
        ):
            reads.add(node.attr)
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "self"
                and callee.attr in model.methods
            ):
                reads |= _transitive_attr_reads(
                    model, callee.attr, memo, stack
                )
    stack.discard(method_name)
    memo[method_name] = reads
    return reads


@register
class CacheKeyChecker(Checker):
    name = "cache-key"
    description = (
        "memoization keys must cover every parameter and mutable "
        "attribute the cached computation reads"
    )
    rationale = (
        "A memo key that omits an input the computation reads serves\n"
        "stale results the moment that input changes -- the classic\n"
        "shape is caching a cost by template fingerprint while also\n"
        "reading the index configuration. Every parameter and mutable\n"
        "attribute the cached body touches must appear in the key (or\n"
        "be versioned into it)."
    )
    example = (
        "src/repro/core/estimator.py:402: [cache-key] cached method "
        "'query_cost' reads 'config' but its memo key omits it"
    )

    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                model = _model_class(node)
                for method in model.methods.values():
                    violations.extend(
                        self._check_method(module, model, method)
                    )
        return violations

    def _check_method(
        self,
        module: ModuleInfo,
        model: _ClassModel,
        func: ast.FunctionDef,
    ) -> Iterable[Violation]:
        patterns = _find_patterns(func)
        if not patterns:
            return
        params = _param_names(func)
        assignments = _local_assignments(func)
        memo: Dict[str, Set[str]] = {}
        for pattern in patterns:
            if (
                isinstance(pattern.key_expr, ast.Name)
                and pattern.key_expr.id in params
            ):
                continue  # caller-constructed key
            key_exprs: List[ast.expr] = [pattern.key_expr]
            if isinstance(pattern.key_expr, ast.Name):
                key_exprs.extend(
                    assignments.get(pattern.key_expr.id, [])
                )
            covered = set()
            key_attrs: Set[str] = set()
            for expr in key_exprs:
                covered |= _covered_params(expr, params, assignments)
                key_attrs |= _expr_self_attrs(expr)

            chain = _key_chain(pattern.key_expr, assignments)
            chain_calls = _chain_calls(chain)
            chain_refs = _chain_references(chain)
            for helper, version in sorted(_VERSIONED_HELPERS.items()):
                if helper in chain_calls and version not in chain_refs:
                    yield Violation(
                        rule="cache-key",
                        path=module.rel_path,
                        line=pattern.get_line,
                        message=(
                            f"key of 'self.{pattern.cache_attr}' in "
                            f"{func.name}() is built from {helper}() "
                            f"but does not include {version} (use "
                            f"raw_key(), or add the constant to the "
                            f"key)"
                        ),
                    )

            region = list(
                _region_nodes(func, pattern.get_line, pattern.put_line)
            )
            # `out[i] = value` — writing through a parameter is an
            # output buffer, not an input read; exempt those exact
            # Name occurrences.
            buffer_bases = {
                id(node.value)
                for node in region
                if isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
            }
            read_params: Set[str] = set()
            read_attrs: Set[Tuple[str, int]] = set()
            for node in region:
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    if node.id in params and id(node) not in buffer_bases:
                        read_params.add(node.id)
                elif (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and isinstance(node.ctx, ast.Load)
                ):
                    attr = node.attr
                    if (
                        attr in model.mutable_attrs
                        and attr != pattern.cache_attr
                        and attr not in model.counter_attrs
                    ):
                        read_attrs.add((attr, node.lineno))
                if isinstance(node, ast.Call):
                    callee = node.func
                    if (
                        isinstance(callee, ast.Attribute)
                        and isinstance(callee.value, ast.Name)
                        and callee.value.id == "self"
                        and callee.attr in model.methods
                    ):
                        for attr in _transitive_attr_reads(
                            model, callee.attr, memo, set()
                        ):
                            if attr != pattern.cache_attr:
                                read_attrs.add((attr, node.lineno))

            for param in sorted(read_params - covered):
                yield Violation(
                    rule="cache-key",
                    path=module.rel_path,
                    line=pattern.get_line,
                    message=(
                        f"key of 'self.{pattern.cache_attr}' in "
                        f"{func.name}() does not cover parameter "
                        f"'{param}' read by the cached computation"
                    ),
                )
            for attr, lineno in sorted(read_attrs):
                if attr in key_attrs:
                    continue
                yield Violation(
                    rule="cache-key",
                    path=module.rel_path,
                    line=lineno,
                    message=(
                        f"cached computation in {func.name}() reads "
                        f"mutable attribute 'self.{attr}' that is not "
                        f"part of the 'self.{pattern.cache_attr}' key"
                    ),
                )
