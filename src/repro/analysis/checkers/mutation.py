"""Frozen-state mutation checker.

Objects returned from a cache are shared: every future hit sees the
same instance, so mutating one corrupts the cache for all later
readers.  The same holds for arrays snapshotted into the MCTS policy
tree (``PolicyNode.costs``): delta costing reuses them verbatim, so
an in-place write silently changes history.

Within each function the checker marks a local name *frozen* when it
is bound from

* a ``.get(...)`` call on a cache-named ``self`` attribute,
* a call to a method known to return memoized plans
  (``best_access_path`` / ``parameterized_index_path``), or
* an attribute read of a snapshot field (``node.costs``),

and flags any later in-place mutation of that name: attribute or
subscript stores, augmented assignment (``arr += x`` mutates numpy
arrays in place), and calls to known mutator methods.  Rebinding the
name with a fresh value (plain ``name = ...``) un-freezes it.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, Iterator, List

from repro.analysis.core import Checker, ModuleInfo, Violation, register

#: Attribute-name fragments that identify a memoization store.
_CACHE_NAME_HINTS = ("cache", "memo")

#: Methods whose return values are memoized plan nodes.
_CACHE_RETURNING_METHODS = {"best_access_path", "parameterized_index_path"}

#: Attributes treated as immutable snapshots once assigned.
SNAPSHOT_ATTRS = {"costs"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append",
    "add",
    "update",
    "pop",
    "popitem",
    "extend",
    "insert",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
    "setdefault",
    "fill",
    "partial_fit",
}


def _is_cache_get(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "get"):
        return False
    target = func.value
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and any(h in target.attr.lower() for h in _CACHE_NAME_HINTS)
    )


def _is_cache_returning_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _CACHE_RETURNING_METHODS
    )


def _is_snapshot_read(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.ctx, ast.Load)
        and node.attr in SNAPSHOT_ATTRS
    )


def _frozen_origin(node: ast.expr) -> str:
    if _is_cache_get(node):
        return "a cache"
    if _is_cache_returning_call(node):
        return "a memoized plan lookup"
    return "a snapshot attribute"


@register
class FrozenMutationChecker(Checker):
    name = "frozen-mutation"
    description = (
        "in-place writes to objects obtained from caches or stored "
        "in policy-tree snapshots"
    )
    rationale = (
        "Objects handed out by caches and policy-tree snapshots are\n"
        "shared: mutating one in place silently rewrites what every\n"
        "other holder (and every future cache hit) sees. Copy before\n"
        "writing, or rebind the name to a fresh value -- a plain\n"
        "'name = ...' un-freezes it."
    )
    example = (
        "src/repro/core/mcts.py:310: [frozen-mutation] 'config' came "
        "from a cache lookup and is mutated in place via .append"
    )

    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(self._check_function(module, node))
        return violations

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator[Violation]:
        # First pass: where does each local become frozen?
        frozen_at: Dict[str, List[int]] = {}
        rebound_at: Dict[str, List[int]] = {}
        origins: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if (
                        _is_cache_get(node.value)
                        or _is_cache_returning_call(node.value)
                        or _is_snapshot_read(node.value)
                    ):
                        frozen_at.setdefault(target.id, []).append(
                            node.lineno
                        )
                        origins[target.id] = _frozen_origin(node.value)
                    else:
                        rebound_at.setdefault(target.id, []).append(
                            node.lineno
                        )
        if not frozen_at:
            return

        def is_frozen(name: str, lineno: int) -> bool:
            freezes = [ln for ln in frozen_at.get(name, []) if ln < lineno]
            if not freezes:
                return False
            last_freeze = max(freezes)
            rebinds = [
                ln
                for ln in rebound_at.get(name, [])
                if last_freeze < ln < lineno
            ]
            return not rebinds

        for node in ast.walk(func):
            yield from self._flag_mutations(module, node, is_frozen, origins)

        # Snapshot stores: `node.costs = value` freezes *value* too —
        # flag later mutations of the assigned name.
        snapshot_values: Dict[str, int] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in SNAPSHOT_ATTRS
                        and isinstance(node.value, ast.Name)
                    ):
                        snapshot_values.setdefault(
                            node.value.id, node.lineno
                        )
        if snapshot_values:

            def is_snap_frozen(name: str, lineno: int) -> bool:
                frozen_line = snapshot_values.get(name)
                if frozen_line is None or lineno <= frozen_line:
                    return False
                rebinds = [
                    ln
                    for ln in rebound_at.get(name, [])
                    if frozen_line < ln < lineno
                ]
                return not rebinds

            snap_origins = {
                name: "a snapshot attribute" for name in snapshot_values
            }
            for node in ast.walk(func):
                yield from self._flag_mutations(
                    module, node, is_snap_frozen, snap_origins
                )

    def _flag_mutations(
        self,
        module: ModuleInfo,
        node: ast.AST,
        is_frozen: Callable[[str, int], bool],
        origins: Dict[str, str],
    ) -> Iterator[Violation]:
        name: str = ""
        how: str = ""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                base = _store_base_name(target)
                if base and is_frozen(base, node.lineno):
                    name = base
                    how = "written to"
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and is_frozen(node.target.id, node.lineno)
        ):
            name = node.target.id
            how = "augmented in place (mutates arrays)"
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and is_frozen(func.value.id, node.lineno)
            ):
                name = func.value.id
                how = f"mutated via .{func.attr}()"
        if name:
            origin = origins.get(name, "a cache")
            yield Violation(
                rule="frozen-mutation",
                path=module.rel_path,
                line=node.lineno,
                message=(
                    f"'{name}' came from {origin} and is {how}; "
                    "copy it (e.g. dataclasses.replace / .copy()) "
                    "before modifying"
                ),
            )


def _store_base_name(target: ast.expr) -> str:
    """Base name of an attribute/subscript store like ``x.a[i] = v``."""
    node = target
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
    return ""
