"""AST-visitor exhaustiveness checker.

``repro/sql/ast.py`` is the single source of truth for the SQL node
set.  Dispatchers elsewhere (``sql/predicates.py``,
``engine/planner.py``, ``core/candidates.py``) branch on node types
with ``isinstance`` ladders; when a new node class lands, every
ladder must either handle it or *explicitly* opt out.  This checker
compares the concrete node classes (``@dataclass``-decorated
subclasses of a base) against each dispatcher's handled set and flags
the difference.

A dispatcher is recognized two ways:

* **marker** — a comment on (or directly above) the ``def`` line::

      # lint: exhaustive[Expr] fallthrough=Literal,Placeholder,Star
      def _qualify(self, expr, scope): ...

  ``fallthrough=`` names classes intentionally handled by the final
  catch-all (or intentionally unsupported).
* **auto** — a function with >= 2 ``isinstance`` tests against node
  classes whose body ends in ``raise`` is a *closed* dispatcher:
  unhandled nodes would crash at runtime, so all concrete classes of
  the inferred base must appear.

Modules without an on-disk package root (in-memory snippets) are
skipped: the node universe cannot be read.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation, register

_MARKER_RE = re.compile(
    r"#\s*lint:\s*exhaustive\[(\w+)\]\s*(?:fallthrough=([\w,\s]*))?"
)


class _NodeUniverse:
    """Class hierarchy parsed from a package's ``sql/ast.py``."""

    def __init__(self, tree: ast.Module) -> None:
        self.bases: Dict[str, List[str]] = {}
        self.concrete: Set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            self.bases[node.name] = [
                b.id for b in node.bases if isinstance(b, ast.Name)
            ]
            if any(_is_dataclass_decorator(d) for d in node.decorator_list):
                self.concrete.add(node.name)

    def concrete_descendants(self, base: str) -> Set[str]:
        out: Set[str] = set()
        for name in self.concrete:
            if self._descends_from(name, base):
                out.add(name)
        return out

    def _descends_from(self, name: str, base: str) -> bool:
        if name == base:
            return True
        for parent in self.bases.get(name, []):
            if self._descends_from(parent, base):
                return True
        return False

    def common_base(self, handled: Set[str]) -> Optional[str]:
        """Narrowest of Statement/Expr/Node covering *handled*."""
        for base in ("Statement", "Expr", "Node"):
            if base in self.bases and handled <= self.concrete_descendants(
                base
            ):
                return base
        return None


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


_UNIVERSE_CACHE: Dict[str, Optional[_NodeUniverse]] = {}


def _load_universe(package_root: Path) -> Optional[_NodeUniverse]:
    key = str(package_root)
    if key not in _UNIVERSE_CACHE:
        ast_path = package_root / "sql" / "ast.py"
        universe: Optional[_NodeUniverse] = None
        if ast_path.exists():
            try:
                universe = _NodeUniverse(
                    ast.parse(
                        ast_path.read_text(encoding="utf-8"),
                        filename=str(ast_path),
                    )
                )
            except SyntaxError:
                universe = None
        _UNIVERSE_CACHE[key] = universe
    return _UNIVERSE_CACHE[key]


def _collect_ast_aliases(
    tree: ast.Module,
) -> Tuple[Set[str], Dict[str, str]]:
    """Names bound to the SQL ast module / its classes in *tree*.

    Returns (module aliases, direct-import name -> class name).  Only
    imports whose dotted path ends in ``sql.ast`` (or ``ast`` out of a
    ``...sql`` package) count, so a plain stdlib ``import ast`` is
    never confused with the SQL node module.
    """
    module_aliases: Set[str] = set()
    direct: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name.endswith("sql.ast"):
                    module_aliases.add(
                        name.asname or name.name.split(".")[0]
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            parts = node.module.split(".")
            if parts[-1] == "sql":
                for name in node.names:
                    if name.name == "ast":
                        module_aliases.add(name.asname or "ast")
            elif len(parts) >= 2 and parts[-2:] == ["sql", "ast"]:
                for name in node.names:
                    direct[name.asname or name.name] = name.name
    return module_aliases, direct


def _isinstance_classes(
    func: ast.AST, module_aliases: Set[str], direct: Dict[str, str]
) -> Set[str]:
    handled: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        classes = node.args[1]
        candidates = (
            list(classes.elts)
            if isinstance(classes, ast.Tuple)
            else [classes]
        )
        for cand in candidates:
            if (
                isinstance(cand, ast.Attribute)
                and isinstance(cand.value, ast.Name)
                and cand.value.id in module_aliases
            ):
                handled.add(cand.attr)
            elif isinstance(cand, ast.Name) and cand.id in direct:
                handled.add(direct[cand.id])
    return handled


def _find_markers(module: ModuleInfo) -> Dict[int, Tuple[str, Set[str]]]:
    """Map of marker line -> (base name, fallthrough set)."""
    markers: Dict[int, Tuple[str, Set[str]]] = {}
    for lineno, text in enumerate(module.lines, start=1):
        match = _MARKER_RE.search(text)
        if match:
            fallthrough = {
                part.strip()
                for part in (match.group(2) or "").split(",")
                if part.strip()
            }
            markers[lineno] = (match.group(1), fallthrough)
    return markers


@register
class ExhaustivenessChecker(Checker):
    name = "ast-exhaustive"
    description = (
        "isinstance dispatchers over repro.sql.ast nodes must handle "
        "(or explicitly fall through for) every concrete node class"
    )
    rationale = (
        "Adding a SQL AST node must break every dispatcher that\n"
        "forgot about it at lint time, not at runtime on whichever\n"
        "workload first produces the node. A dispatcher either\n"
        "handles every concrete node class or declares its fallthrough\n"
        "explicitly."
    )
    example = (
        "src/repro/sql/normalize.py:88: [ast-exhaustive] isinstance "
        "dispatch handles 11 of 12 node classes; missing: Between"
    )

    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        if module.package_root is None:
            return []
        universe = _load_universe(module.package_root)
        if universe is None:
            return []
        module_aliases, direct = _collect_ast_aliases(module.tree)
        if not module_aliases and not direct:
            return []
        markers = _find_markers(module)
        return list(
            self._check_functions(
                module, universe, module_aliases, direct, markers
            )
        )

    def _check_functions(
        self,
        module: ModuleInfo,
        universe: _NodeUniverse,
        module_aliases: Set[str],
        direct: Dict[str, str],
        markers: Dict[int, Tuple[str, Set[str]]],
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            marker: Optional[Tuple[str, Set[str]]] = None
            # Marker sits on the def line or the line directly above
            # it (above any decorators too).
            decorator_lines = [
                d.lineno for d in node.decorator_list
            ]
            anchor = min([node.lineno, *decorator_lines])
            for lineno in (node.lineno, anchor - 1, node.lineno - 1):
                if lineno in markers:
                    marker = markers[lineno]
                    break
            handled = _isinstance_classes(node, module_aliases, direct)
            if marker is not None:
                base, fallthrough = marker
                if base not in universe.bases:
                    yield Violation(
                        rule="ast-exhaustive",
                        path=module.rel_path,
                        line=node.lineno,
                        message=(
                            f"exhaustive marker on {node.name}() names "
                            f"unknown base class '{base}'"
                        ),
                    )
                    continue
            elif self._is_closed_dispatcher(node, handled):
                base = universe.common_base(handled) or "Node"
                fallthrough = set()
            else:
                continue
            expected = universe.concrete_descendants(base)
            missing = expected - handled - fallthrough
            stale = fallthrough - expected
            if missing:
                yield Violation(
                    rule="ast-exhaustive",
                    path=module.rel_path,
                    line=node.lineno,
                    message=(
                        f"{node.name}() dispatches over {base} but does "
                        f"not handle: {', '.join(sorted(missing))} (add "
                        "a branch or list them in fallthrough=)"
                    ),
                )
            if stale:
                yield Violation(
                    rule="ast-exhaustive",
                    path=module.rel_path,
                    line=node.lineno,
                    message=(
                        f"{node.name}() fallthrough names classes that "
                        f"are not concrete {base} nodes: "
                        f"{', '.join(sorted(stale))}"
                    ),
                )

    @staticmethod
    def _is_closed_dispatcher(node: ast.AST, handled: Set[str]) -> bool:
        body = getattr(node, "body", [])
        return (
            len(handled) >= 2
            and bool(body)
            and isinstance(body[-1], ast.Raise)
        )
