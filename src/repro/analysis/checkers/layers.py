"""Layer purity checker.

Enforces the package import DAG::

    sql  ->  engine  ->  ports  ->  core  ->  bench
                 \\_________ workloads _______/

* ``sql`` imports nothing from the package (the grammar layer);
* ``engine`` may import ``sql`` only — never ``ports`` or ``core``
  (the engine must not know about tuning or its own adapters);
* ``ports`` may import ``engine`` and ``sql`` (adapters wrap the
  engine; the protocol itself is import-light);
* ``core`` may import ``ports``, ``engine``, and ``sql`` — but the
  concrete engine facade (``repro.engine.database`` /
  ``repro.engine.executor``) is off limits: the tuner speaks the
  :class:`~repro.ports.backend.TuningBackend` protocol only (see
  ``FORBIDDEN_CONCRETE``);
* ``workloads`` may import ``sql``, ``engine``, and ``ports``
  (generators build schemas/statements against the protocol);
* ``bench`` may import everything, and **nothing imports bench**
  except ``__main__`` entry points and tests;
* ``serve`` (the streaming daemon) may import ``core``, ``ports``,
  ``engine``, ``workloads``, and ``sql`` — and, like bench,
  **nothing imports serve** except its own ``__main__`` entry points
  and tests: the daemon is a leaf consumer of the library, never a
  dependency of it;
* ``analysis`` is self-contained (stdlib + itself) so the linter can
  run without the engine's dependencies installed.

Only absolute ``repro.*`` imports are considered; stdlib and
third-party imports are out of scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set

from repro.analysis.core import KNOWN_LAYERS, Checker, ModuleInfo, Violation, register

#: importer layer -> package layers it may import.  ``""`` is the
#: package root (``repro/__init__.py``, ``repro/lint.py``): glue code
#: that may see everything except bench.
ALLOWED_IMPORTS: Dict[str, Set[str]] = {
    "sql": {"sql"},
    "engine": {"engine", "sql"},
    "ports": {"ports", "engine", "sql"},
    "core": {"core", "ports", "engine", "sql"},
    "workloads": {"workloads", "sql", "engine", "ports"},
    "bench": {
        "bench", "core", "ports", "engine", "sql", "workloads",
        "analysis", "",
    },
    "serve": {"serve", "core", "ports", "engine", "sql", "workloads"},
    "analysis": {"analysis"},
    "": {"sql", "engine", "ports", "core", "workloads", "analysis", ""},
}

#: importer layer -> fully-qualified modules it must not import even
#: though the owning layer is allowed.  The tuner (``core``) may use
#: ``engine`` value types (IndexDef, faults, metrics) but must reach
#: the database only through the :mod:`repro.ports` protocol — a
#: concrete import of the facade or the executor would silently
#: re-couple the tuner to one backend.
FORBIDDEN_CONCRETE: Dict[str, Set[str]] = {
    "core": {"repro.engine.database", "repro.engine.executor"},
}


@register
class LayerChecker(Checker):
    name = "layer"
    description = (
        "imports must follow the sql -> engine -> core -> bench DAG; "
        "nothing imports bench except __main__/tests"
    )
    rationale = (
        "The package is layered sql -> engine -> core -> bench so the\n"
        "parser never depends on the engine, the engine never on the\n"
        "advisor, and nothing product-side on the bench harness. An\n"
        "upward import couples a lower layer to its consumers and\n"
        "makes the ports/ seam (swappable backends) a fiction."
    )
    example = (
        "src/repro/engine/planner.py:12: [layer] engine imports "
        "repro.core.advisor; core may import engine, never the reverse"
    )

    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        layer = module.layer
        if layer is None:
            return []
        return list(self._check_imports(module, layer))

    def _check_imports(
        self, module: ModuleInfo, layer: str
    ) -> Iterator[Violation]:
        allowed = ALLOWED_IMPORTS.get(layer)
        forbidden = FORBIDDEN_CONCRETE.get(layer, set())
        for node in ast.walk(module.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [n.name for n in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: resolve against this module's
                    # position inside the package.
                    base = module.rel_path.split("repro/")[-1]
                    segments = base.split("/")[:-1]
                    if node.level - 1 <= len(segments):
                        prefix = segments[: len(segments) - (node.level - 1)]
                        tail = node.module or ""
                        dotted = ".".join(["repro", *prefix, tail]).rstrip(".")
                        targets = [dotted]
                elif node.module:
                    targets = [node.module]
            for target in targets:
                if target != "repro" and not target.startswith("repro."):
                    continue
                # The forbidden-module rule sees both spellings:
                # ``from repro.engine.database import Database`` and
                # ``from repro.engine import database``.
                spellings = {target}
                if isinstance(node, ast.ImportFrom):
                    spellings.update(
                        f"{target}.{alias.name}" for alias in node.names
                    )
                hit = sorted(spellings & forbidden)
                if hit:
                    yield Violation(
                        rule="layer",
                        path=module.rel_path,
                        line=node.lineno,
                        message=(
                            f"layer '{layer}' must not import the "
                            f"concrete module '{hit[0]}': reach the "
                            "database through the repro.ports "
                            "TuningBackend protocol"
                        ),
                    )
                    continue
                rest = target.split(".")[1:]
                target_layer = (
                    rest[0] if rest and rest[0] in KNOWN_LAYERS else ""
                )
                # bench and serve are leaf layers: programs, not
                # libraries.  Only their own modules, __main__ entry
                # points, and tests may import them.
                if target_layer in ("bench", "serve") and (
                    layer != target_layer
                ):
                    if not module.is_dunder_main:
                        yield Violation(
                            rule="layer",
                            path=module.rel_path,
                            line=node.lineno,
                            message=(
                                f"'{target}' imported from layer "
                                f"'{layer or 'root'}': only __main__ "
                                "entry points and tests may import "
                                f"{target_layer}"
                            ),
                        )
                    continue
                if allowed is not None and target_layer not in allowed:
                    yield Violation(
                        rule="layer",
                        path=module.rel_path,
                        line=node.lineno,
                        message=(
                            f"layer '{layer or 'root'}' must not import "
                            f"'{target}' (allowed: "
                            f"{', '.join(sorted(allowed - {layer}))}); "
                            "the DAG is sql -> engine -> core -> bench"
                        ),
                    )
