"""Framework core: violations, module model, registry, suppressions.

Everything here is pure and stdlib-only.  A checker receives a fully
parsed :class:`ModuleInfo` and yields :class:`Violation` objects; the
framework handles suppression filtering, baselining, parallelism and
reporting so checkers stay small.
"""

from __future__ import annotations

import ast
import hashlib
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:
    from repro.analysis.effects import EffectIndex
    from repro.analysis.graph import ProjectGraph

# ---------------------------------------------------------------------------
# Violations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One finding, attributed to a rule and a source location.

    ``path`` is stored relative to the project root (POSIX separators)
    so fingerprints are stable across machines and checkouts.
    """

    rule: str
    path: str
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline file.

        Line numbers are deliberately excluded so that unrelated edits
        above a baselined violation do not resurrect it.
        """
        digest = hashlib.sha256(
            f"{self.rule}::{self.path}::{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Module model
# ---------------------------------------------------------------------------

#: Path segments treated as package layers when they appear directly
#: under a ``repro`` package directory.
KNOWN_LAYERS = (
    "sql",
    "engine",
    "ports",
    "core",
    "bench",
    "workloads",
    "analysis",
    "serve",
)


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata checkers key off."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: List[str]
    layer: Optional[str]
    package_root: Optional[Path]

    @property
    def is_dunder_main(self) -> bool:
        return self.path.name == "__main__.py"


def _locate_package(path: Path) -> Tuple[Optional[Path], Optional[str]]:
    """Return (repro package dir, layer) for *path*, if discernible.

    The layer is the first directory under the innermost ``repro``
    package in the path — e.g. ``.../repro/engine/planner.py`` has
    layer ``engine``.  Modules directly under the package root (like
    ``repro/lint.py``) have layer ``""``; files outside any ``repro``
    package have layer ``None``.
    """
    parts = path.parts
    for idx in range(len(parts) - 2, -1, -1):
        if parts[idx] == "repro":
            root = Path(*parts[: idx + 1])
            remainder = parts[idx + 1 : -1]
            layer = remainder[0] if remainder else ""
            return root, layer
    return None, None


def load_module(path: Path, project_root: Optional[Path] = None) -> ModuleInfo:
    """Parse *path* into a :class:`ModuleInfo`.

    Raises :class:`SyntaxError` if the file does not parse; the runner
    converts that into a ``parse`` violation rather than crashing.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    package_root, layer = _locate_package(path)
    if project_root is not None:
        try:
            rel = path.resolve().relative_to(project_root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
    else:
        rel = path.as_posix()
    return ModuleInfo(
        path=path,
        rel_path=rel,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        layer=layer,
        package_root=package_root,
    )


def analyze_snippet(source: str, virtual_path: str) -> List[Violation]:
    """Analyze in-memory *source* as if it lived at *virtual_path*.

    Used by the test fixtures: the virtual path controls the layer
    (e.g. ``src/repro/engine/mod.py``) without touching the disk.
    Checkers that need a package root on disk (exhaustiveness) skip
    modules without one.
    """
    path = Path(virtual_path)
    package_root, layer = _locate_package(path)
    info = ModuleInfo(
        path=path,
        rel_path=path.as_posix(),
        source=source,
        tree=ast.parse(source, filename=virtual_path),
        lines=source.splitlines(),
        layer=layer,
        package_root=None if package_root is None else package_root,
    )
    # A virtual package root does not exist on disk; drop it so disk
    # probes (sql/ast.py lookup) are skipped instead of erroring.
    if info.package_root is not None and not info.package_root.exists():
        info.package_root = None
    return analyze_module(info, all_checkers())


# ---------------------------------------------------------------------------
# Checker registry
# ---------------------------------------------------------------------------


class Checker(ABC):
    """Base class for all checkers.

    Subclasses set ``name`` (the rule id used in reports, ``--select``
    and suppressions) and ``description``, and implement
    :meth:`check`.  Register with :func:`register` so the CLI and
    :func:`all_checkers` can find them.  ``rationale`` and ``example``
    feed ``python -m repro.lint --explain <rule>``.
    """

    name: str = ""
    description: str = ""
    rationale: str = ""
    example: str = ""

    @abstractmethod
    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        """Yield violations for *module*."""


@dataclass
class ProjectContext:
    """Whole-program view handed to :class:`ProjectChecker` subclasses.

    ``modules`` maps project-relative path to the parsed module;
    ``graph`` and ``effects`` are the linked symbol/call graph and
    interprocedural effect index over exactly those modules.
    """

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    graph: Optional["ProjectGraph"] = None
    effects: Optional["EffectIndex"] = None


class ProjectChecker(Checker):
    """A checker that needs the whole program, not one module.

    Project checkers run in the interprocedural pass (``--scope
    project``) after every file has been summarised; their per-module
    :meth:`check` hook is a no-op so they can share the registry,
    ``--select`` and suppression machinery with per-file checkers.
    """

    def check(self, module: ModuleInfo) -> Iterable[Violation]:
        return ()

    @abstractmethod
    def check_project(self, ctx: ProjectContext) -> Iterable[Violation]:
        """Yield violations for the whole project."""


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding *cls* to the global checker registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate checker name: {cls.name}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_checkers() -> Dict[str, Type[Checker]]:
    _ensure_builtin_checkers()
    return dict(_REGISTRY)


def all_checkers(select: Optional[Sequence[str]] = None) -> List[Checker]:
    """Instantiate registered checkers, optionally only *select* names."""
    _ensure_builtin_checkers()
    if select is None:
        names = sorted(_REGISTRY)
    else:
        unknown = sorted(set(select) - set(_REGISTRY))
        if unknown:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(
                f"unknown checker(s): {', '.join(unknown)} (known: {known})"
            )
        names = sorted(set(select))
    return [_REGISTRY[name]() for name in names]


def file_checkers(select: Optional[Sequence[str]] = None) -> List[Checker]:
    """Per-file checkers only (validates *select* against all names)."""
    return [
        c
        for c in all_checkers(select)
        if not isinstance(c, ProjectChecker)
    ]


def project_checkers(
    select: Optional[Sequence[str]] = None,
) -> List["ProjectChecker"]:
    """Project-scope checkers only (validates *select* as above)."""
    return [
        c for c in all_checkers(select) if isinstance(c, ProjectChecker)
    ]


def _ensure_builtin_checkers() -> None:
    # Imported lazily to avoid a cycle (checkers import this module).
    from repro.analysis import checkers as _checkers  # noqa: F401


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------

#: ``# lint: ignore[rule-a,rule-b] -- reason`` — the reason is
#: mandatory; a bare ignore is itself reported (rule ``suppression``).
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\- ]+)\]\s*(?:--\s*(\S.*))?"
)


@dataclass(frozen=True)
class Suppression:
    line: int
    rules: Tuple[str, ...]
    reason: str


def parse_suppressions(
    module: ModuleInfo,
) -> Tuple[List[Suppression], List[Violation]]:
    """Collect inline suppressions and flag reason-less ones."""
    suppressions: List[Suppression] = []
    problems: List[Violation] = []
    for lineno, text in enumerate(module.lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = (match.group(2) or "").strip()
        if not reason:
            problems.append(
                Violation(
                    rule="suppression",
                    path=module.rel_path,
                    line=lineno,
                    message=(
                        "suppression without a reason; write "
                        "'# lint: ignore[rule] -- why this is safe'"
                    ),
                )
            )
            continue
        suppressions.append(Suppression(lineno, rules, reason))
    return suppressions, problems


def _is_suppressed(
    violation: Violation, suppressions: Sequence[Suppression]
) -> bool:
    for sup in suppressions:
        # A suppression covers its own line and the line directly
        # below, so it can sit at the end of the offending line or on
        # a comment line immediately above it.
        if violation.line in (sup.line, sup.line + 1) and (
            violation.rule in sup.rules or "all" in sup.rules
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# Per-module driver
# ---------------------------------------------------------------------------


def analyze_module(
    module: ModuleInfo, checkers: Sequence[Checker]
) -> List[Violation]:
    """Run *checkers* over *module* and apply inline suppressions."""
    suppressions, problems = parse_suppressions(module)
    collected: Set[Violation] = set(problems)
    for checker in checkers:
        for violation in checker.check(module):
            if not _is_suppressed(violation, suppressions):
                collected.add(violation)
    return sorted(
        collected, key=lambda v: (v.path, v.line, v.rule, v.message)
    )
