"""Interprocedural effect inference over the project call graph.

Per-function *local* summaries are extracted file by file (pure, so
the runner caches them by content hash — see ``ANALYZER_VERSION``):
attribute writes rooted at ``self``, writes rooted at other typed
receivers, module-global writes, RNG draws, cache-invalidation calls,
``parallel_safe`` reads, pool submissions, and every resolved or
unresolved call.  The :class:`EffectIndex` then links summaries
through :class:`~repro.analysis.graph.ProjectGraph` and answers the
question the interprocedural checkers ask: *which functions does this
entry point reach, through which chain, and what do they do?*

Two deliberate boundaries keep the traversal honest:

* **Protocol boundary** — a call on a receiver typed as a protocol
  (or a class structurally implementing one) is classified against
  the protocol's method table, never traversed into an arbitrary
  implementation.  The ``parallel_safe`` declaration of a backend
  vouches for its internals.
* **Cache boundary** — a call through an attribute whose name marks
  it as a cache/memo (``self._cost_cache.put(...)``) is cache
  maintenance by declaration; it is neither traversed nor treated as
  a state write.

Receivers whose type cannot be established resolve to *unknown
callees*: recorded (so tests can assert the degradation) but neither
traversed nor flagged.
"""

from __future__ import annotations

import ast
import builtins
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph import (
    RANDOM_REF,
    AnnotationResolver,
    ModuleSymbols,
    ProjectGraph,
    _annotated_params,
    _ctor_class_ref,
    extract_symbols,
)

#: Bump when extraction output changes shape or semantics; cached
#: summaries from other versions are discarded wholesale.
ANALYZER_VERSION = 1

#: Attribute-name fragments that mark an attribute as cache/memo
#: state (mirrors the cache-key checker's convention).
CACHE_NAME_HINTS = ("cache", "memo", "snapshot")

#: In-place mutator method names (subset of the frozen-mutation
#: checker's table) — calling one on ``self.<attr>`` is a write.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "add", "discard", "sort",
        "reverse", "move_to_end", "appendleft", "popleft",
    }
)

#: ``random.Random`` draw methods.
RNG_METHODS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "gauss",
        "normalvariate", "lognormvariate", "expovariate",
        "betavariate", "getrandbits", "vonmisesvariate",
    }
)

#: Methods whose *name* declares a cache flush wherever they are
#: called (the repo-wide invalidation convention).
INVALIDATE_METHODS = frozenset({"clear_cache", "invalidate_caches"})


def has_cache_hint(attr: str) -> bool:
    lowered = attr.lower()
    return any(hint in lowered for hint in CACHE_NAME_HINTS)


# ---------------------------------------------------------------------------
# Summary model (JSON-serializable)
# ---------------------------------------------------------------------------


@dataclass
class AttrWrite:
    """A write rooted at a receiver attribute.

    ``kind`` is one of ``assign`` (plain rebind), ``aug`` (augmented
    counter/accumulator), ``del``, ``subscript`` (item write through
    the attribute), ``deep`` (write to an attribute of the
    attribute), or ``call`` (in-place mutator method).
    """

    attr: str
    kind: str
    line: int
    method: Optional[str] = None  # for kind == "call"

    def to_dict(self) -> Dict[str, object]:
        return {
            "attr": self.attr,
            "kind": self.kind,
            "line": self.line,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AttrWrite":
        return cls(
            attr=str(data["attr"]),
            kind=str(data["kind"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            method=(
                None if data.get("method") is None
                else str(data["method"])
            ),
        )


@dataclass
class TypedWrite:
    """A write rooted at a non-self receiver of known class."""

    cls: str
    attr: str
    kind: str
    line: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "cls": self.cls,
            "attr": self.attr,
            "kind": self.kind,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TypedWrite":
        return cls(
            cls=str(data["cls"]),
            attr=str(data["attr"]),
            kind=str(data["kind"]),
            line=int(data["line"]),  # type: ignore[arg-type]
        )


@dataclass
class CallRef:
    """One call site, as resolved as per-file information allows.

    ``kind``:

    * ``func`` — module-level function; ``target`` is ``"mod:name"``.
    * ``method`` — method on a receiver of known class; ``cls`` is
      the class ref, ``name`` the method.
    * ``ctor`` — direct constructor call; ``cls`` is the class ref.
    * ``cache`` — call through a cache-hinted attribute (boundary).
    * ``unknown`` — unresolvable receiver or name (degraded, kept so
      callers can see the analysis was incomplete).
    """

    kind: str
    line: int
    name: str
    target: Optional[str] = None
    cls: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "line": self.line,
            "name": self.name,
            "target": self.target,
            "cls": self.cls,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CallRef":
        return cls(
            kind=str(data["kind"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            name=str(data["name"]),
            target=(
                None if data.get("target") is None
                else str(data["target"])
            ),
            cls=None if data.get("cls") is None else str(data["cls"]),
        )


@dataclass
class FunctionEffects:
    """Local (non-transitive) effect summary of one function."""

    qualname: str
    module: str
    rel_path: str
    name: str
    line: int
    cls: Optional[str] = None
    is_init: bool = False
    self_writes: List[AttrWrite] = field(default_factory=list)
    typed_writes: List[TypedWrite] = field(default_factory=list)
    global_writes: List[Tuple[str, int]] = field(default_factory=list)
    rng_draws: List[int] = field(default_factory=list)
    invalidate_calls: List[Tuple[str, int]] = field(default_factory=list)
    reads_parallel_safe: bool = False
    constructs_pool: List[int] = field(default_factory=list)
    pool_submits: List[Tuple[str, int]] = field(default_factory=list)
    calls: List[CallRef] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "rel_path": self.rel_path,
            "name": self.name,
            "line": self.line,
            "cls": self.cls,
            "is_init": self.is_init,
            "self_writes": [w.to_dict() for w in self.self_writes],
            "typed_writes": [w.to_dict() for w in self.typed_writes],
            "global_writes": [list(g) for g in self.global_writes],
            "rng_draws": list(self.rng_draws),
            "invalidate_calls": [list(c) for c in self.invalidate_calls],
            "reads_parallel_safe": self.reads_parallel_safe,
            "constructs_pool": list(self.constructs_pool),
            "pool_submits": [list(s) for s in self.pool_submits],
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionEffects":
        return cls(
            qualname=str(data["qualname"]),
            module=str(data["module"]),
            rel_path=str(data["rel_path"]),
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            cls=None if data.get("cls") is None else str(data["cls"]),
            is_init=bool(data.get("is_init", False)),
            self_writes=[
                AttrWrite.from_dict(w)
                for w in data.get("self_writes", [])  # type: ignore[union-attr]
            ],
            typed_writes=[
                TypedWrite.from_dict(w)
                for w in data.get("typed_writes", [])  # type: ignore[union-attr]
            ],
            global_writes=[
                (str(g[0]), int(g[1]))
                for g in data.get("global_writes", [])  # type: ignore[union-attr]
            ],
            rng_draws=[
                int(n) for n in data.get("rng_draws", [])  # type: ignore[union-attr]
            ],
            invalidate_calls=[
                (str(c[0]), int(c[1]))
                for c in data.get("invalidate_calls", [])  # type: ignore[union-attr]
            ],
            reads_parallel_safe=bool(data.get("reads_parallel_safe", False)),
            constructs_pool=[
                int(n) for n in data.get("constructs_pool", [])  # type: ignore[union-attr]
            ],
            pool_submits=[
                (str(s[0]), int(s[1]))
                for s in data.get("pool_submits", [])  # type: ignore[union-attr]
            ],
            calls=[
                CallRef.from_dict(c)
                for c in data.get("calls", [])  # type: ignore[union-attr]
            ],
        )


@dataclass
class FileSummary:
    """Everything the project pass derives from one file."""

    symbols: ModuleSymbols
    effects: Dict[str, FunctionEffects]

    def to_dict(self) -> Dict[str, object]:
        return {
            "symbols": self.symbols.to_dict(),
            "effects": {
                qual: eff.to_dict() for qual, eff in self.effects.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FileSummary":
        symbols_raw = data["symbols"]
        effects_raw = data.get("effects", {})
        assert isinstance(symbols_raw, dict)
        assert isinstance(effects_raw, dict)
        return cls(
            symbols=ModuleSymbols.from_dict(symbols_raw),
            effects={
                str(qual): FunctionEffects.from_dict(eff)
                for qual, eff in effects_raw.items()
            },
        )


# ---------------------------------------------------------------------------
# Per-file extraction
# ---------------------------------------------------------------------------


def _root_attr_chain(
    node: ast.expr,
) -> Tuple[Optional[str], List[str]]:
    """Peel subscripts/attributes down to the root name.

    ``self._shards[k].pop`` → ``("self", ["_shards"])`` (attributes
    in root-to-leaf order, subscripts transparent).
    """
    attrs: List[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            return current.id, list(reversed(attrs))
        else:
            return None, list(reversed(attrs))


class _FunctionExtractor(ast.NodeVisitor):
    """Walk one function body (not nested defs) collecting effects."""

    def __init__(
        self,
        effects: FunctionEffects,
        resolver: AnnotationResolver,
        symbols: ModuleSymbols,
        param_types: Dict[str, str],
        param_names: Set[str],
        self_class: Optional[str],
    ) -> None:
        self.effects = effects
        self.resolver = resolver
        self.symbols = symbols
        self.local_types: Dict[str, str] = dict(param_types)
        self.param_names = param_names
        self.self_class = self_class
        self.globals_declared: Set[str] = set()
        self._depth = 0

    # -- typing -------------------------------------------------------------

    def type_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.self_class is not None:
                return self.self_class
            found = self.local_types.get(node.id)
            if found is not None:
                return found
            return self.symbols.global_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value)
            if base is None:
                return None
            # Resolved lazily against the linked graph: record as a
            # symbolic chain only when base is known locally.
            return _ATTR_TYPE_SENTINEL.format(base=base, attr=node.attr)
        if isinstance(node, ast.Call):
            ref = _ctor_class_ref(node, self.resolver)
            if ref is not None:
                return ref
            callee = node.func
            if isinstance(callee, ast.Attribute):
                base = self.type_of(callee.value)
                if base is not None:
                    return _RETURN_TYPE_SENTINEL.format(
                        base=base, method=callee.attr
                    )
        return None

    # -- write targets ------------------------------------------------------

    def _record_write(
        self, target: ast.expr, kind: str, line: int
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element, kind, line)
            return
        if isinstance(target, ast.Starred):
            self._record_write(target.value, kind, line)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.effects.global_writes.append((target.id, line))
            return
        root, attrs = _root_attr_chain(target)
        if root is None or not attrs:
            return
        # Direct attribute target keeps its own kind; deeper chains
        # are writes *through* the first attribute.
        if isinstance(target, ast.Attribute) and len(attrs) > 1:
            kind = "deep"
        if isinstance(target, ast.Subscript):
            kind = "subscript" if kind in ("assign", "aug") else kind
        attr = attrs[0]
        if root == "self" and self.self_class is not None:
            self.effects.self_writes.append(
                AttrWrite(attr=attr, kind=kind, line=line)
            )
            return
        # Subscript writes through a parameter are the output-buffer
        # idiom (the caller handed us somewhere to put results).
        if kind == "subscript" and root in self.param_names:
            return
        receiver_type = self.type_of(ast.Name(id=root))
        if receiver_type is not None:
            self.effects.typed_writes.append(
                TypedWrite(
                    cls=receiver_type, attr=attr, kind=kind, line=line
                )
            )

    def _concrete_type(self, node: ast.expr) -> Optional[str]:
        ref = self.type_of(node)
        if ref is None or "\x00" in ref:
            return None
        return ref

    # -- statements ---------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, "assign", node.lineno)
        # Constructor/typed-return assignments extend the local env.
        if len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            inferred = self._resolved_value_type(node.value)
            if inferred is not None:
                self.local_types[node.targets[0].id] = inferred
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, "assign", node.lineno)
        if isinstance(node.target, ast.Name):
            ref = self.resolver.resolve(node.annotation)
            if ref is not None:
                self.local_types[node.target.id] = ref
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, "aug", node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write(target, "del", node.lineno)
        self.generic_visit(node)

    def _resolved_value_type(self, value: ast.expr) -> Optional[str]:
        """Type of an assigned value: constructor calls, aliases of
        typed names/globals, and annotated-return method calls (the
        latter as deferred chains resolved at link time)."""
        return self.type_of(value)

    # -- calls and reads ----------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "parallel_safe" and isinstance(
            node.ctx, ast.Load
        ):
            self.effects.reads_parallel_safe = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._handle_call(node)
        self.generic_visit(node)

    def _handle_call(self, node: ast.Call) -> None:
        line = node.lineno
        callee = node.func
        if isinstance(callee, ast.Name):
            self._handle_name_call(callee.id, node, line)
            return
        if not isinstance(callee, ast.Attribute):
            self.effects.calls.append(
                CallRef(kind="unknown", line=line, name="<dynamic>")
            )
            return
        method = callee.attr
        receiver = callee.value

        if method in ("ProcessPoolExecutor", "Pool") and isinstance(
            receiver, ast.Name
        ):
            self.effects.constructs_pool.append(line)

        if method in INVALIDATE_METHODS:
            self.effects.invalidate_calls.append((method, line))

        if method == "submit" and node.args and isinstance(
            node.args[0], ast.Name
        ):
            submitted = node.args[0].id
            if submitted in self.symbols.functions:
                self.effects.pool_submits.append(
                    (
                        self.symbols.functions[submitted].qualname,
                        line,
                    )
                )

        # RNG draws: typed receiver or the repo's ``rng`` naming idiom.
        if method in RNG_METHODS and self._looks_like_rng(receiver):
            self.effects.rng_draws.append(line)

        # Cache boundary: calls through a cache/memo-hinted attribute.
        root, attrs = _root_attr_chain(receiver)
        if attrs and has_cache_hint(attrs[-1]):
            self.effects.calls.append(
                CallRef(kind="cache", line=line, name=method)
            )
            return

        # Mutator calls on self attributes are writes.
        if method in MUTATOR_METHODS and root == "self" and attrs:
            self.effects.self_writes.append(
                AttrWrite(
                    attr=attrs[0], kind="call", line=line, method=method
                )
            )

        receiver_type = self._receiver_class(receiver)
        if receiver_type is not None:
            if method in MUTATOR_METHODS and root != "self" and attrs:
                self.effects.typed_writes.append(
                    TypedWrite(
                        cls=receiver_type,
                        attr=attrs[0],
                        kind="call",
                        line=line,
                    )
                )
            self.effects.calls.append(
                CallRef(
                    kind="method",
                    line=line,
                    name=method,
                    cls=receiver_type,
                )
            )
            return

        # Module-function call through an import alias.
        if isinstance(receiver, ast.Name):
            target = self.symbols.imports.get(receiver.id)
            if target is not None and ":" not in target:
                self.effects.calls.append(
                    CallRef(
                        kind="func",
                        line=line,
                        name=method,
                        target=f"{target}:{method}",
                    )
                )
                return

        self.effects.calls.append(
            CallRef(kind="unknown", line=line, name=method)
        )

    def _handle_name_call(
        self, name: str, node: ast.Call, line: int
    ) -> None:
        if name == "getattr" and len(node.args) >= 2:
            probe = node.args[1]
            if (
                isinstance(probe, ast.Constant)
                and probe.value == "parallel_safe"
            ):
                self.effects.reads_parallel_safe = True
        if name in ("ProcessPoolExecutor", "Pool"):
            self.effects.constructs_pool.append(line)
            for keyword in node.keywords:
                if keyword.arg == "initializer" and isinstance(
                    keyword.value, ast.Name
                ):
                    init_name = keyword.value.id
                    if init_name in self.symbols.functions:
                        self.effects.pool_submits.append(
                            (
                                self.symbols.functions[
                                    init_name
                                ].qualname
                                + "#initializer",
                                line,
                            )
                        )
        if name in INVALIDATE_METHODS:
            self.effects.invalidate_calls.append((name, line))
        if name in self.symbols.functions:
            self.effects.calls.append(
                CallRef(
                    kind="func",
                    line=line,
                    name=name,
                    target=self.symbols.functions[name].qualname,
                )
            )
            return
        class_ref = self.resolver.resolve_name(name)
        if class_ref is not None:
            self.effects.calls.append(
                CallRef(kind="ctor", line=line, name=name, cls=class_ref)
            )
            return
        imported = self.symbols.imports.get(name)
        if imported is not None and ":" in imported:
            module, _, symbol = imported.partition(":")
            self.effects.calls.append(
                CallRef(
                    kind="func",
                    line=line,
                    name=symbol,
                    target=imported,
                )
            )
            return
        # Builtins are not project calls; anything else unresolved is
        # recorded as unknown so the degradation stays visible.
        if not hasattr(builtins, name):
            self.effects.calls.append(
                CallRef(kind="unknown", line=line, name=name)
            )

    def _looks_like_rng(self, receiver: ast.expr) -> bool:
        ref = self._concrete_type(receiver)
        if ref == RANDOM_REF:
            return True
        root, attrs = _root_attr_chain(receiver)
        terminal = attrs[-1] if attrs else root
        return terminal is not None and (
            terminal == "rng" or terminal.endswith("_rng")
        )

    def _receiver_class(self, receiver: ast.expr) -> Optional[str]:
        # May be a deferred attr/return chain; the linker resolves it
        # against the full class graph.
        return self.type_of(receiver)

    # -- scoping ------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are separate scopes; their bodies are not part
        # of this function's direct effects (documented limitation).
        return None

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return None

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return None


#: Sentinels for lazily-resolved chained types (never serialized).
_ATTR_TYPE_SENTINEL = "{base}\x00attr\x00{attr}"
_RETURN_TYPE_SENTINEL = "{base}\x00ret\x00{method}"


def _extract_function(
    fn: ast.FunctionDef,
    qualname: str,
    symbols: ModuleSymbols,
    resolver: AnnotationResolver,
    rel_path: str,
    cls: Optional[str],
) -> FunctionEffects:
    effects = FunctionEffects(
        qualname=qualname,
        module=symbols.module,
        rel_path=rel_path,
        name=fn.name,
        line=fn.lineno,
        cls=cls,
        is_init=fn.name in ("__init__", "__post_init__"),
    )
    param_types: Dict[str, str] = {}
    for param, annotation in _annotated_params(fn).items():
        ref = resolver.resolve(annotation)
        if ref is not None:
            param_types[param] = ref
    param_names = {
        a.arg
        for a in [
            *fn.args.posonlyargs,
            *fn.args.args,
            *fn.args.kwonlyargs,
        ]
    }
    extractor = _FunctionExtractor(
        effects=effects,
        resolver=resolver,
        symbols=symbols,
        param_types=param_types,
        param_names=param_names,
        self_class=cls,
    )
    # Pre-scan for ``global`` declarations (they may follow uses).
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Global):
            extractor.globals_declared.update(sub.names)
    for stmt in fn.body:
        extractor.visit(stmt)
    return effects


def extract_file_summary(rel_path: str, tree: ast.Module) -> FileSummary:
    """Symbols plus per-function effects for one file (cacheable)."""
    symbols = extract_symbols(rel_path, tree)
    resolver = AnnotationResolver(
        symbols.module, list(symbols.classes), symbols.imports
    )
    effects: Dict[str, FunctionEffects] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            qual = f"{symbols.module}:{node.name}"
            effects[qual] = _extract_function(
                node, qual, symbols, resolver, rel_path, cls=None
            )
        elif isinstance(node, ast.ClassDef):
            class_ref = f"{symbols.module}:{node.name}"
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    qual = f"{class_ref}.{stmt.name}"
                    effects[qual] = _extract_function(
                        stmt,
                        qual,
                        symbols,
                        resolver,
                        rel_path,
                        cls=class_ref,
                    )
    return FileSummary(symbols=symbols, effects=effects)


# ---------------------------------------------------------------------------
# Linking and traversal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolCall:
    """A call that crossed the protocol boundary during traversal."""

    protocol: str
    method: str
    caller: str  # qualname of the function containing the call
    line: int


@dataclass
class Reached:
    """One function reached from an entry point."""

    effects: FunctionEffects
    chain: Tuple[str, ...]  # qualnames from entry (inclusive) to here


class EffectIndex:
    """Linked project-wide effects with reachability queries."""

    def __init__(
        self, graph: ProjectGraph, summaries: Sequence[FileSummary]
    ) -> None:
        self.graph = graph
        self.functions: Dict[str, FunctionEffects] = {}
        for summary in summaries:
            self.functions.update(summary.effects)

    # -- type resolution for deferred chains --------------------------------

    def resolve_type(self, ref: Optional[str]) -> Optional[str]:
        """Resolve deferred attr/return chains to concrete class refs.

        Local extraction can only say "the type of ``ctx.diagnosis``
        is *whatever the `diagnosis` attribute of TuningContext is*";
        this resolves such chains against the linked class graph.
        """
        if ref is None or "\x00" not in ref:
            return ref
        head, mode, name = ref.rsplit("\x00", 2)
        base = self.resolve_type(head)
        if base is None:
            return None
        if mode == "attr":
            return self.resolve_type(self.graph.attr_type(base, name))
        if mode == "ret":
            method = self.graph.resolve_method(base, name)
            if method is None:
                return None
            return self.resolve_type(method.returns)
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(
        self, ref: CallRef
    ) -> Tuple[Optional[str], Optional[ProtocolCall]]:
        """Resolve one call ref to (callee qualname, protocol call).

        Exactly one of the pair is non-None for resolvable calls;
        both are None for unknown/cache/external calls.
        """
        if ref.kind == "func":
            if ref.target is not None and ref.target in self.functions:
                return ref.target, None
            return None, None
        if ref.kind == "ctor":
            if ref.cls is None:
                return None, None
            for ctor_name in ("__init__", "__post_init__"):
                method = self.graph.resolve_method(ref.cls, ctor_name)
                if method is not None and (
                    method.qualname in self.functions
                ):
                    return method.qualname, None
            return None, None
        if ref.kind == "method":
            cls = self.resolve_type(ref.cls)
            if cls is None:
                return None, None
            protocol = self.graph.protocol_for_call(cls)
            if protocol is not None:
                return None, ProtocolCall(
                    protocol=protocol,
                    method=ref.name,
                    caller="",
                    line=ref.line,
                )
            method = self.graph.resolve_method(cls, ref.name)
            if method is not None and method.qualname in self.functions:
                return method.qualname, None
            return None, None
        return None, None

    # -- reachability -------------------------------------------------------

    def walk_from(
        self, entry: str
    ) -> Tuple[List[Reached], List[Tuple[ProtocolCall, Tuple[str, ...]]]]:
        """BFS over the call graph from *entry*.

        Returns every reached function (first-found chain, entry
        included) and every protocol-boundary call encountered, with
        the chain of the calling function.  Deterministic: neighbors
        expand in call-site order, queue order is FIFO.
        """
        if entry not in self.functions:
            return [], []
        reached: List[Reached] = []
        protocol_calls: List[Tuple[ProtocolCall, Tuple[str, ...]]] = []
        seen: Set[str] = {entry}
        queue: deque[Tuple[str, Tuple[str, ...]]] = deque(
            [(entry, (entry,))]
        )
        while queue:
            qualname, chain = queue.popleft()
            effects = self.functions[qualname]
            reached.append(Reached(effects=effects, chain=chain))
            for ref in effects.calls:
                callee, protocol = self.resolve_call(ref)
                if protocol is not None:
                    protocol_calls.append(
                        (
                            ProtocolCall(
                                protocol=protocol.protocol,
                                method=protocol.method,
                                caller=qualname,
                                line=ref.line,
                            ),
                            chain,
                        )
                    )
                elif callee is not None and callee not in seen:
                    seen.add(callee)
                    queue.append((callee, chain + (callee,)))
        return reached, protocol_calls

    # -- convenience --------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionEffects]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def pool_entry_points(self) -> List[Tuple[str, FunctionEffects]]:
        """(submitted qualname, submitting function) pairs, sorted."""
        entries: List[Tuple[str, FunctionEffects]] = []
        for effects in self.iter_functions():
            for target, _line in effects.pool_submits:
                if target.endswith("#initializer"):
                    continue
                entries.append((target, effects))
        return sorted(entries, key=lambda pair: pair[0])
