"""Round lifecycle: who owns a tuning round, and when rounds fire.

:mod:`repro.core.pipeline` owns round *orchestration* — the staged
Observe → Diagnose → Candidates → Search → Apply walk over one shared
:class:`~repro.core.pipeline.TuningContext`.  This module owns the
round *lifecycle*: the decision that a round is due, the accounting of
how many rounds an owner may still spend, and the act of running one
round against an advisor's components.

Two callers share it:

* the library path — :meth:`AutoIndexAdvisor.tune` delegates to
  :func:`run_round`, so a hand-driven advisor and a daemon-driven one
  execute byte-for-byte the same orchestration;
* the serving daemon — :class:`repro.serve.registry.TenantRegistry`
  wraps each tenant's advisor in a :class:`TuningSession`, whose
  :class:`RoundPolicy` decides *when* rounds fire from the ingest
  stream and whose :class:`RoundBudget` caps how many rounds the
  tenant may consume.

The split is what makes the daemon's determinism contract provable:
a session that fires rounds at the same statement offsets as a manual
``observe()``/``tune()`` loop produces identical reports, because the
only thing the session adds is the firing decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.pipeline import TuningReport
from repro.core.templates import QueryTemplate

if TYPE_CHECKING:
    from repro.core.advisor import AutoIndexAdvisor

__all__ = [
    "RoundBudget",
    "RoundPolicy",
    "TuningSession",
    "run_round",
]


def run_round(
    advisor: "AutoIndexAdvisor",
    force: bool = True,
    trigger_threshold: float = 0.1,
    scope_tables: Optional[List[str]] = None,
) -> TuningReport:
    """Run one tuning round against an advisor's components.

    This is the single place a round is born: assemble the shared
    context from the advisor's long-lived components, run the staged
    pipeline over it, finalize the report, and record it in the
    advisor's history.  Both the library ``tune()`` facade and the
    daemon's per-tenant sessions call through here, which is the
    parity guarantee between the two paths.
    """
    ctx = advisor.make_context(
        force=force,
        trigger_threshold=trigger_threshold,
        scope_tables=scope_tables,
    )
    advisor.pipeline.run(ctx)
    report = ctx.finalize(advisor.statements_analyzed)
    advisor.tuning_history.append(report)
    return report


@dataclass(frozen=True)
class RoundPolicy:
    """When does a round fire for a continuously-ingesting owner?

    ``every_statements`` fires a round each time that many statements
    have been ingested since the last round; ``min_statements`` holds
    the very first round back until the store has seen enough of the
    workload to be worth diagnosing.  ``force``/``trigger_threshold``
    are passed through to the round (``force=False`` keeps the
    paper's monitored trigger in charge — a due round may still be
    skipped by diagnosis).
    """

    every_statements: int = 500
    min_statements: int = 1
    force: bool = True
    trigger_threshold: float = 0.1

    def __post_init__(self) -> None:
        if self.every_statements < 1:
            raise ValueError("every_statements must be >= 1")
        if self.min_statements < 0:
            raise ValueError("min_statements must be >= 0")


@dataclass
class RoundBudget:
    """How many rounds an owner may still spend (``None`` = unlimited).

    The daemon's admission control charges one unit per round *when
    the round runs* — a due-but-never-admitted round costs nothing.
    """

    limit: Optional[int] = None
    spent: int = 0

    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit

    def charge(self) -> None:
        if self.exhausted():
            raise RuntimeError(
                f"round budget exhausted ({self.spent}/{self.limit})"
            )
        self.spent += 1

    def remaining(self) -> Optional[int]:
        if self.limit is None:
            return None
        return max(self.limit - self.spent, 0)


class TuningSession:
    """One advisor's round lifecycle over a continuous query stream.

    Owns the ingest counter, the due-round decision, and the round
    budget for a single advisor (one tenant, in the daemon).  It never
    fires a round by itself — callers ask :meth:`due` and invoke
    :meth:`run_round` when admission control says so, which keeps the
    firing schedule in the scheduler's hands and the session
    deterministic: its state is a pure function of the ingest sequence
    and the rounds run so far.
    """

    def __init__(
        self,
        advisor: "AutoIndexAdvisor",
        policy: Optional[RoundPolicy] = None,
        budget: Optional[RoundBudget] = None,
    ):
        self.advisor = advisor
        self.policy = policy if policy is not None else RoundPolicy()
        self.budget = budget if budget is not None else RoundBudget()
        self.ingested = 0
        self.ingested_at_last_round = 0
        self.rounds_completed = 0
        self.last_report: Optional[TuningReport] = None

    def ingest(self, sql: str) -> Optional[QueryTemplate]:
        """Feed one statement to the advisor's observer."""
        template = self.advisor.observe(sql)
        self.ingested += 1
        return template

    def pending_statements(self) -> int:
        """Statements ingested since the last round fired."""
        return self.ingested - self.ingested_at_last_round

    def due(self) -> bool:
        """True when the policy says a round should fire now."""
        if self.budget.exhausted():
            return False
        if self.ingested < self.policy.min_statements:
            return False
        return self.pending_statements() >= self.policy.every_statements

    def run_round(self) -> TuningReport:
        """Run one round now (charging the budget); callers are
        expected to have won admission first."""
        self.budget.charge()
        self.ingested_at_last_round = self.ingested
        report = run_round(
            self.advisor,
            force=self.policy.force,
            trigger_threshold=self.policy.trigger_threshold,
        )
        self.rounds_completed += 1
        self.last_report = report
        return report

    def counters(self) -> dict:
        """Lifecycle counters for status reporting."""
        return {
            "ingested": self.ingested,
            "pending_statements": self.pending_statements(),
            "rounds_completed": self.rounds_completed,
            "round_budget_remaining": self.budget.remaining(),
            "due": self.due(),
        }
