"""The AutoIndex advisor: the orchestrating system of the paper.

Wires the pipeline together exactly as Section III describes:

    workload → SQL2Template → candidate generation → MCTS index
    update (add/remove under a storage budget) → apply to the DB,

with the index-benefit estimator (static what-if model until enough
history is recorded, then the trained one-layer deep regression)
supplying every cost evaluated inside MCTS, and the diagnosis module
deciding when tuning is worthwhile.

The runtime is resilient by construction: DDL goes through a
transactional :class:`~repro.core.changeset.IndexChangeSet` (full
rollback on mid-apply failure), freshly-applied indexes sit in a
post-apply observation window and are auto-reverted if they regress,
an unusable estimator degrades the round to a skipped report instead
of an exception, and checkpoints are crash-safe (atomic writes,
previous-generation fallback on load).
"""

from __future__ import annotations

import io
import json
import random
from typing import List, Optional, Sequence

from repro.core import checkpoint
from repro.core.lifecycle import run_round
from repro.core.candidates import CandidateGenerator
from repro.core.changeset import IndexChangeSet
from repro.core.diagnosis import IndexDiagnosis, IndexProblemReport
from repro.core.estimator import (
    BenefitEstimator,
    DeepIndexEstimator,
    EstimatorUnavailable,
)
from repro.core.mcts import MctsIndexSelector
from repro.core.safety import (
    PendingRecommendation,
    SafetyController,
)
from repro.core.pipeline import (
    TuningContext,
    TuningPipeline,
    TuningReport,
)
from repro.core.templates import QueryTemplate, TemplateStore
from repro.engine.faults import FaultError
from repro.engine.index import IndexDef
from repro.ports.backend import TuningBackend
from repro.sql.lexer import SqlSyntaxError

__all__ = ["AutoIndexAdvisor", "TuningReport"]


class AutoIndexAdvisor:
    """Incremental index management for one database.

    Typical use::

        advisor = AutoIndexAdvisor(db, storage_budget=50 * MiB)
        for q in workload:
            db.execute(q.sql)
            advisor.observe(q.sql)
        advisor.tune()          # diagnose → candidates → MCTS → apply

    Parameters mirror the paper's knobs: template capacity, the
    candidate selectivity threshold, the MCTS exploration constant
    gamma, and the storage budget. ``mcts_deadline_seconds`` /
    ``mcts_max_evaluations`` bound the search (anytime: best-so-far
    is returned when the deadline hits).
    """

    def __init__(
        self,
        db: TuningBackend,
        storage_budget: Optional[int] = None,
        template_capacity: int = 5000,
        selectivity_threshold: float = 1.0 / 3.0,
        gamma: float = 0.4,
        mcts_iterations: int = 60,
        rollouts: int = 3,
        top_templates: int = 120,
        use_templates: bool = True,
        train_sample_rate: float = 0.05,
        seed: int = 17,
        delta_costing: bool = True,
        mcts_deadline_seconds: Optional[float] = None,
        mcts_max_evaluations: Optional[int] = None,
        mcts_workers: int = 1,
        pipeline: Optional[TuningPipeline] = None,
        incremental_diagnosis: bool = True,
        apply_mode: str = "auto",
        regret_bound: Optional[float] = None,
        regret_headroom: float = 1.0,
        safety: Optional[SafetyController] = None,
    ):
        self.db = db
        self.storage_budget = storage_budget
        self.top_templates = top_templates
        self.use_templates = use_templates
        self.train_sample_rate = train_sample_rate
        self.mcts_deadline_seconds = mcts_deadline_seconds
        # The store parses through the backend on raw-cache misses,
        # keeping the engine's statement cache and injected parser
        # faults on the miss path.
        self.store = TemplateStore(
            capacity=template_capacity,
            parse_fn=db.parse_statement,
        )
        self.generator = CandidateGenerator(
            db, selectivity_threshold=selectivity_threshold
        )
        self.estimator = BenefitEstimator(db)
        # One seeded stream shared by the whole advisor; the context
        # hands it to every stage so a round's randomness is a single
        # reproducible sequence.
        self.rng = random.Random(seed)
        self.selector = MctsIndexSelector(
            self.estimator,
            gamma=gamma,
            iterations=mcts_iterations,
            rollouts=rollouts,
            seed=seed,
            rng=self.rng,
            delta_costing=delta_costing,
            deadline_seconds=mcts_deadline_seconds,
            max_evaluations=mcts_max_evaluations,
            workers=mcts_workers,
        )
        self.diagnosis = IndexDiagnosis(
            db, self.store, self.generator,
            incremental=incremental_diagnosis,
        )
        self.pipeline = (
            pipeline if pipeline is not None else TuningPipeline()
        )
        # The regret-bounded apply layer: benefit ledger, shadow
        # gate, and the DBA review queue. With the defaults
        # (apply_mode="auto", no regret_bound) the gate never holds a
        # change back — the ledger still records, so enabling a bound
        # later starts from real history. A prebuilt controller (the
        # tenant registry constructs one per tenant from its
        # SafetyPolicy) takes precedence over the scalar knobs.
        self.safety = (
            safety
            if safety is not None
            else SafetyController(
                apply_mode=apply_mode,
                regret_bound=regret_bound,
                regret_headroom=regret_headroom,
            )
        )
        self.statements_analyzed = 0
        self.observe_failures = 0
        self._observed_since_training = 0
        self.tuning_history: List[TuningReport] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def observe(self, sql: str) -> Optional[QueryTemplate]:
        """Feed one executed query into SQL2Template.

        With ``use_templates=False`` (the Figure 8 query-level
        ablation) every distinct statement text is analysed
        individually — no workload compression.

        A statement that cannot be parsed (syntax error, or an
        injected parser fault) is dropped and counted in
        ``observe_failures`` — observation is on the hot path of the
        serving workload and must never take it down.

        The store owns the parse now (via its raw-key fast path):
        repeated statement shapes resolve through a lex-only
        normalization and never reach the parser; only cache misses
        parse, through ``db.parse_statement`` with its statement
        cache and fault points intact.
        """
        if self.use_templates:
            try:
                template = self.store.observe(sql)
            except (SqlSyntaxError, FaultError):
                self.observe_failures += 1
                return None
            if template.frequency <= 1.0:
                # Only brand-new templates cost analysis work.
                self.statements_analyzed += 1
            if self.store.drift_detected():
                self.store.handle_drift()
            return template
        # Query-level ablation: no compression, every statement is
        # analysed individually (raw SQL text is the store key).
        try:
            template = self.store.observe_raw(sql)
        except (SqlSyntaxError, FaultError):
            self.observe_failures += 1
            return None
        self.statements_analyzed += 1
        return template

    def observe_queries(self, queries: Sequence) -> None:
        """Observe a batch (items may be Query objects or SQL strings)."""
        for query in queries:
            sql = getattr(query, "sql", query)
            self.observe(sql)

    def record_execution(self, sql: str, actual_cost: float) -> None:
        """Log a (features, measured-cost) training pair.

        Call with a sample of executed queries (the paper samples
        0.01% of the banking workload); the recorded history trains
        the deep estimator on :meth:`train_estimator`.
        """
        statement = self.db.parse_statement(sql)
        self.estimator.record_execution(statement, actual_cost)
        self._observed_since_training += 1

    def train_estimator(self):
        """Fit the deep regression on recorded history (if any)."""
        if not self.estimator.history:
            return None
        metrics = self.estimator.train()
        self._observed_since_training = 0
        return metrics

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_state(self, directory) -> dict:
        """Persist advisor state (templates + trained estimator).

        Crash-safe: every component is written atomically (temp file
        + fsync + rename), the previous generation is retained under
        ``.prev``, and a checksummed manifest lands last — see
        :mod:`repro.core.checkpoint`. A crash at any point leaves a
        checkpoint :meth:`load_state` can restore. Returns the
        manifest written.

        The policy tree itself is rebuilt cheaply from the saved
        templates on the next tuning round; what must survive a
        restart is the workload knowledge and the learned weights.
        """
        components = {
            "templates.json": json.dumps(self.store.to_dict()).encode(
                "utf-8"
            ),
            # Safety layer + observation window: the benefit ledger's
            # open claims and the post-apply watch list must survive a
            # crash, or a pending auto-revert (and the regret
            # accounting behind the bound) is silently forgotten.
            "safety.json": json.dumps(
                {
                    "safety": self.safety.to_dict(),
                    "watched": self.diagnosis.watched_state(),
                }
            ).encode("utf-8"),
        }
        if isinstance(self.estimator.model, DeepIndexEstimator) and (
            self.estimator.model.trained
        ):
            buffer = io.BytesIO()
            self.estimator.model.save(buffer)
            components["estimator.npz"] = buffer.getvalue()
        return checkpoint.write_checkpoint(
            directory, components, faults=self.db.faults
        )

    def load_state(self, directory) -> checkpoint.CheckpointLoadReport:
        """Restore state saved with :meth:`save_state`.

        Tolerant of truncated, corrupt, or partially-written
        checkpoints: each component independently falls back to its
        previous generation, and a component with no loadable copy is
        skipped (the in-memory state is kept). Never raises; the
        returned report says what was restored from where.
        """
        faults = self.db.faults
        report = checkpoint.CheckpointLoadReport()
        manifest = checkpoint.read_manifest(directory, faults=faults)
        report.manifest_found = manifest is not None
        store = checkpoint.read_component(
            directory,
            "templates.json",
            lambda blob: TemplateStore.from_dict(
                json.loads(blob.decode("utf-8"))
            ),
            manifest,
            report,
            faults=faults,
        )
        if store is not None:
            # The checkpoint carries no raw-key cache (it is a pure
            # derivative); rebind the backend parser for misses and
            # drop the diagnosis caches, which reference the old
            # store's shard versions.
            store.parse_fn = self.db.parse_statement
            self.store = store
            self.diagnosis.store = store
            self.diagnosis.invalidate_caches()
        model = checkpoint.read_component(
            directory,
            "estimator.npz",
            lambda blob: DeepIndexEstimator.load(io.BytesIO(blob)),
            manifest,
            report,
            faults=faults,
        )
        if model is not None:
            self.estimator.model = model
            self.estimator.degraded_reason = None
            self.estimator.clear_cache()
        state = checkpoint.read_component(
            directory,
            "safety.json",
            lambda blob: json.loads(blob.decode("utf-8")),
            manifest,
            report,
            faults=faults,
        )
        if state is not None:
            self.safety.restore(state.get("safety", {}))
            self.diagnosis.restore_watched(state.get("watched", ()))
        return report

    # ------------------------------------------------------------------
    # tuning
    # ------------------------------------------------------------------

    def diagnose(self) -> IndexProblemReport:
        return self.diagnosis.diagnose(
            protected=self.protected_indexes(),
            top_templates=self.top_templates,
        )

    def protected_indexes(self) -> List[IndexDef]:
        """Primary-key / unique indexes are never dropped."""
        return [d for d in self.db.index_defs() if d.unique]

    def make_context(
        self,
        force: bool = True,
        trigger_threshold: float = 0.1,
        scope_tables: Optional[List[str]] = None,
    ) -> TuningContext:
        """Assemble the shared context for one tuning round."""
        return TuningContext(
            backend=self.db,
            store=self.store,
            generator=self.generator,
            estimator=self.estimator,
            selector=self.selector,
            diagnosis=self.diagnosis,
            rng=self.rng,
            faults=getattr(self.db, "faults", None),
            storage_budget=self.storage_budget,
            deadline_seconds=self.mcts_deadline_seconds,
            top_templates=self.top_templates,
            protected=self.protected_indexes(),
            force=force,
            trigger_threshold=trigger_threshold,
            scope_tables=scope_tables,
            safety=self.safety,
        )

    # ------------------------------------------------------------------
    # review mode (DBA in the loop)
    # ------------------------------------------------------------------

    def pending_recommendations(self) -> List[PendingRecommendation]:
        """Gated recommendations awaiting a DBA verdict."""
        return self.safety.queue.pending()

    def accept_recommendation(
        self, rec_id: int, note: str = ""
    ) -> PendingRecommendation:
        """DBA accepts: apply the queued change transactionally.

        The apply goes through the same :class:`IndexChangeSet`
        guarantees as an autonomous round (full rollback on
        mid-apply failure, post-apply observation window, benefit
        ledger claim), so an accepted recommendation is exactly as
        accountable as an automatic one.
        """
        rec = self.safety.queue.resolve(rec_id, accept=True, note=note)
        self._apply_accepted(rec)
        return rec

    def reject_recommendation(
        self, rec_id: int, note: str = ""
    ) -> PendingRecommendation:
        """DBA rejects: the change is never applied, and the verdict
        becomes estimator training data (the affected templates are
        labelled with their *current* cost under the rejected
        configuration — "no improvement")."""
        rec = self.safety.queue.resolve(
            rec_id, accept=False, note=note
        )
        self._train_on_rejection(rec)
        return rec

    def process_review_verdicts(self) -> List[PendingRecommendation]:
        """Act on verdicts recorded out of process.

        The review CLI resolves recommendations directly against a
        checkpoint directory; after :meth:`load_state` those arrive
        as accepted/rejected-but-unconsumed entries. Accepted changes
        are applied, rejections are folded into training data.
        """
        processed: List[PendingRecommendation] = []
        for rec in self.safety.queue.unconsumed_verdicts():
            if rec.status == "accepted":
                self._apply_accepted(rec)
            else:
                self._train_on_rejection(rec)
            processed.append(rec)
        return processed

    def regret_summary(self) -> dict:
        """Ledger counters plus the gate's current posture."""
        summary = self.safety.ledger.summary()
        summary["gated_rounds"] = self.safety.gated_rounds
        summary["shadow_only"] = self.safety.shadow_only()
        summary["regret_bound"] = self.safety.regret_bound
        return summary

    def _apply_accepted(self, rec: PendingRecommendation) -> None:
        changeset = IndexChangeSet(self.db)
        try:
            changeset.apply(drops=rec.removals, creates=rec.additions)
        except Exception:
            # Catalog restored; the verdict stays unconsumed so the
            # apply can be retried once the fault clears.
            changeset.rollback()
            raise
        self.diagnosis.register_applied(rec.additions)
        watchable = [d for d in rec.additions if not d.unique]
        for definition in watchable:
            self.safety.ledger.record_prediction(
                definition, rec.predicted_benefit / len(watchable)
            )
        if rec.additions or rec.removals:
            self.estimator.clear_cache()
            self.db.reset_index_usage()
        rec.consumed = True

    def _train_on_rejection(self, rec: PendingRecommendation) -> None:
        existing = self.db.index_defs()
        removed = {d.key for d in rec.removals}
        candidate = [d for d in existing if d.key not in removed]
        candidate.extend(rec.additions)
        tables = set(rec.explanation.affected_tables) | {
            d.table for d in rec.additions
        } | {d.table for d in rec.removals}
        samples = 0
        for template in self.store.templates(top=self.top_templates):
            if tables and not (set(template.tables) & tables):
                continue
            try:
                current = self.estimator.query_cost(
                    template, existing
                )
                self.estimator.record_template_feedback(
                    template, candidate, current
                )
            except EstimatorUnavailable:
                continue
            samples += 1
        self._observed_since_training += samples
        rec.consumed = True

    def tune(
        self,
        force: bool = True,
        trigger_threshold: float = 0.1,
        scope_tables: Optional[List[str]] = None,
    ) -> TuningReport:
        """Run one incremental tuning round and apply the result.

        With ``force=False`` the round is skipped unless the diagnosis
        module reports enough index problems (the paper's monitored
        trigger).

        The round runs the staged pipeline (Observe → Diagnose →
        Candidates → Search → Apply; see
        :mod:`repro.core.pipeline`) and is guarded end to end:
        recently-applied indexes whose observation window shows
        regression are reverted first; an unusable estimator turns
        the round into a skipped report with a ``degraded`` reason;
        and the apply itself is transactional — a failure
        mid-sequence rolls the catalog back to exactly the pre-apply
        configuration.

        This facade delegates to :func:`repro.core.lifecycle.run_round`
        — the same entry point the serving daemon's per-tenant
        sessions use — so the library path and the daemon path are
        one code path.
        """
        return run_round(
            self,
            force=force,
            trigger_threshold=trigger_threshold,
            scope_tables=scope_tables,
        )
