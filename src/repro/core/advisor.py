"""The AutoIndex advisor: the orchestrating system of the paper.

Wires the pipeline together exactly as Section III describes:

    workload → SQL2Template → candidate generation → MCTS index
    update (add/remove under a storage budget) → apply to the DB,

with the index-benefit estimator (static what-if model until enough
history is recorded, then the trained one-layer deep regression)
supplying every cost evaluated inside MCTS, and the diagnosis module
deciding when tuning is worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.candidates import CandidateGenerator
from repro.core.diagnosis import IndexDiagnosis, IndexProblemReport
from repro.core.estimator import BenefitEstimator, DeepIndexEstimator
from repro.core.mcts import MctsIndexSelector, SearchResult
from repro.core.templates import QueryTemplate, TemplateStore
from repro.engine.database import Database
from repro.engine.index import IndexDef
from repro.engine.metrics import Stopwatch
from repro.sql import ast


@dataclass
class TuningReport:
    """What one tuning round did and what it cost."""

    created: List[IndexDef] = field(default_factory=list)
    dropped: List[IndexDef] = field(default_factory=list)
    estimated_benefit: float = 0.0
    baseline_cost: float = 0.0
    templates_used: int = 0
    candidates_considered: int = 0
    estimator_calls: int = 0
    plans_computed: int = 0
    cache_hit_rate: float = 0.0
    statements_analyzed: int = 0
    elapsed_seconds: float = 0.0
    search: Optional[SearchResult] = None
    skipped: bool = False

    @property
    def changed(self) -> bool:
        return bool(self.created or self.dropped)

    def render(self) -> str:
        """Human-readable one-round summary (for logs and examples)."""
        if self.skipped:
            return "tuning skipped (no index problems detected)"
        lines = []
        if self.created:
            lines.append(
                "created: " + ", ".join(str(d) for d in self.created)
            )
        if self.dropped:
            lines.append(
                "dropped: " + ", ".join(str(d) for d in self.dropped)
            )
        if not self.changed:
            lines.append("no index changes")
        if self.baseline_cost > 0:
            lines.append(
                f"estimated benefit: {self.estimated_benefit:,.1f} "
                f"of {self.baseline_cost:,.1f} "
                f"({100 * self.estimated_benefit / self.baseline_cost:.1f}%)"
            )
        lines.append(
            f"analysed {self.templates_used} templates, "
            f"{self.candidates_considered} candidates, "
            f"{self.estimator_calls} estimator calls "
            f"({self.plans_computed} plans, "
            f"{100 * self.cache_hit_rate:.0f}% cost-cache hits) "
            f"in {self.elapsed_seconds:.2f}s"
        )
        return "\n".join(lines)


class AutoIndexAdvisor:
    """Incremental index management for one database.

    Typical use::

        advisor = AutoIndexAdvisor(db, storage_budget=50 * MiB)
        for q in workload:
            db.execute(q.sql)
            advisor.observe(q.sql)
        advisor.tune()          # diagnose → candidates → MCTS → apply

    Parameters mirror the paper's knobs: template capacity, the
    candidate selectivity threshold, the MCTS exploration constant
    gamma, and the storage budget.
    """

    def __init__(
        self,
        db: Database,
        storage_budget: Optional[int] = None,
        template_capacity: int = 5000,
        selectivity_threshold: float = 1.0 / 3.0,
        gamma: float = 0.4,
        mcts_iterations: int = 60,
        rollouts: int = 3,
        top_templates: int = 120,
        use_templates: bool = True,
        train_sample_rate: float = 0.05,
        seed: int = 17,
        delta_costing: bool = True,
    ):
        self.db = db
        self.storage_budget = storage_budget
        self.top_templates = top_templates
        self.use_templates = use_templates
        self.train_sample_rate = train_sample_rate
        self.store = TemplateStore(capacity=template_capacity)
        self.generator = CandidateGenerator(
            db.catalog, selectivity_threshold=selectivity_threshold
        )
        self.estimator = BenefitEstimator(db)
        self.selector = MctsIndexSelector(
            self.estimator,
            gamma=gamma,
            iterations=mcts_iterations,
            rollouts=rollouts,
            seed=seed,
            delta_costing=delta_costing,
        )
        self.diagnosis = IndexDiagnosis(db, self.store, self.generator)
        self.statements_analyzed = 0
        self._observed_since_training = 0
        self.tuning_history: List[TuningReport] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def observe(self, sql: str) -> QueryTemplate:
        """Feed one executed query into SQL2Template.

        With ``use_templates=False`` (the Figure 8 query-level
        ablation) every distinct statement text is analysed
        individually — no workload compression.
        """
        if self.use_templates:
            statement = self.db.parse_statement(sql)
            template = self.store.observe(sql, statement)
            if template.frequency <= 1.0:
                # Only brand-new templates cost analysis work.
                self.statements_analyzed += 1
            if self.store.drift_detected():
                self.store.handle_drift()
            return template
        self.statements_analyzed += 1
        statement = self.db.parse_statement(sql)
        template = QueryTemplate(
            fingerprint=sql,
            statement=statement,
            frequency=1.0,
            sample_sql=sql,
            is_write=ast.is_write(statement),
        )
        existing = self.store.get(sql)
        if existing is None:
            self.store._templates[sql] = template  # raw-text store
            existing = template
        existing.frequency += 1.0
        existing.window_frequency += 1.0
        return existing

    def observe_queries(self, queries: Sequence) -> None:
        """Observe a batch (items may be Query objects or SQL strings)."""
        for query in queries:
            sql = getattr(query, "sql", query)
            self.observe(sql)

    def record_execution(self, sql: str, actual_cost: float) -> None:
        """Log a (features, measured-cost) training pair.

        Call with a sample of executed queries (the paper samples
        0.01% of the banking workload); the recorded history trains
        the deep estimator on :meth:`train_estimator`.
        """
        statement = self.db.parse_statement(sql)
        self.estimator.record_execution(statement, actual_cost)
        self._observed_since_training += 1

    def train_estimator(self):
        """Fit the deep regression on recorded history (if any)."""
        if not self.estimator.history:
            return None
        metrics = self.estimator.train()
        self._observed_since_training = 0
        return metrics

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_state(self, directory) -> None:
        """Persist advisor state (templates + trained estimator).

        The policy tree itself is rebuilt cheaply from the saved
        templates on the next tuning round; what must survive a
        restart is the workload knowledge and the learned weights.
        """
        import json
        import pathlib

        path = pathlib.Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        (path / "templates.json").write_text(
            json.dumps(self.store.to_dict())
        )
        if isinstance(self.estimator.model, DeepIndexEstimator) and (
            self.estimator.model.trained
        ):
            self.estimator.model.save(path / "estimator.npz")

    def load_state(self, directory) -> None:
        """Restore state saved with :meth:`save_state`."""
        import json
        import pathlib

        path = pathlib.Path(directory)
        store_file = path / "templates.json"
        if store_file.exists():
            self.store = TemplateStore.from_dict(
                json.loads(store_file.read_text())
            )
            self.diagnosis.store = self.store
        model_file = path / "estimator.npz"
        if model_file.exists():
            self.estimator.model = DeepIndexEstimator.load(model_file)
            self.estimator.clear_cache()

    # ------------------------------------------------------------------
    # tuning
    # ------------------------------------------------------------------

    def diagnose(self) -> IndexProblemReport:
        return self.diagnosis.diagnose(
            protected=self.protected_indexes(),
            top_templates=self.top_templates,
        )

    def protected_indexes(self) -> List[IndexDef]:
        """Primary-key / unique indexes are never dropped."""
        return [d for d in self.db.index_defs() if d.unique]

    def tune(
        self,
        force: bool = True,
        trigger_threshold: float = 0.1,
    ) -> TuningReport:
        """Run one incremental tuning round and apply the result.

        With ``force=False`` the round is skipped unless the diagnosis
        module reports enough index problems (the paper's monitored
        trigger).
        """
        timer = Stopwatch()
        calls_before = self.estimator.estimate_calls
        plans_before = self.estimator.plans_computed
        report = TuningReport()

        if not force:
            problems = self.diagnose()
            if not problems.should_tune(trigger_threshold):
                report.skipped = True
                report.elapsed_seconds = timer.elapsed()
                self.tuning_history.append(report)
                return report

        templates = self.store.templates(top=self.top_templates)
        candidates = self.generator.generate(templates)
        existing = self.db.index_defs()
        protected = self.protected_indexes()

        result = self.selector.search(
            existing=existing,
            candidates=[c.definition for c in candidates],
            templates=templates,
            budget_bytes=self.storage_budget,
            protected=protected,
        )

        for definition in result.removals:
            self.db.drop_index(definition)
        for definition in result.additions:
            self.db.create_index(definition)
        if result.additions or result.removals:
            self.estimator.clear_cache()
            self.db.reset_index_usage()

        report.created = result.additions
        report.dropped = result.removals
        report.estimated_benefit = result.best_benefit
        report.baseline_cost = result.baseline_cost
        report.templates_used = len(templates)
        report.candidates_considered = len(candidates)
        report.estimator_calls = (
            self.estimator.estimate_calls - calls_before
        )
        report.plans_computed = (
            self.estimator.plans_computed - plans_before
        )
        report.cache_hit_rate = result.cache_stats["cost"].hit_rate
        report.statements_analyzed = self.statements_analyzed
        report.search = result
        report.elapsed_seconds = timer.elapsed()
        self.tuning_history.append(report)
        self.store.begin_tuning_window()
        return report
