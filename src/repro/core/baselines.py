"""Baseline advisors the paper compares against (Section VI-A).

* :class:`DefaultAdvisor` — keeps the initial configuration (primary
  keys for the testing datasets, the DBA's manual indexes for the
  banking scenario) and never changes anything;
* :class:`GreedyAdvisor` — the heuristic used by classic tools
  ([2], [3], [26]): enumerate candidates from *every observed query*
  (no templates), evaluate each candidate's individual benefit with
  the same cost estimation method AutoIndex uses (for fairness), and
  add the highest-benefit candidates until the storage budget is hit.
  No index removal, no combined-benefit reasoning;
* :class:`QueryLevelAdvisor` — AutoIndex with SQL2Template disabled
  (every query analysed individually), the Figure 8 ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.advisor import AutoIndexAdvisor, TuningReport
from repro.core.candidates import CandidateGenerator
from repro.core.estimator import BenefitEstimator
from repro.core.templates import QueryTemplate
from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef
from repro.engine.metrics import Stopwatch
from repro.sql import ast


class DefaultAdvisor:
    """The do-nothing baseline: whatever indexes exist, stay."""

    name = "Default"

    def __init__(self, db: TuningBackend):
        self.db = db
        self.statements_analyzed = 0

    def observe(self, sql: str) -> None:
        return None

    def observe_queries(self, queries: Sequence) -> None:
        return None

    def tune(self, force: bool = True) -> TuningReport:
        return TuningReport(skipped=True)


class GreedyAdvisor:
    """Classic greedy index selection over per-query candidates.

    Faithful to the paper's description of the [2]/[3]/[26]-style
    baseline: each candidate's benefit is estimated *individually*
    against the existing configuration, candidates are ranked once,
    and the top ones are added until the budget is exhausted (top-k).
    There is no combined-benefit reasoning and no index removal.

    ``marginal=True`` upgrades it to hill-climbing (marginal benefit
    re-evaluated against the already-chosen set at every step) — used
    by the ablation benchmarks as a stronger greedy.
    """

    name = "Greedy"

    def __init__(
        self,
        db: TuningBackend,
        storage_budget: Optional[int] = None,
        max_candidates: int = 40,
        selectivity_threshold: float = 1.0 / 3.0,
        marginal: bool = False,
    ):
        self.db = db
        self.storage_budget = storage_budget
        self.max_candidates = max_candidates
        self.marginal = marginal
        self.generator = CandidateGenerator(
            db, selectivity_threshold=selectivity_threshold
        )
        self.estimator = BenefitEstimator(db)
        # Greedy analyses every query individually: dedupe only on the
        # literal SQL text (not on templates).
        self._observed: Dict[str, QueryTemplate] = {}
        self.statements_analyzed = 0
        self.tuning_history: List[TuningReport] = []

    # -- observation -------------------------------------------------------------

    def observe(self, sql: str) -> None:
        """Record one query (Greedy analyses every statement)."""
        self.statements_analyzed += 1
        entry = self._observed.get(sql)
        if entry is None:
            statement = self.db.parse_statement(sql)
            entry = QueryTemplate(
                fingerprint=sql,
                statement=statement,
                sample_sql=sql,
                is_write=ast.is_write(statement),
            )
            self._observed[sql] = entry
        entry.frequency += 1.0
        entry.window_frequency += 1.0

    def observe_queries(self, queries: Sequence) -> None:
        for query in queries:
            self.observe(getattr(query, "sql", query))

    # -- tuning ---------------------------------------------------------------------

    def tune(self, force: bool = True) -> TuningReport:
        """One-shot greedy selection over all observed queries."""
        timer = Stopwatch()
        calls_before = self.estimator.estimate_calls
        workload = list(self._observed.values())

        collected: Dict = {}
        for entry in workload:
            for definition in self.generator.for_statement(entry.statement):
                slot = collected.setdefault(definition.key, [definition, 0.0])
                slot[1] += entry.frequency
        existing = self.db.index_defs()
        existing_keys = {d.key for d in existing}
        candidates = [
            definition
            for key, (definition, _support) in sorted(
                collected.items(), key=lambda kv: -kv[1][1]
            )
            if key not in existing_keys
        ][: self.max_candidates]

        report = TuningReport(baseline_cost=self.estimator.workload_cost(
            workload, existing
        ))
        if self.marginal:
            chosen, current_cost = self._hill_climb(
                workload, existing, candidates, report.baseline_cost
            )
        else:
            chosen, current_cost = self._top_k(
                workload, existing, candidates, report.baseline_cost
            )

        for definition in chosen:
            self.db.create_index(definition)
        if chosen:
            self.estimator.clear_cache()

        report.created = chosen
        report.estimated_benefit = report.baseline_cost - current_cost
        report.candidates_considered = len(candidates)
        report.templates_used = len(workload)
        report.estimator_calls = self.estimator.estimate_calls - calls_before
        report.statements_analyzed = self.statements_analyzed
        report.elapsed_seconds = timer.elapsed()
        self.tuning_history.append(report)
        return report

    def _top_k(
        self,
        workload: List[QueryTemplate],
        existing: List[IndexDef],
        candidates: List[IndexDef],
        baseline_cost: float,
    ):
        """Rank once by individual benefit; add down the list (paper)."""
        scored = []
        for candidate in candidates:
            cost = self.estimator.workload_cost(
                workload, existing + [candidate]
            )
            benefit = baseline_cost - cost
            if benefit > 1e-9:
                scored.append((benefit, candidate))
        scored.sort(key=lambda pair: -pair[0])

        chosen: List[IndexDef] = []
        used_bytes = 0
        for _benefit, candidate in scored:
            if self.storage_budget is not None:
                size = self.db.index_size_bytes(candidate)
                if used_bytes + size > self.storage_budget:
                    # "Greedy ... cannot select any more indexes after
                    # picking a few indexes and arriving the resource
                    # limit" (paper, Section VI-E): top-k stops here.
                    break
                used_bytes += size
            chosen.append(candidate)
        final_cost = self.estimator.workload_cost(
            workload, existing + chosen
        )
        return chosen, final_cost

    def _hill_climb(
        self,
        workload: List[QueryTemplate],
        existing: List[IndexDef],
        candidates: List[IndexDef],
        baseline_cost: float,
    ):
        """Marginal-benefit greedy (the ablation's stronger variant)."""
        chosen: List[IndexDef] = []
        used_bytes = 0
        current_cost = baseline_cost
        remaining = list(candidates)
        while remaining:
            best_candidate = None
            best_cost = current_cost
            for candidate in remaining:
                if self.storage_budget is not None:
                    size = self.db.index_size_bytes(candidate)
                    if used_bytes + size > self.storage_budget:
                        continue
                cost = self.estimator.workload_cost(
                    workload, existing + chosen + [candidate]
                )
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_candidate = candidate
            if best_candidate is None:
                break
            chosen.append(best_candidate)
            used_bytes += self.db.index_size_bytes(best_candidate)
            current_cost = best_cost
            remaining = [c for c in remaining if c.key != best_candidate.key]
        return chosen, current_cost


class QueryLevelAdvisor(AutoIndexAdvisor):
    """AutoIndex without SQL2Template (Figure 8's query-level ablation).

    Identical pipeline — candidates, MCTS, estimator — but every
    distinct query text is analysed on its own, so candidate
    generation and benefit estimation pay per-query instead of
    per-template cost.
    """

    name = "QueryLevel"

    def __init__(self, db: TuningBackend, **kwargs):
        kwargs["use_templates"] = False
        super().__init__(db, **kwargs)
