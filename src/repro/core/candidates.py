"""Template-based candidate index generation (paper Section IV-A).

For each query template:

1. **Expression extraction** — pull filter predicates, join predicates,
   and GROUP/ORDER expressions out of every clause (recursing into
   derived tables and IN-subqueries);
2. **Index generation** —
   * boolean filter predicates are rewritten to DNF; each disjunct's
     AND-conjuncts over one table form a composite candidate whose
     equality columns are ordered most-distinct first with at most one
     trailing range column; candidates whose estimated matching
     fraction exceeds the selectivity threshold (default 1/3) are
     dropped, mirroring the paper's gate;
   * each atomic equi-join contributes a candidate on the *driven*
     (smaller) table's join column;
   * GROUP BY / ORDER BY columns contribute candidates when the
     grouping actually takes effect (the column is not unique);
3. **Redundancy removal** — duplicates are dropped, leftmost-prefix
   subsumed candidates are merged into the wider index, and candidates
   already materialised in the catalog are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.index import IndexDef, IndexScope
from repro.core.templates import QueryTemplate
from repro.ports.backend import TuningBackend
from repro.sql import ast
from repro.sql.predicates import (
    FilterPredicate,
    classify_atom,
    dnf_terms,
)

DEFAULT_SELECTIVITY_THRESHOLD = 1.0 / 3.0


@dataclass
class CandidateIndex:
    """A proposed index plus the evidence that motivated it."""

    definition: IndexDef
    support: float = 0.0  # summed frequency of supporting templates
    sources: Set[str] = field(default_factory=set)  # template fingerprints

    def merge_from(self, other: "CandidateIndex") -> None:
        self.support += other.support
        self.sources |= other.sources


class CandidateGenerator:
    """Generates and merges candidate indexes from templates."""

    def __init__(
        self,
        backend: TuningBackend,
        selectivity_threshold: float = DEFAULT_SELECTIVITY_THRESHOLD,
        max_columns: int = 4,
    ):
        self.backend = backend
        self.selectivity_threshold = selectivity_threshold
        self.max_columns = max_columns

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(
        self, templates: Sequence[QueryTemplate]
    ) -> List[CandidateIndex]:
        """Candidates for a set of templates: extracted, merged, and
        filtered against already-existing indexes."""
        return self.generate_from(
            (template, self.for_statement(template.statement))
            for template in templates
        )

    def generate_from(
        self,
        pairs: Sequence[Tuple[QueryTemplate, Sequence[IndexDef]]],
    ) -> List[CandidateIndex]:
        """Merge pre-extracted per-template candidates.

        ``pairs`` holds ``(template, for_statement(template.statement))``
        tuples; incremental diagnosis caches the extraction per
        fingerprint and feeds the cached lists through here, so the
        merge/filter pipeline — and therefore the output — is shared
        verbatim with :meth:`generate`.
        """
        collected: Dict[Tuple, CandidateIndex] = {}
        for template, definitions in pairs:
            weight = max(template.weight, 1.0)
            for definition in definitions:
                candidate = CandidateIndex(
                    definition=definition,
                    support=weight,
                    sources={template.fingerprint},
                )
                existing = collected.get(definition.key)
                if existing is None:
                    collected[definition.key] = candidate
                else:
                    existing.merge_from(candidate)
        merged = self._merge_prefixes(list(collected.values()))
        return self._drop_existing(merged)

    # lint: exhaustive[Statement] fallthrough=Insert
    def for_statement(self, stmt: ast.Statement) -> List[IndexDef]:
        """Raw (unmerged) candidates for one statement."""
        result: List[IndexDef] = []
        if isinstance(stmt, ast.Select):
            self._from_select(stmt, result)
        elif isinstance(stmt, ast.Update):
            self._from_where(stmt.table, stmt.where, result)
        elif isinstance(stmt, ast.Delete):
            self._from_where(stmt.table, stmt.where, result)
        # INSERTs create no lookup requirements.
        return self._with_scope_variants(result)

    def _with_scope_variants(
        self, candidates: List[IndexDef]
    ) -> List[IndexDef]:
        """On partitioned tables, offer both GLOBAL and LOCAL scopes
        and let the selector trade lookup speed against storage
        (paper, Section III)."""
        result = list(candidates)
        for definition in candidates:
            schema = self.backend.schema(definition.table)
            if schema.is_partitioned and definition.scope is IndexScope.GLOBAL:
                result.append(
                    IndexDef(
                        table=definition.table,
                        columns=definition.columns,
                        scope=IndexScope.LOCAL,
                    )
                )
        return result

    # ------------------------------------------------------------------
    # SELECT extraction
    # ------------------------------------------------------------------

    def _from_select(self, select: ast.Select, out: List[IndexDef]) -> None:
        binding_tables = self._binding_tables(select)

        if select.where is not None:
            self._from_predicate(select.where, binding_tables, out)

        for group in select.group_by:
            self._from_output_expr(group, binding_tables, out, grouping=True)
        for item in select.order_by:
            self._from_output_expr(
                item.expr, binding_tables, out, grouping=False
            )

        # Recurse into derived tables and IN-subqueries.
        for src in select.sources:
            if isinstance(src, ast.SubquerySource):
                self._from_select(src.select, out)
        if select.where is not None:
            for node in ast.walk(select.where):
                if isinstance(node, ast.InSubquery):
                    self._from_select(node.select, out)
                elif isinstance(node, ast.ScalarSubquery):
                    self._from_select(node.select, out)

    def _from_where(
        self, table: str, where: Optional[ast.Expr], out: List[IndexDef]
    ) -> None:
        if where is None or not self.backend.has_table(table):
            return
        self._from_predicate(where, {table: table}, out)

    # ------------------------------------------------------------------
    # predicate → candidates
    # ------------------------------------------------------------------

    def _from_predicate(
        self,
        predicate: ast.Expr,
        binding_tables: Dict[str, str],
        out: List[IndexDef],
    ) -> None:
        """DNF factorization + per-disjunct composite candidates."""
        for disjunct in dnf_terms(predicate):
            filters_by_table: Dict[str, List[FilterPredicate]] = {}
            for atom in disjunct:
                kind, payload = classify_atom(atom)
                if kind == "filter":
                    fp: FilterPredicate = payload  # type: ignore[assignment]
                    table = self._table_of(fp.column, binding_tables)
                    if table is not None:
                        filters_by_table.setdefault(table, []).append(fp)
                elif kind == "join":
                    self._from_join(payload, binding_tables, out)
            for table, filters in filters_by_table.items():
                candidate = self._composite_candidate(table, filters)
                if candidate is not None:
                    out.append(candidate)

    def _composite_candidate(
        self, table: str, filters: List[FilterPredicate]
    ) -> Optional[IndexDef]:
        """One candidate from a conjunction of filters on one table.

        Equality columns first (most selective, i.e. highest distinct
        count, first — ties broken by appearance order), then at most
        one range column. Gated on estimated matching fraction.
        """
        stats = self.backend.table_stats(table)
        schema = self.backend.schema(table)

        eq_cols: List[str] = []
        range_cols: List[Tuple[str, FilterPredicate]] = []
        selectivity = 1.0
        for fp in filters:
            col = fp.column.column
            if not schema.has_column(col):
                return None
            if fp.op in ("=", "in", "isnull"):
                if col not in eq_cols:
                    eq_cols.append(col)
                    selectivity *= stats.column(col).selectivity(
                        fp.op, fp.values
                    )
            elif fp.is_range:
                if col not in eq_cols and all(c != col for c, _ in range_cols):
                    range_cols.append((col, fp))

        eq_cols.sort(
            key=lambda c: -stats.column(c).n_distinct
        )  # stable: ties keep appearance order

        range_col: Optional[str] = None
        if range_cols:
            # Pick the most selective range column; fold its
            # selectivity into the gate.
            best = min(
                range_cols,
                key=lambda pair: stats.column(pair[0]).selectivity(
                    pair[1].op, pair[1].values
                ),
            )
            range_col = best[0]
            selectivity *= stats.column(best[0]).selectivity(
                best[1].op, best[1].values
            )

        columns = eq_cols[: self.max_columns]
        if range_col is not None and len(columns) < self.max_columns:
            columns = columns + [range_col]
        if not columns:
            return None
        # The paper's gate: give up the index when the predicate keeps
        # too large a fraction of the table (low filtering power).
        if selectivity > self.selectivity_threshold:
            return None
        # An index over a single-valued column can never discriminate.
        if all(stats.column(c).n_distinct <= 1 for c in columns):
            return None
        return IndexDef(table=table, columns=tuple(columns))

    def _from_join(
        self,
        join,
        binding_tables: Dict[str, str],
        out: List[IndexDef],
    ) -> None:
        """Atomic equi-join → candidate on the driven table's column.

        The driven table is the one looked up per outer row — the
        paper takes the smaller table; with statistics available we
        use row counts, falling back to the right side.
        """
        left_table = self._table_of(join.left, binding_tables)
        right_table = self._table_of(join.right, binding_tables)
        if left_table is None or right_table is None:
            return
        left_rows = self.backend.table_stats(left_table).row_count
        right_rows = self.backend.table_stats(right_table).row_count
        if left_rows <= right_rows:
            driven_table, driven_col = left_table, join.left.column
        else:
            driven_table, driven_col = right_table, join.right.column
        schema = self.backend.schema(driven_table)
        if schema.has_column(driven_col):
            out.append(
                IndexDef(table=driven_table, columns=(driven_col,))
            )
        # The non-driven side's fk column is also a useful candidate
        # when the driven side is filtered (index nested-loop inners).
        other_table, other_col = (
            (right_table, join.right.column)
            if driven_table == left_table
            else (left_table, join.left.column)
        )
        other_schema = self.backend.schema(other_table)
        if other_schema.has_column(other_col):
            out.append(IndexDef(table=other_table, columns=(other_col,)))

    def _from_output_expr(
        self,
        expr: ast.Expr,
        binding_tables: Dict[str, str],
        out: List[IndexDef],
        grouping: bool,
    ) -> None:
        """GROUP/ORDER expression → candidate when it takes effect."""
        if not isinstance(expr, ast.ColumnRef):
            return
        table = self._table_of(expr, binding_tables)
        if table is None:
            return
        stats = self.backend.table_stats(table)
        col_stats = stats.column(expr.column)
        if grouping and stats.row_count > 0:
            # Grouping a unique column is a no-op (paper: "the columns
            # in the GROUP clause are not distinct").
            if col_stats.n_distinct >= max(stats.row_count, 1):
                return
        if col_stats.n_distinct <= 1:
            return
        out.append(IndexDef(table=table, columns=(expr.column,)))

    # ------------------------------------------------------------------
    # merging / filtering
    # ------------------------------------------------------------------

    def _merge_prefixes(
        self, candidates: List[CandidateIndex]
    ) -> List[CandidateIndex]:
        """Leftmost-prefix merge: (a) is absorbed by (a, b)."""
        survivors: List[CandidateIndex] = []
        for candidate in sorted(
            candidates, key=lambda c: -len(c.definition.columns)
        ):
            absorbed = False
            for kept in survivors:
                if candidate.definition.is_prefix_of(kept.definition):
                    kept.merge_from(candidate)
                    absorbed = True
                    break
            if not absorbed:
                survivors.append(candidate)
        return survivors

    def _drop_existing(
        self, candidates: List[CandidateIndex]
    ) -> List[CandidateIndex]:
        """Remove candidates subsumed by an already-built index."""
        existing = self.backend.index_defs()
        result = []
        for candidate in candidates:
            if any(
                candidate.definition.is_prefix_of(built)
                for built in existing
            ):
                continue
            result.append(candidate)
        result.sort(key=lambda c: -c.support)
        return result

    # ------------------------------------------------------------------
    # name resolution helpers
    # ------------------------------------------------------------------

    def _binding_tables(self, select: ast.Select) -> Dict[str, str]:
        """binding name → base table name (derived tables excluded)."""
        bindings: Dict[str, str] = {}
        for src in select.sources:
            if isinstance(src, ast.TableRef) and self.backend.has_table(
                src.name
            ):
                bindings[src.binding] = src.name
        return bindings

    def _table_of(
        self, ref: ast.ColumnRef, binding_tables: Dict[str, str]
    ) -> Optional[str]:
        if ref.table is not None:
            return binding_tables.get(ref.table)
        owners = [
            table
            for table in binding_tables.values()
            if self.backend.schema(table).has_column(ref.column)
        ]
        if len(owners) == 1:
            return owners[0]
        return None
