"""Guarded application of index changes with full rollback.

``AutoIndexAdvisor.tune()`` used to apply MCTS results directly —
drop, drop, create, create — so a failure mid-sequence (an index build
running out of memory, an injected ``index.build`` fault) stranded the
database between configurations: some removals done, some additions
missing, and the advisor's bookkeeping describing neither.

:class:`IndexChangeSet` makes the apply transactional at the advisor
level. Each individual ``create_index``/``drop_index`` is already
atomic against the catalog (builds happen before registration); the
changeset records every completed step and, on any failure, undoes
them in reverse order — re-creating dropped indexes from the current
heap and dropping half-delivered additions — so the catalog always
ends in exactly the before or exactly the after configuration.

Rollback runs with fault injection suppressed: the chaos harness must
never be able to fail the recovery path it exists to exercise, and in
a real system the revert path is precisely the code you keep simple
enough to trust.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef


class ChangeSetError(RuntimeError):
    """Raised when rollback itself cannot restore the snapshot."""


class IndexChangeSet:
    """One transactional batch of index drops and creates."""

    def __init__(self, db: TuningBackend):
        self.db = db
        self.snapshot: List[IndexDef] = db.index_defs()
        self._applied: List[Tuple[str, IndexDef]] = []
        self.committed = False

    # -- forward path -------------------------------------------------------

    def apply(
        self,
        drops: Sequence[IndexDef] = (),
        creates: Sequence[IndexDef] = (),
    ) -> int:
        """Apply drops then creates, recording each completed change.

        Raises whatever the underlying DDL raised; the caller decides
        whether to :meth:`rollback`. Returns the number of changes
        applied.
        """
        for definition in drops:
            self.db.drop_index(definition)
            self._applied.append(("drop", definition))
        for definition in creates:
            self.db.create_index(definition)
            self._applied.append(("create", definition))
        self.committed = True
        return len(self._applied)

    # -- reverse path -------------------------------------------------------

    def rollback(self) -> int:
        """Undo every applied change, newest first.

        Returns the number of changes undone. Idempotent: a second
        call is a no-op. Fault injection is suppressed for the
        duration — recovery must not itself be failable.
        """
        undone = 0
        faults = self.db.faults
        suppression = (
            faults.suppressed() if faults is not None else _NoSuppress()
        )
        with suppression:
            while self._applied:
                action, definition = self._applied.pop()
                try:
                    if action == "drop":
                        self.db.create_index(definition)
                    else:
                        self.db.drop_index(definition)
                except Exception as exc:  # pragma: no cover - defensive
                    raise ChangeSetError(
                        f"rollback failed undoing {action} of "
                        f"{definition}: {exc}"
                    ) from exc
                undone += 1
        self.committed = False
        return undone

    # -- verification -------------------------------------------------------

    def matches_snapshot(self) -> bool:
        """True when the catalog equals the pre-apply configuration."""
        return {d.key for d in self.db.index_defs()} == {
            d.key for d in self.snapshot
        }


class _NoSuppress:
    """Null context for databases without a fault injector."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None
