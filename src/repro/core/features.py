"""Cost features for the index benefit estimator (paper Section V).

For one statement under one index configuration we compute:

* ``data_cost`` — the optimizer's data-processing cost (plan cost
  minus any maintenance charge), the paper's ``C_data``;
* ``io_cost`` — index maintenance IO, ``C_io = |pages| *
  seq_page_cost`` amortized per modified row;
* ``cpu_cost`` — index maintenance CPU, ``C_cpu = t_start +
  t_running``;
* ``is_write`` / ``num_affected_indexes`` — auxiliary features that
  help the regression separate the regimes.

All features are what-if quantities: nothing is executed, hypothetical
indexes are costed from estimated B+Tree shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.database import Database
from repro.engine.index import IndexDef
from repro.engine.plan import DeletePlan, InsertPlan, PlanNode, UpdatePlan
from repro.sql import ast

FEATURE_NAMES = (
    "data_cost",
    "io_cost",
    "cpu_cost",
    "is_write",
    "num_affected_indexes",
)
NUM_FEATURES = len(FEATURE_NAMES)


@dataclass(frozen=True)
class CostFeatures:
    """The Section V feature vector for one (statement, config) pair."""

    data_cost: float
    io_cost: float
    cpu_cost: float
    is_write: bool
    num_affected_indexes: int

    def as_array(self) -> np.ndarray:
        return np.array(
            [
                self.data_cost,
                self.io_cost,
                self.cpu_cost,
                1.0 if self.is_write else 0.0,
                float(self.num_affected_indexes),
            ],
            dtype=float,
        )

    @property
    def naive_total(self) -> float:
        """The traditional static-weight cost: plain sum of features.

        This is the baseline model the paper's learned regression
        replaces (Section V-B: "traditional methods simply sum up
        those costs based on static weights").
        """
        return self.data_cost + self.io_cost + self.cpu_cost


def compute_features(
    db: Database,
    statement: ast.Statement,
    config: Optional[Sequence[IndexDef]] = None,
) -> CostFeatures:
    """Compute the feature vector for ``statement`` under ``config``."""
    est_cost, plan = db.estimate_cost(statement, config)
    io, cpu, affected = _maintenance_of_plan(db, plan, config)
    data = max(est_cost - io - cpu, 0.0)
    return CostFeatures(
        data_cost=data,
        io_cost=io,
        cpu_cost=cpu,
        is_write=isinstance(plan, (InsertPlan, UpdatePlan, DeletePlan)),
        num_affected_indexes=affected,
    )


def _maintenance_of_plan(
    db: Database,
    plan: PlanNode,
    config: Optional[Sequence[IndexDef]],
) -> Tuple[float, float, int]:
    """Maintenance (io, cpu, #affected_indexes) charged by a write plan."""
    if isinstance(plan, InsertPlan):
        table = plan.table
        changed: Optional[Set[str]] = None
        rows = max(plan.est_rows, 1.0)
    elif isinstance(plan, UpdatePlan):
        table = plan.table
        changed = {a.column for a in plan.assignments}
        rows = max(plan.est_rows, 0.0)
    else:
        return 0.0, 0.0, 0
    affected = _affected_indexes(db, table, changed, config)
    if not affected:
        return 0.0, 0.0, 0
    _with_whatif(db, config)
    try:
        io, cpu = db.planner.maintenance_components_per_row(table, changed)
    finally:
        if config is not None:
            db.catalog.clear_whatif()
    return io * rows, cpu * rows, len(affected)


def _affected_indexes(
    db: Database,
    table: str,
    changed: Optional[Set[str]],
    config: Optional[Sequence[IndexDef]],
) -> List[IndexDef]:
    if config is None:
        defs = [
            ix.definition
            for ix in db.catalog.real_indexes(table)
        ]
    else:
        defs = [d for d in config if d.table == table]
    if changed is None:
        return defs
    return [d for d in defs if set(d.columns) & changed]


def _with_whatif(
    db: Database, config: Optional[Sequence[IndexDef]]
) -> None:
    if config is None:
        return
    real = {d.key: d for d in db.catalog.real_index_defs()}
    wanted = {d.key: d for d in config}
    hypothetical = [d for key, d in wanted.items() if key not in real]
    masked = [d for key, d in real.items() if key not in wanted]
    db.catalog.set_whatif(hypothetical, masked)


def referenced_tables(statement: ast.Statement) -> Tuple[str, ...]:
    """Base tables a statement touches (for estimator cache keys)."""
    tables: List[str] = []
    for node in ast.walk(statement):
        if isinstance(node, ast.TableRef):
            tables.append(node.name)
    direct = getattr(statement, "table", None)
    if isinstance(direct, str):
        tables.append(direct)
    return tuple(sorted(set(tables)))
