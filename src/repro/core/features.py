"""Cost features for the index benefit estimator (paper Section V).

For one statement under one index configuration we compute:

* ``data_cost`` — the optimizer's data-processing cost (plan cost
  minus any maintenance charge), the paper's ``C_data``;
* ``io_cost`` — index maintenance IO, ``C_io = |pages| *
  seq_page_cost`` amortized per modified row;
* ``cpu_cost`` — index maintenance CPU, ``C_cpu = t_start +
  t_running``;
* ``is_write`` / ``num_affected_indexes`` — auxiliary features that
  help the regression separate the regimes.

All features are what-if quantities answered by the backend's
``whatif_cost``: nothing is executed, hypothetical indexes are costed
from estimated B+Tree shapes, and any :class:`TuningBackend` can
supply them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.index import IndexDef
from repro.ports.backend import TuningBackend
from repro.sql import ast

FEATURE_NAMES = (
    "data_cost",
    "io_cost",
    "cpu_cost",
    "is_write",
    "num_affected_indexes",
)
NUM_FEATURES = len(FEATURE_NAMES)


@dataclass(frozen=True)
class CostFeatures:
    """The Section V feature vector for one (statement, config) pair."""

    data_cost: float
    io_cost: float
    cpu_cost: float
    is_write: bool
    num_affected_indexes: int

    def as_array(self) -> np.ndarray:
        return np.array(
            [
                self.data_cost,
                self.io_cost,
                self.cpu_cost,
                1.0 if self.is_write else 0.0,
                float(self.num_affected_indexes),
            ],
            dtype=float,
        )

    @property
    def naive_total(self) -> float:
        """The traditional static-weight cost: plain sum of features.

        This is the baseline model the paper's learned regression
        replaces (Section V-B: "traditional methods simply sum up
        those costs based on static weights").
        """
        return self.data_cost + self.io_cost + self.cpu_cost


def compute_features(
    backend: TuningBackend,
    statement: ast.Statement,
    config: Optional[Sequence[IndexDef]] = None,
) -> CostFeatures:
    """Compute the feature vector for ``statement`` under ``config``."""
    return _features_of(backend.whatif_cost(statement, config))


def compute_features_batch(
    backend: TuningBackend,
    statements: Sequence[ast.Statement],
    config: Optional[Sequence[IndexDef]] = None,
) -> List[CostFeatures]:
    """Feature vectors for many statements under one configuration.

    Uses the backend's bulk what-if entry point (one catalog overlay
    window for the whole batch) when it offers one; otherwise falls
    back to per-statement :func:`compute_features`. Results are
    bitwise-identical either way — batching only amortises overlay
    bookkeeping, the planning itself is unchanged.
    """
    bulk = getattr(backend, "whatif_cost_batch", None)
    if bulk is None:
        return [
            compute_features(backend, statement, config)
            for statement in statements
        ]
    return [_features_of(whatif) for whatif in bulk(statements, config)]


def _features_of(whatif) -> CostFeatures:
    return CostFeatures(
        data_cost=whatif.data_cost,
        io_cost=whatif.maintenance_io,
        cpu_cost=whatif.maintenance_cpu,
        is_write=whatif.is_write,
        num_affected_indexes=whatif.num_affected_indexes,
    )


def features_matrix(features: Sequence[CostFeatures]) -> np.ndarray:
    """Stack feature vectors into an (n, NUM_FEATURES) float matrix.

    Fills one pre-allocated array by attribute instead of stacking n
    small per-template arrays — the estimator calls this once per
    evaluation batch and hands the matrix to a single
    ``model.predict``.
    """
    matrix = np.empty((len(features), NUM_FEATURES), dtype=float)
    for row, f in enumerate(features):
        matrix[row, 0] = f.data_cost
        matrix[row, 1] = f.io_cost
        matrix[row, 2] = f.cpu_cost
        matrix[row, 3] = 1.0 if f.is_write else 0.0
        matrix[row, 4] = float(f.num_affected_indexes)
    return matrix


def referenced_tables(statement: ast.Statement) -> Tuple[str, ...]:
    """Base tables a statement touches (for estimator cache keys)."""
    tables: List[str] = []
    for node in ast.walk(statement):
        if isinstance(node, ast.TableRef):
            tables.append(node.name)
    direct = getattr(statement, "table", None)
    if isinstance(direct, str):
        tables.append(direct)
    return tuple(sorted(set(tables)))
