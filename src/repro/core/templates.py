"""SQL2Template: bounded template store with LRU retention and decay.

Section IV-A step 1 and Section IV-C of the paper:

* every incoming query is normalised (literals → placeholders) and
  matched against the template store by fingerprint; unmatched queries
  become new templates;
* the store is capacity-bounded (the paper keeps e.g. 5000 for TPC-C)
  and evicts the least-frequently-matched templates;
* under workload drift (most templates going cold), frequencies are
  multiplied by a decay factor, cold templates are dropped, and recent
  templates dominate — the paper's incremental template update.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sql import ast, parse
from repro.sql.fingerprint import parameterize
from repro.sql.normalize import raw_key


@dataclass
class QueryTemplate:
    """One access pattern: a parameterized statement plus usage stats."""

    fingerprint: str
    statement: ast.Statement  # placeholder form
    frequency: float = 0.0          # lifetime matches (decayed on drift)
    window_frequency: float = 0.0   # matches since the last tuning round
    last_seen: int = 0
    sample_sql: str = ""  # most recent concrete instance
    is_write: bool = False

    @property
    def weight(self) -> float:
        """Estimation weight: the *recent* workload dominates.

        Incremental index management optimises the future workload
        (Definition 2), which the most recent window predicts best;
        lifetime frequency contributes a small prior so stable
        templates never drop to zero between rounds.
        """
        return self.window_frequency + 0.1 * self.frequency

    @property
    def tables(self) -> Tuple[str, ...]:
        """Tables referenced by the template (for candidate scoping)."""
        names: List[str] = []
        for node in ast.walk(self.statement):
            if isinstance(node, ast.TableRef):
                names.append(node.name)
        for attr in ("table",):
            value = getattr(self.statement, attr, None)
            if isinstance(value, str):
                names.append(value)
        return tuple(dict.fromkeys(names))


class TemplateStore:
    """Capacity-bounded store of query templates, sharded by table.

    ``capacity`` bounds the number of retained templates;
    ``decay_factor`` and ``cold_threshold`` implement the drift
    handling of Section IV-C.

    Templates live in per-table shards keyed by the statement's
    primary (first-referenced) table, with a table → fingerprints
    index covering secondary references, so candidate generation and
    what-if costing can iterate only the shards a configuration
    change touches (:meth:`templates_for_tables`) instead of scanning
    a flat dict. The LRU budget is split across shards: the capacity
    is divided evenly over the active shards and eviction charges the
    shard most over its share, dropping that shard's coldest
    template.

    Ingest fast path: :meth:`observe` first normalises the raw SQL
    (:func:`repro.sql.normalize.normalize_sql`, a lex-only pass) and
    looks the key up in a bounded LRU ``raw key → fingerprint`` cache.
    A hit skips parse + parameterization entirely; only misses pay the
    full pipeline and populate the cache. Entries die with their
    fingerprint (:meth:`_remove` invalidates, covering eviction and
    drift), and every ``parity_check_every``-th hit is re-parsed and
    asserted against the cached fingerprint. The cache is bypassed —
    not populated — when the caller supplies a pre-parsed statement,
    whose text may not be what the store would parse ``sql`` into.
    """

    # cache-keys: fields[_shards, _shard_of, _table_index] invalidator[_touch]

    def __init__(
        self,
        capacity: int = 5000,
        decay_factor: float = 0.5,
        cold_threshold: float = 1.0,
        drift_window: int = 200,
        drift_miss_ratio: float = 0.6,
        raw_cache_size: int = 4096,
        parity_check_every: int = 256,
        parse_fn: Optional[Callable[[str], ast.Statement]] = None,
    ):
        self.capacity = capacity
        self.decay_factor = decay_factor
        self.cold_threshold = cold_threshold
        self.drift_window = drift_window
        self.drift_miss_ratio = drift_miss_ratio
        #: 0 disables the raw-key fast path (full-parse mode).
        self.raw_cache_size = raw_cache_size
        #: every Nth cache hit is re-parsed and compared; 0 disables.
        self.parity_check_every = parity_check_every
        #: parser used on cache misses — injectable so an engine's
        #: statement cache / fault points stay on the miss path.
        self.parse_fn = parse_fn if parse_fn is not None else parse
        #: shard key (primary table, "" when table-less) → templates.
        self._shards: Dict[str, Dict[str, QueryTemplate]] = {}
        self._shard_of: Dict[str, str] = {}
        #: any referenced table → fingerprints (secondary references
        #: included, so multi-table templates are never missed).
        self._table_index: Dict[str, Dict[str, None]] = {}
        self._size = 0
        self._clock = 0
        self._window_arrivals = 0
        self._window_misses = 0
        self.total_observed = 0
        self.total_new_templates = 0
        #: LRU ``(version, normalized text) → fingerprint``.
        self._raw_cache: "OrderedDict[Tuple[int, str], str]" = OrderedDict()
        #: reverse index fingerprint → raw keys, for invalidation.
        self._raw_keys: Dict[str, Dict[Tuple[int, str], None]] = {}
        self.raw_cache_hits = 0
        self.raw_cache_misses = 0
        self.parity_checks = 0
        #: monotone change counters consumed by incremental diagnosis:
        #: ``version`` bumps on any mutation, ``_shard_versions`` per
        #: affected shard, so a diagnosis pass can skip clean shards.
        self.version = 0
        self._shard_versions: Dict[str, int] = {}

    # -- shard plumbing ----------------------------------------------------------

    def _get(self, fingerprint: str) -> Optional[QueryTemplate]:
        shard_key = self._shard_of.get(fingerprint)
        if shard_key is None:
            return None
        return self._shards[shard_key].get(fingerprint)

    def _insert(self, template: QueryTemplate) -> None:
        tables = template.tables
        shard_key = tables[0] if tables else ""
        self._shards.setdefault(shard_key, {})[
            template.fingerprint
        ] = template
        self._shard_of[template.fingerprint] = shard_key
        for table in tables:
            # Dict-as-ordered-set: insertion order is deterministic,
            # set iteration order is not.
            self._table_index.setdefault(table, {})[
                template.fingerprint
            ] = None
        self._size += 1
        self._touch(shard_key)

    def _remove(self, fingerprint: str) -> None:
        shard_key = self._shard_of.pop(fingerprint)
        shard = self._shards[shard_key]
        template = shard.pop(fingerprint)
        if not shard:
            del self._shards[shard_key]
        for table in template.tables:
            members = self._table_index.get(table)
            if members is not None:
                members.pop(fingerprint, None)
                if not members:
                    del self._table_index[table]
        self._size -= 1
        self._touch(shard_key)
        # Cache coherence: raw keys resolving to a dead fingerprint
        # must die with it, whether the removal came from LRU eviction
        # or drift cleanup — a later observe of the same shape must
        # take the miss path and re-create the template, never
        # resurrect a stale mapping.
        for key in self._raw_keys.pop(fingerprint, ()):
            self._raw_cache.pop(key, None)

    def _touch(self, shard_key: str) -> None:
        """Record a mutation for incremental-diagnosis dirty tracking."""
        self.version += 1
        self._shard_versions[shard_key] = (
            self._shard_versions.get(shard_key, 0) + 1
        )

    def shard_versions(self) -> Dict[str, int]:
        """Per-shard mutation counters (shard key → version)."""
        return dict(self._shard_versions)

    def _iter_templates(self):
        for shard_key in sorted(self._shards):
            yield from self._shards[shard_key].values()

    def shard_budget(self) -> int:
        """Per-shard slice of the capacity (at least one template)."""
        return max(self.capacity // max(len(self._shards), 1), 1)

    def shard_templates(self, shard_key: str) -> List[QueryTemplate]:
        """Templates of one shard in insertion order (empty if gone)."""
        shard = self._shards.get(shard_key)
        return list(shard.values()) if shard else []

    # -- observation ------------------------------------------------------------

    def observe(self, sql: str, statement: Optional[ast.Statement] = None
                ) -> QueryTemplate:
        """Match one query against the store (creating if new).

        When no pre-parsed ``statement`` is supplied the raw-key fast
        path applies (see the class docstring); a supplied statement
        bypasses the cache in both directions — it is neither
        consulted (the statement may not equal what ``sql`` parses to)
        nor populated from it.
        """
        if statement is not None:
            parameterized = parameterize(statement)
            template = self._get(parameterized.fingerprint)
            if template is None:
                template = self._create(
                    parameterized.fingerprint,
                    parameterized.statement,
                    ast.is_write(statement),
                )
        else:
            template = self._match_raw(sql)
        self._clock += 1
        self.total_observed += 1
        self._window_arrivals += 1
        self._bump(template, sql)
        return template

    def _match_raw(self, sql: str) -> QueryTemplate:
        """Resolve ``sql`` to its template via the raw-key cache.

        Misses (and a ``raw_cache_size`` of 0) fall back to the full
        parse → parameterize pipeline and populate the cache. Raises
        before any store counter moves, exactly like the pre-cache
        code, so error paths are mode-identical.
        """
        key = None
        if self.raw_cache_size:
            key = raw_key(sql)
            fingerprint = self._raw_cache.get(key)
            if fingerprint is not None:
                template = self._get(fingerprint)
                if template is not None:
                    self.raw_cache_hits += 1
                    self._raw_cache.move_to_end(key)
                    if (
                        self.parity_check_every
                        and self.raw_cache_hits % self.parity_check_every
                        == 0
                    ):
                        self._assert_parity(sql, fingerprint)
                    return template
                # The fingerprint died without going through _remove
                # (e.g. a store rebuilt from a checkpoint): drop the
                # stale entry and fall through to the miss path.
                self._drop_raw_entry(key, fingerprint)
        self.raw_cache_misses += 1
        statement = self.parse_fn(sql)
        parameterized = parameterize(statement)
        fingerprint = parameterized.fingerprint
        if key is not None:
            self._raw_cache[key] = fingerprint
            self._raw_keys.setdefault(fingerprint, {})[key] = None
            if len(self._raw_cache) > self.raw_cache_size:
                old_key, old_fp = self._raw_cache.popitem(last=False)
                self._drop_raw_entry(old_key, old_fp, keep_forward=True)
        template = self._get(fingerprint)
        if template is None:
            template = self._create(
                fingerprint,
                parameterized.statement,
                ast.is_write(statement),
            )
        return template

    def _drop_raw_entry(
        self,
        key: Tuple[int, str],
        fingerprint: str,
        keep_forward: bool = False,
    ) -> None:
        if not keep_forward:
            self._raw_cache.pop(key, None)
        members = self._raw_keys.get(fingerprint)
        if members is not None:
            members.pop(key, None)
            if not members:
                del self._raw_keys[fingerprint]

    def _assert_parity(self, sql: str, fingerprint: str) -> None:
        """Fast-path guard: a cache hit must reproduce the parsed
        fingerprint. Uses the pure parser (no injected faults) — this
        audits the normalizer, not the engine."""
        self.parity_checks += 1
        audited = parameterize(parse(sql)).fingerprint
        if audited != fingerprint:
            raise AssertionError(
                "raw-key cache parity violation: %r resolved to %r "
                "but parses to %r" % (sql, fingerprint, audited)
            )

    def _create(
        self,
        fingerprint: str,
        statement: ast.Statement,
        is_write: bool,
    ) -> QueryTemplate:
        self._window_misses += 1
        self.total_new_templates += 1
        template = QueryTemplate(
            fingerprint=fingerprint,
            statement=statement,
            is_write=is_write,
        )
        self._insert(template)
        if self._size > self.capacity:
            self._evict()
        return template

    def _bump(self, template: QueryTemplate, sql: str) -> None:
        template.frequency += 1.0
        template.window_frequency += 1.0
        template.last_seen = self._clock
        template.sample_sql = sql
        shard_key = self._shard_of.get(template.fingerprint)
        if shard_key is not None:
            self._touch(shard_key)
        # else: a full store evicted the just-created template before
        # its first bump; the caller still gets the detached object
        # (pre-fast-path behaviour) and the eviction already dirtied
        # the shard.

    def observe_raw(self, sql: str, statement: Optional[ast.Statement] = None
                    ) -> QueryTemplate:
        """Record one query *without* template normalisation.

        The template-ablation path (``use_templates=False``, the
        paper's query-level baseline): every distinct SQL string is
        its own "template", keyed by the raw text rather than the
        parameterized fingerprint. Shares the store's clock, window
        counters, and capacity eviction with :meth:`observe` so the
        two paths are directly comparable. The raw text *is* the
        store key here, so the fast path is simply a hit on it — the
        parse is skipped whenever the exact string is already stored.
        """
        template = self._get(sql)
        if template is None:
            if statement is None:
                statement = self.parse_fn(sql)
            template = self._create(sql, statement, ast.is_write(statement))
        self._clock += 1
        self.total_observed += 1
        self._window_arrivals += 1
        self._bump(template, sql)
        return template

    def _evict(self) -> None:
        """Drop the coldest template of the most over-budget shard.

        The LRU budget is split evenly across shards; the shard most
        over its slice pays the eviction (ties broken by shard name
        for determinism) with its least-frequently / least-recently
        matched template.
        """
        victim_shard = max(
            sorted(self._shards),
            key=lambda key: len(self._shards[key]),
        )
        victim = min(
            self._shards[victim_shard].values(),
            key=lambda t: (t.frequency, t.last_seen),
        )
        self._remove(victim.fingerprint)

    # -- drift handling ------------------------------------------------------------

    def drift_detected(self) -> bool:
        """True when most recent arrivals missed existing templates."""
        if self._window_arrivals < self.drift_window:
            return False
        return (
            self._window_misses / self._window_arrivals
            >= self.drift_miss_ratio
        )

    def handle_drift(self) -> int:
        """Decay all frequencies and drop cold templates.

        Returns the number of templates removed. Call when
        :meth:`drift_detected` fires (the advisor does this).
        """
        removed = 0
        for template in list(self._iter_templates()):
            template.frequency *= self.decay_factor
            if template.frequency < self.cold_threshold:
                self._remove(template.fingerprint)
                removed += 1
        # Survivors' frequencies changed too: dirty every live shard
        # so incremental diagnosis re-reads them.
        for shard_key in sorted(self._shards):
            self._touch(shard_key)
        self._window_arrivals = 0
        self._window_misses = 0
        return removed

    def reset_window(self) -> None:
        self._window_arrivals = 0
        self._window_misses = 0

    def begin_tuning_window(self) -> None:
        """Start a fresh observation window (after a tuning round)."""
        for template in self._iter_templates():
            template.window_frequency = 0.0
        for shard_key in sorted(self._shards):
            self._touch(shard_key)

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable snapshot of the store (template bodies are
        reconstructed from their sample SQL on load)."""
        return {
            "capacity": self.capacity,
            "decay_factor": self.decay_factor,
            "cold_threshold": self.cold_threshold,
            "clock": self._clock,
            "templates": [
                {
                    "fingerprint": t.fingerprint,
                    "frequency": t.frequency,
                    "window_frequency": t.window_frequency,
                    "last_seen": t.last_seen,
                    "sample_sql": t.sample_sql,
                    "is_write": t.is_write,
                }
                for t in self._iter_templates()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemplateStore":
        """Rebuild a store saved with :meth:`to_dict`.

        Statements are re-parsed from each template's fingerprint
        (the fingerprint is itself valid, placeholder-bearing SQL).
        """
        store = cls(
            capacity=data.get("capacity", 5000),
            decay_factor=data.get("decay_factor", 0.5),
            cold_threshold=data.get("cold_threshold", 1.0),
        )
        store._clock = data.get("clock", 0)
        for entry in data.get("templates", []):
            statement = parse(entry["fingerprint"])
            template = QueryTemplate(
                fingerprint=entry["fingerprint"],
                statement=statement,
                frequency=entry.get("frequency", 0.0),
                window_frequency=entry.get("window_frequency", 0.0),
                last_seen=entry.get("last_seen", 0),
                sample_sql=entry.get("sample_sql", ""),
                is_write=entry.get("is_write", False),
            )
            store._insert(template)
        return store

    # -- access ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._shard_of

    def get(self, fingerprint: str) -> Optional[QueryTemplate]:
        return self._get(fingerprint)

    def templates(self, top: Optional[int] = None) -> List[QueryTemplate]:
        """Templates sorted by descending frequency."""
        ordered = sorted(
            self._iter_templates(),
            key=lambda t: (-t.frequency, -t.last_seen),
        )
        return ordered if top is None else ordered[:top]

    def templates_for_tables(
        self,
        tables: Iterable[str],
        top: Optional[int] = None,
    ) -> List[QueryTemplate]:
        """Templates referencing any of ``tables``, hottest first.

        This is the sharded fast path: only the affected shards (plus
        secondary references via the table index) are touched, so a
        configuration change on one table never scans the whole
        store.
        """
        seen: Dict[str, None] = {}
        for table in sorted(set(tables)):
            for fingerprint in self._table_index.get(table, ()):
                seen.setdefault(fingerprint, None)
        matched = [self._get(fp) for fp in seen]
        ordered = sorted(
            (t for t in matched if t is not None),
            key=lambda t: (-t.frequency, -t.last_seen),
        )
        return ordered if top is None else ordered[:top]

    def shard_stats(self) -> Dict[str, int]:
        """Template count per shard (shard key → size)."""
        return {
            key: len(self._shards[key]) for key in sorted(self._shards)
        }

    def raw_cache_stats(self) -> Dict[str, int]:
        """Fast-path counters (for benches and tests)."""
        return {
            "hits": self.raw_cache_hits,
            "misses": self.raw_cache_misses,
            "size": len(self._raw_cache),
            "parity_checks": self.parity_checks,
        }

    def total_frequency(self) -> float:
        return sum(t.frequency for t in self._iter_templates())
