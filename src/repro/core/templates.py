"""SQL2Template: bounded template store with LRU retention and decay.

Section IV-A step 1 and Section IV-C of the paper:

* every incoming query is normalised (literals → placeholders) and
  matched against the template store by fingerprint; unmatched queries
  become new templates;
* the store is capacity-bounded (the paper keeps e.g. 5000 for TPC-C)
  and evicts the least-frequently-matched templates;
* under workload drift (most templates going cold), frequencies are
  multiplied by a decay factor, cold templates are dropped, and recent
  templates dominate — the paper's incremental template update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sql import ast, parse
from repro.sql.fingerprint import parameterize


@dataclass
class QueryTemplate:
    """One access pattern: a parameterized statement plus usage stats."""

    fingerprint: str
    statement: ast.Statement  # placeholder form
    frequency: float = 0.0          # lifetime matches (decayed on drift)
    window_frequency: float = 0.0   # matches since the last tuning round
    last_seen: int = 0
    sample_sql: str = ""  # most recent concrete instance
    is_write: bool = False

    @property
    def weight(self) -> float:
        """Estimation weight: the *recent* workload dominates.

        Incremental index management optimises the future workload
        (Definition 2), which the most recent window predicts best;
        lifetime frequency contributes a small prior so stable
        templates never drop to zero between rounds.
        """
        return self.window_frequency + 0.1 * self.frequency

    @property
    def tables(self) -> Tuple[str, ...]:
        """Tables referenced by the template (for candidate scoping)."""
        names: List[str] = []
        for node in ast.walk(self.statement):
            if isinstance(node, ast.TableRef):
                names.append(node.name)
        for attr in ("table",):
            value = getattr(self.statement, attr, None)
            if isinstance(value, str):
                names.append(value)
        return tuple(dict.fromkeys(names))


class TemplateStore:
    """Capacity-bounded store of query templates, sharded by table.

    ``capacity`` bounds the number of retained templates;
    ``decay_factor`` and ``cold_threshold`` implement the drift
    handling of Section IV-C.

    Templates live in per-table shards keyed by the statement's
    primary (first-referenced) table, with a table → fingerprints
    index covering secondary references, so candidate generation and
    what-if costing can iterate only the shards a configuration
    change touches (:meth:`templates_for_tables`) instead of scanning
    a flat dict. The LRU budget is split across shards: the capacity
    is divided evenly over the active shards and eviction charges the
    shard most over its share, dropping that shard's coldest
    template.
    """

    def __init__(
        self,
        capacity: int = 5000,
        decay_factor: float = 0.5,
        cold_threshold: float = 1.0,
        drift_window: int = 200,
        drift_miss_ratio: float = 0.6,
    ):
        self.capacity = capacity
        self.decay_factor = decay_factor
        self.cold_threshold = cold_threshold
        self.drift_window = drift_window
        self.drift_miss_ratio = drift_miss_ratio
        #: shard key (primary table, "" when table-less) → templates.
        self._shards: Dict[str, Dict[str, QueryTemplate]] = {}
        self._shard_of: Dict[str, str] = {}
        #: any referenced table → fingerprints (secondary references
        #: included, so multi-table templates are never missed).
        self._table_index: Dict[str, Dict[str, None]] = {}
        self._size = 0
        self._clock = 0
        self._window_arrivals = 0
        self._window_misses = 0
        self.total_observed = 0
        self.total_new_templates = 0

    # -- shard plumbing ----------------------------------------------------------

    def _get(self, fingerprint: str) -> Optional[QueryTemplate]:
        shard_key = self._shard_of.get(fingerprint)
        if shard_key is None:
            return None
        return self._shards[shard_key].get(fingerprint)

    def _insert(self, template: QueryTemplate) -> None:
        tables = template.tables
        shard_key = tables[0] if tables else ""
        self._shards.setdefault(shard_key, {})[
            template.fingerprint
        ] = template
        self._shard_of[template.fingerprint] = shard_key
        for table in tables:
            # Dict-as-ordered-set: insertion order is deterministic,
            # set iteration order is not.
            self._table_index.setdefault(table, {})[
                template.fingerprint
            ] = None
        self._size += 1

    def _remove(self, fingerprint: str) -> None:
        shard_key = self._shard_of.pop(fingerprint)
        shard = self._shards[shard_key]
        template = shard.pop(fingerprint)
        if not shard:
            del self._shards[shard_key]
        for table in template.tables:
            members = self._table_index.get(table)
            if members is not None:
                members.pop(fingerprint, None)
                if not members:
                    del self._table_index[table]
        self._size -= 1

    def _iter_templates(self):
        for shard_key in sorted(self._shards):
            yield from self._shards[shard_key].values()

    def shard_budget(self) -> int:
        """Per-shard slice of the capacity (at least one template)."""
        return max(self.capacity // max(len(self._shards), 1), 1)

    # -- observation ------------------------------------------------------------

    def observe(self, sql: str, statement: Optional[ast.Statement] = None
                ) -> QueryTemplate:
        """Match one query against the store (creating if new)."""
        if statement is None:
            statement = parse(sql)
        parameterized = parameterize(statement)
        fingerprint = parameterized.fingerprint
        self._clock += 1
        self.total_observed += 1
        self._window_arrivals += 1

        template = self._get(fingerprint)
        if template is None:
            self._window_misses += 1
            self.total_new_templates += 1
            template = QueryTemplate(
                fingerprint=fingerprint,
                statement=parameterized.statement,
                is_write=ast.is_write(statement),
            )
            self._insert(template)
            if self._size > self.capacity:
                self._evict()
        template.frequency += 1.0
        template.window_frequency += 1.0
        template.last_seen = self._clock
        template.sample_sql = sql
        return template

    def observe_raw(self, sql: str, statement: Optional[ast.Statement] = None
                    ) -> QueryTemplate:
        """Record one query *without* template normalisation.

        The template-ablation path (``use_templates=False``, the
        paper's query-level baseline): every distinct SQL string is
        its own "template", keyed by the raw text rather than the
        parameterized fingerprint. Shares the store's clock, window
        counters, and capacity eviction with :meth:`observe` so the
        two paths are directly comparable.
        """
        if statement is None:
            statement = parse(sql)
        self._clock += 1
        self.total_observed += 1
        self._window_arrivals += 1

        template = self._get(sql)
        if template is None:
            self._window_misses += 1
            self.total_new_templates += 1
            template = QueryTemplate(
                fingerprint=sql,
                statement=statement,
                is_write=ast.is_write(statement),
            )
            self._insert(template)
            if self._size > self.capacity:
                self._evict()
        template.frequency += 1.0
        template.window_frequency += 1.0
        template.last_seen = self._clock
        template.sample_sql = sql
        return template

    def _evict(self) -> None:
        """Drop the coldest template of the most over-budget shard.

        The LRU budget is split evenly across shards; the shard most
        over its slice pays the eviction (ties broken by shard name
        for determinism) with its least-frequently / least-recently
        matched template.
        """
        victim_shard = max(
            sorted(self._shards),
            key=lambda key: len(self._shards[key]),
        )
        victim = min(
            self._shards[victim_shard].values(),
            key=lambda t: (t.frequency, t.last_seen),
        )
        self._remove(victim.fingerprint)

    # -- drift handling ------------------------------------------------------------

    def drift_detected(self) -> bool:
        """True when most recent arrivals missed existing templates."""
        if self._window_arrivals < self.drift_window:
            return False
        return (
            self._window_misses / self._window_arrivals
            >= self.drift_miss_ratio
        )

    def handle_drift(self) -> int:
        """Decay all frequencies and drop cold templates.

        Returns the number of templates removed. Call when
        :meth:`drift_detected` fires (the advisor does this).
        """
        removed = 0
        for template in list(self._iter_templates()):
            template.frequency *= self.decay_factor
            if template.frequency < self.cold_threshold:
                self._remove(template.fingerprint)
                removed += 1
        self._window_arrivals = 0
        self._window_misses = 0
        return removed

    def reset_window(self) -> None:
        self._window_arrivals = 0
        self._window_misses = 0

    def begin_tuning_window(self) -> None:
        """Start a fresh observation window (after a tuning round)."""
        for template in self._iter_templates():
            template.window_frequency = 0.0

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable snapshot of the store (template bodies are
        reconstructed from their sample SQL on load)."""
        return {
            "capacity": self.capacity,
            "decay_factor": self.decay_factor,
            "cold_threshold": self.cold_threshold,
            "clock": self._clock,
            "templates": [
                {
                    "fingerprint": t.fingerprint,
                    "frequency": t.frequency,
                    "window_frequency": t.window_frequency,
                    "last_seen": t.last_seen,
                    "sample_sql": t.sample_sql,
                    "is_write": t.is_write,
                }
                for t in self._iter_templates()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemplateStore":
        """Rebuild a store saved with :meth:`to_dict`.

        Statements are re-parsed from each template's fingerprint
        (the fingerprint is itself valid, placeholder-bearing SQL).
        """
        store = cls(
            capacity=data.get("capacity", 5000),
            decay_factor=data.get("decay_factor", 0.5),
            cold_threshold=data.get("cold_threshold", 1.0),
        )
        store._clock = data.get("clock", 0)
        for entry in data.get("templates", []):
            statement = parse(entry["fingerprint"])
            template = QueryTemplate(
                fingerprint=entry["fingerprint"],
                statement=statement,
                frequency=entry.get("frequency", 0.0),
                window_frequency=entry.get("window_frequency", 0.0),
                last_seen=entry.get("last_seen", 0),
                sample_sql=entry.get("sample_sql", ""),
                is_write=entry.get("is_write", False),
            )
            store._insert(template)
        return store

    # -- access ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._shard_of

    def get(self, fingerprint: str) -> Optional[QueryTemplate]:
        return self._get(fingerprint)

    def templates(self, top: Optional[int] = None) -> List[QueryTemplate]:
        """Templates sorted by descending frequency."""
        ordered = sorted(
            self._iter_templates(),
            key=lambda t: (-t.frequency, -t.last_seen),
        )
        return ordered if top is None else ordered[:top]

    def templates_for_tables(
        self,
        tables: Iterable[str],
        top: Optional[int] = None,
    ) -> List[QueryTemplate]:
        """Templates referencing any of ``tables``, hottest first.

        This is the sharded fast path: only the affected shards (plus
        secondary references via the table index) are touched, so a
        configuration change on one table never scans the whole
        store.
        """
        seen: Dict[str, None] = {}
        for table in sorted(set(tables)):
            for fingerprint in self._table_index.get(table, ()):
                seen.setdefault(fingerprint, None)
        matched = [self._get(fp) for fp in seen]
        ordered = sorted(
            (t for t in matched if t is not None),
            key=lambda t: (-t.frequency, -t.last_seen),
        )
        return ordered if top is None else ordered[:top]

    def shard_stats(self) -> Dict[str, int]:
        """Template count per shard (shard key → size)."""
        return {
            key: len(self._shards[key]) for key in sorted(self._shards)
        }

    def total_frequency(self) -> float:
        return sum(t.frequency for t in self._iter_templates())
