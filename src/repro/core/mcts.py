"""MCTS-based index update over a persistent policy tree (Section IV-B).

The *policy tree*'s root is the current index configuration; every
node is a configuration reachable by adding candidate indexes or
removing existing (non-protected) ones. Search balances exploitation
and exploration with the paper's UCB utility

    U(v) = B(v) + gamma * sqrt( ln F(root) / F(v) )

where the node benefit ``B(v)`` is the best (estimated) workload cost
reduction seen in ``v``'s subtree, normalised by the baseline workload
cost, and ``F`` counts node visits.

The tree persists across tuning rounds: on a new workload the tree is
re-rooted at the node matching the now-current configuration and all
cached benefits are invalidated (epoch bump), so previous structure is
reused but estimates are refreshed — the paper's incremental update.

Scale-out evaluation (``workers > 1``): the costing of each
iteration's rollout configurations is dispatched to a forked
``concurrent.futures`` process pool. Determinism is preserved by
construction — rollout *generation* stays in the parent and consumes
``self.rng`` in exactly the serial order, only the (rng-free) costing
runs in workers, and results are merged in submission order — so
``seed=17, workers=N`` reproduces ``workers=1`` bit for bit. The pool
engages only when the backend declares itself fork-safe and no fault
injector is active (chaos runs keep the serial retry-ladder
semantics).
"""

from __future__ import annotations

import math
import multiprocessing
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.estimator import BenefitEstimator
from repro.core.templates import QueryTemplate
from repro.engine.index import IndexDef
from repro.engine.metrics import CacheStats, Stopwatch

IndexKey = Tuple[str, Tuple[str, ...]]

DEFAULT_GAMMA = 0.4

#: Selector installed in each pool worker at fork time. Workers
#: inherit the parent's search-scoped state (universe, templates,
#: root reference, estimator caches) through the fork — nothing is
#: pickled — and only ever *read* it: a job is pure costing.
_WORKER_SELECTOR: Optional["MctsIndexSelector"] = None


def _pool_initializer(selector: "MctsIndexSelector") -> None:
    global _WORKER_SELECTOR
    _WORKER_SELECTOR = selector


def _pool_cost_job(config_keys: Tuple[IndexKey, ...]):
    """Cost one configuration against the root reference.

    Runs in a forked worker. Delta costing against the root is
    bitwise-identical to costing against any other fresh reference
    (the estimator's documented guarantee), so the parent is free to
    merge these numbers exactly as if it had computed them itself.
    """
    selector = _WORKER_SELECTOR
    assert selector is not None, "pool worker not initialised"
    fallbacks_before = selector.estimator.fallbacks
    result = selector._cost_of(frozenset(config_keys), selector._root_ref)
    if selector.estimator.fallbacks != fallbacks_before:
        # The estimator degraded mid-job: the demotion (model swap,
        # fallback counter, cache flush) happened in this fork and is
        # invisible to the parent, whose estimator would keep serving
        # the healthy model. Discard the result and fail the job; the
        # parent abandons the pool and recomputes in-process, where
        # the degradation applies to the estimator everyone sees.
        raise RuntimeError(
            "estimator degraded inside a pool worker; "
            "recompute in the parent"
        )
    return result


@dataclass(frozen=True)
class Action:
    """An edge in the policy tree: add or remove one index."""

    kind: str  # "add" | "remove"
    index: IndexDef

    def __str__(self) -> str:
        sign = "+" if self.kind == "add" else "-"
        return f"{sign}{self.index}"


class PolicyNode:
    """One index configuration in the policy tree."""

    __slots__ = (
        "config",
        "action",
        "children",
        "visits",
        "own_benefit",
        "costs",
        "costs_epoch",
        "subtree_best",
        "epoch",
        "expanded",
        "parent",
    )

    def __init__(
        self,
        config: FrozenSet[IndexKey],
        action: Optional[Action] = None,
        parent: Optional["PolicyNode"] = None,
    ):
        self.config = config
        self.action = action
        self.parent = parent
        self.children: List["PolicyNode"] = []
        self.visits = 0
        self.own_benefit: Optional[float] = None
        # Per-template weighted costs of this config (delta-costing
        # reference). Tracked with its own epoch: ``epoch`` doubles as
        # the expansion marker and can be bumped without recosting.
        self.costs: Optional[np.ndarray] = None
        self.costs_epoch = -1
        self.subtree_best = -math.inf
        self.epoch = -1
        self.expanded = False

    def invalidate(self) -> None:
        """Mark this node's estimates stale (workload changed)."""
        self.own_benefit = None
        self.costs = None
        self.costs_epoch = -1
        self.subtree_best = -math.inf
        self.epoch = -1


@dataclass
class SearchResult:
    """Outcome of one MCTS tuning round."""

    best_config: List[IndexDef]
    best_benefit: float
    baseline_cost: float
    iterations: int
    evaluations: int
    additions: List[IndexDef] = field(default_factory=list)
    removals: List[IndexDef] = field(default_factory=list)
    plans_computed: int = 0
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    deadline_hit: bool = False
    #: Process-pool width the rollout costing actually ran with (1 =
    #: serial; the pool gates off under fault injection or on a
    #: backend that is not fork-safe).
    workers_used: int = 1

    @property
    def relative_improvement(self) -> float:
        if self.baseline_cost <= 0:
            return 0.0
        return self.best_benefit / self.baseline_cost


class PolicyTree:
    """Persistent tree + registry for incremental re-rooting."""

    def __init__(self) -> None:
        self.root: Optional[PolicyNode] = None
        self.registry: Dict[FrozenSet[IndexKey], PolicyNode] = {}
        self.epoch = 0

    def reroot(self, config: FrozenSet[IndexKey]) -> PolicyNode:
        """Point the root at ``config``, reusing an existing node."""
        node = self.registry.get(config)
        if node is None:
            node = PolicyNode(config)
            self.registry[config] = node
        self.root = node
        return node

    def new_epoch(self) -> None:
        """Invalidate all cached benefits (workload changed)."""
        self.epoch += 1

    def node_count(self) -> int:
        return len(self.registry)

    def child(self, parent: PolicyNode, action: Action) -> PolicyNode:
        """Create (or fetch) the child configuration node."""
        if action.kind == "add":
            config = parent.config | {action.index.key}
        else:
            config = parent.config - {action.index.key}
        node = self.registry.get(config)
        if node is None:
            node = PolicyNode(config, action=action, parent=parent)
            self.registry[config] = node
        if node not in parent.children:
            parent.children.append(node)
        return node


class MctsIndexSelector:
    """The paper's MCTS index update algorithm."""

    def __init__(
        self,
        estimator: BenefitEstimator,
        gamma: float = DEFAULT_GAMMA,
        iterations: int = 60,
        rollouts: int = 4,
        rollout_depth: Optional[int] = None,
        max_children: int = 24,
        patience: int = 25,
        seed: int = 17,
        rng: Optional[random.Random] = None,
        delta_costing: bool = True,
        deadline_seconds: Optional[float] = None,
        max_evaluations: Optional[int] = None,
        workers: int = 1,
    ):
        self.estimator = estimator
        self.gamma = gamma
        self.iterations = iterations
        self.rollouts = rollouts
        self.rollout_depth = rollout_depth
        self.max_children = max_children
        self.patience = patience
        # Anytime-search bounds: a cooperative wall-clock deadline
        # (checked between iterations, never mid-evaluation) and a
        # deterministic evaluation cap. Both return best-so-far
        # instead of raising; None disables each.
        self.deadline_seconds = deadline_seconds
        self.max_evaluations = max_evaluations
        # An injected RNG makes rollouts reproducible run-to-run (and
        # lets callers share one stream across components); ``seed``
        # is the convenience fallback.
        self.rng = rng if rng is not None else random.Random(seed)
        self.delta_costing = delta_costing
        # Rollout costing fan-out. Results are identical for every
        # worker count (see the module docstring); the pool is a pure
        # wall-clock lever on multi-core hosts.
        self.workers = max(int(workers), 1)
        self._pool: Optional[ProcessPoolExecutor] = None
        self.tree = PolicyTree()
        # Search-scoped state (reset per round).
        self._universe: Dict[IndexKey, IndexDef] = {}
        self._candidates: List[IndexDef] = []
        self._protected: Set[IndexKey] = set()
        self._templates: Sequence[QueryTemplate] = ()
        self._budget: Optional[int] = None
        self._baseline_cost = 0.0
        self._evaluations = 0
        self._best_benefit = 0.0
        self._best_config: FrozenSet[IndexKey] = frozenset()
        self._root_ref: Optional[
            Tuple[FrozenSet[IndexKey], np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    # round entry point
    # ------------------------------------------------------------------

    def search(
        self,
        existing: Sequence[IndexDef],
        candidates: Sequence[IndexDef],
        templates: Sequence[QueryTemplate],
        budget_bytes: Optional[int] = None,
        protected: Sequence[IndexDef] = (),
    ) -> SearchResult:
        """Run one tuning round and return the best configuration found.

        ``existing`` is the full current configuration (including
        protected indexes, e.g. primary keys, which MCTS may use for
        costing but never removes). ``budget_bytes`` bounds the total
        size of non-protected indexes; ``None`` means unlimited.
        """
        self._protected = {d.key for d in protected}
        # The universe is cumulative: the persistent policy tree holds
        # nodes built from earlier rounds' candidates, and re-visiting
        # them must still resolve their definitions.
        for d in existing:
            self._universe[d.key] = d
        for d in candidates:
            self._universe.setdefault(d.key, d)
        self._candidates = [
            d for d in candidates if d.key not in {e.key for e in existing}
        ]
        self._templates = templates
        self._budget = budget_bytes
        self._evaluations = 0

        root_config = frozenset(d.key for d in existing)
        self.tree.new_epoch()
        root = self.tree.reroot(root_config)

        root_costs = self.estimator.workload_costs(
            templates, self._defs_of(root_config)
        )
        self._baseline_cost = float(root_costs.sum())
        # Every delta evaluation needs a reference configuration whose
        # per-template costs are known; the root is always valid.
        self._root_ref = (root_config, root_costs)
        root.costs = root_costs
        root.costs_epoch = self.tree.epoch
        self._best_benefit = 0.0
        self._best_config = root_config
        stale_rounds = 0
        iterations_run = 0
        deadline_hit = False
        timer = (
            Stopwatch() if self.deadline_seconds is not None else None
        )

        workers_used = self._open_pool()
        try:
            for _ in range(self.iterations):
                if timer is not None and (
                    timer.elapsed() >= self.deadline_seconds
                ):
                    deadline_hit = True
                    break
                if self.max_evaluations is not None and (
                    self._evaluations >= self.max_evaluations
                ):
                    deadline_hit = True
                    break
                iterations_run += 1
                previous_best = self._best_benefit
                node = self._select(root)
                benefit = self._evaluate(node)
                self._backpropagate(node, benefit)
                if self._best_benefit > previous_best + 1e-9:
                    stale_rounds = 0
                else:
                    stale_rounds += 1
                if stale_rounds >= self.patience:
                    break
        finally:
            self._close_pool()

        if not deadline_hit:
            # Final polish (Section III workflow): prune redundant/
            # negative indexes out of the winner; also consider the
            # pruned union of all candidates — shrunk back inside the
            # budget by dropping the worst benefit-per-byte indexes —
            # which greedy repair can turn into a strong configuration
            # even when search never visited it directly. Skipped
            # entirely once the deadline fires: polish costs many more
            # evaluations, and anytime search promises best-so-far
            # *now*.
            union = root_config | {
                c.key
                for c in self._candidates
                if self._budget is None
                or self.estimator.backend.index_size_bytes(c) <= self._budget
            }
            pruned_union = self._fit_to_budget(
                self._prune(frozenset(union))
            )
            union_cost, _ = self._cost_of(pruned_union, self._root_ref)
            union_benefit = self._baseline_cost - union_cost
            if (
                union_benefit > self._best_benefit
                and self._within_budget(pruned_union)
            ):
                self._best_benefit = union_benefit
                self._best_config = pruned_union

        best_benefit = self._best_benefit
        if deadline_hit:
            best_config = self._best_config
        else:
            best_config = self._prune(self._best_config)
        final_cost, _ = self._cost_of(best_config, self._root_ref)
        best_benefit = max(
            self._baseline_cost - final_cost,
            best_benefit,
        )
        best_defs = self._defs_of(best_config)
        existing_keys = {d.key for d in existing}
        additions = [
            d for d in best_defs if d.key not in existing_keys
        ]
        removals = [
            d for d in existing if d.key not in best_config
        ]
        return SearchResult(
            best_config=best_defs,
            best_benefit=best_benefit,
            baseline_cost=self._baseline_cost,
            iterations=iterations_run,
            evaluations=self._evaluations,
            additions=additions,
            removals=removals,
            plans_computed=self.estimator.plans_computed,
            cache_stats=self.estimator.cache_stats(),
            deadline_hit=deadline_hit,
            workers_used=workers_used,
        )

    # ------------------------------------------------------------------
    # rollout process pool
    # ------------------------------------------------------------------

    def parallel_available(self) -> bool:
        """Whether rollout costing may fan out to a process pool.

        Requires more than one worker, no active fault injector
        (chaos runs keep per-statement retry-ladder semantics in one
        process), a backend that declares itself safe to use from a
        forked child (``parallel_safe``), and an OS with the ``fork``
        start method — workers must inherit the search state by
        forking, never by pickling.
        """
        return (
            self.workers > 1
            and self.estimator.faults is None
            and getattr(self.estimator.backend, "parallel_safe", False)
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _open_pool(self) -> int:
        """Fork the rollout-costing pool for this search, if allowed.

        Called after the search-scoped state (universe, candidates,
        templates, root reference) is in place so forked workers
        inherit a complete snapshot. Returns the effective width.
        """
        self._pool = None
        if not self.parallel_available():
            return 1
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_pool_initializer,
                initargs=(self,),
            )
        except (OSError, ValueError):
            self._pool = None
            return 1
        return self.workers

    def _close_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # the four MCTS steps
    # ------------------------------------------------------------------

    def _select(self, root: PolicyNode) -> PolicyNode:
        """Step 1 — descend by maximum utility, expanding on the way."""
        node = root
        depth = 0
        while True:
            if not node.expanded or node.epoch != self.tree.epoch:
                self._expand(node)
            if not node.children or depth >= 12:
                return node
            unvisited = [c for c in node.children if c.visits == 0]
            if unvisited:
                return self.rng.choice(unvisited)
            total_visits = max(
                sum(c.visits for c in node.children), 1
            )
            log_total = math.log(max(total_visits, 2))
            # Inlined argmax over _utility (same arithmetic): this
            # loop runs for every child of every descend step and the
            # max(key=lambda...) dispatch dominated selection time.
            denom = max(self._baseline_cost, 1e-9)
            gamma = self.gamma
            best_child = node.children[0]
            best_utility = -math.inf
            for child in node.children:
                benefit = child.subtree_best
                if benefit == -math.inf:
                    benefit = 0.0
                utility = benefit / denom + gamma * math.sqrt(
                    log_total / child.visits
                )
                if utility > best_utility:
                    best_utility = utility
                    best_child = child
            node = best_child
            depth += 1
            if node.visits == 0:
                return node

    def _utility(
        self,
        node: PolicyNode,
        total_visits: int,
        log_total: Optional[float] = None,
    ) -> float:
        """The paper's UCB: normalised benefit + exploration bonus.

        ``log_total`` lets the selection loop hoist the logarithm of
        the shared visit total out of the per-child comparison.
        """
        if node.visits == 0:
            return math.inf
        if log_total is None:
            log_total = math.log(max(total_visits, 2))
        benefit = node.subtree_best
        if benefit == -math.inf:
            benefit = 0.0
        normalised = benefit / max(self._baseline_cost, 1e-9)
        exploration = self.gamma * math.sqrt(log_total / node.visits)
        return normalised + exploration

    def _expand(self, node: PolicyNode) -> None:
        """Step 1(ii) — materialise the node's child actions."""
        actions = self._legal_actions(node.config)
        if len(actions) > self.max_children:
            # Keep the highest-support additions, sample the rest.
            adds = [a for a in actions if a.kind == "add"]
            removes = [a for a in actions if a.kind == "remove"]
            keep = adds[: self.max_children // 2]
            rest = adds[self.max_children // 2 :] + removes
            self.rng.shuffle(rest)
            actions = keep + rest[: self.max_children - len(keep)]
        for action in actions:
            self.tree.child(node, action)
        node.expanded = True
        node.epoch = self.tree.epoch

    def _legal_actions(self, config: FrozenSet[IndexKey]) -> List[Action]:
        actions: List[Action] = []
        size = self._config_size(config)
        for candidate in self._candidates:
            if candidate.key in config:
                continue
            if self._budget is not None:
                extra = self.estimator.backend.index_size_bytes(candidate)
                if size + extra > self._budget:
                    continue
            actions.append(Action(kind="add", index=candidate))
        # sorted(): frozenset iteration order follows PYTHONHASHSEED,
        # and action order is a tie-break in child selection.
        for key in sorted(config):
            if key in self._protected:
                continue
            actions.append(Action(kind="remove", index=self._universe[key]))
        return actions

    def _evaluate(self, node: PolicyNode) -> float:
        """Step 2 — node benefit from its config plus K random rollouts.

        The node itself is costed as a delta against its parent when
        the parent's per-template costs are fresh (one edge away, so
        only templates touching one table get re-costed); rollouts
        then delta against the node, whose costs are fresh after its
        own evaluation.

        With an active pool the iteration's configurations are costed
        concurrently instead (:meth:`_evaluate_parallel`); rollout
        generation still runs here, on ``self.rng``, in serial order.
        """
        if self._pool is not None:
            return self._evaluate_parallel(node)
        ref = self._ref_for(node.parent)
        if node.own_benefit is None or node.epoch != self.tree.epoch:
            node.own_benefit = self._config_benefit(node.config, ref)
            node.epoch = self.tree.epoch
        best = node.own_benefit
        rollout_ref = self._ref_for(node)
        for _ in range(self.rollouts):
            best = max(best, self._rollout(node.config, rollout_ref))
        return best

    def _evaluate_parallel(self, node: PolicyNode) -> float:
        """Pool variant of :meth:`_evaluate`: same numbers, same order.

        Rollout configurations are generated serially from
        ``self.rng`` (the exact draw sequence of the serial path —
        generation and costing commute because costing never touches
        the rng), their costing is dispatched to the forked pool, and
        results are merged in submission order through the same
        bookkeeping (:meth:`_record_benefit`) the serial path uses.
        Budget-violating configurations are rejected at submission
        time, mirroring the serial short-circuit. A worker failure
        degrades that job (and the rest of the search) to in-process
        costing — identical values, just serial again.
        """
        need_own = (
            node.own_benefit is None or node.epoch != self.tree.epoch
        )
        configs: List[FrozenSet[IndexKey]] = []
        if need_own:
            configs.append(node.config)
        for _ in range(self.rollouts):
            configs.append(self._rollout_config(node.config, self.rng))

        jobs = []
        for config in configs:
            pool = self._pool
            over_budget = self._budget is not None and (
                self._config_size(config) > self._budget
            )
            if over_budget or pool is None:
                jobs.append((config, None, over_budget))
            else:
                try:
                    future = pool.submit(_pool_cost_job, tuple(config))
                except Exception:
                    self._abandon_pool()
                    future = None
                jobs.append((config, future, False))

        benefits: List[float] = []
        # Submission-order merge: never as_completed — arrival order
        # would leak worker scheduling into best-config tie-breaks.
        for config, future, over_budget in jobs:
            if over_budget:
                benefits.append(-math.inf)
                continue
            self._evaluations += 1
            if future is not None:
                try:
                    cost, costs = future.result()
                except Exception:
                    self._abandon_pool()
                    future = None
            if future is None:
                cost, costs = self._cost_of(config, self._root_ref)
            benefits.append(self._record_benefit(config, cost, costs))

        position = 0
        if need_own:
            node.own_benefit = benefits[0]
            node.epoch = self.tree.epoch
            position = 1
        best = node.own_benefit
        for benefit in benefits[position:]:
            best = max(best, benefit)
        return best

    def _abandon_pool(self) -> None:
        """A worker died: finish the search serially (same results)."""
        self._close_pool()

    def _ref_for(
        self, node: Optional[PolicyNode]
    ) -> Optional[Tuple[FrozenSet[IndexKey], np.ndarray]]:
        """A node's (config, costs) reference, if its costs are fresh."""
        if (
            node is not None
            and node.costs is not None
            and node.costs_epoch == self.tree.epoch
        ):
            return (node.config, node.costs)
        return self._root_ref

    def _rollout(
        self,
        config: FrozenSet[IndexKey],
        ref: Optional[Tuple[FrozenSet[IndexKey], np.ndarray]] = None,
    ) -> float:
        """Randomly extend a configuration and cost the result."""
        final = self._rollout_config(config, self.rng)
        return self._config_benefit(final, ref)

    def _rollout_config(
        self, config: FrozenSet[IndexKey], rng: random.Random
    ) -> FrozenSet[IndexKey]:
        """Generate one rollout's final configuration (no costing).

        Kept separate from costing so the parallel path can generate
        on the parent's rng stream while workers cost the results.
        """
        current = set(config)
        pool = [c for c in self._candidates if c.key not in current]
        rng.shuffle(pool)
        steps = 0
        # Per the paper, rollouts may extend until they "arrive the
        # storage constraint"; sampling a random depth per rollout
        # keeps the leaf distribution diverse — a fixed full depth
        # would evaluate the same all-candidates configuration every
        # time and never explore subsets.
        if self.rollout_depth is not None:
            max_steps = self.rollout_depth
        else:
            max_steps = rng.randint(0, len(pool)) if pool else 0
        for candidate in pool:
            if steps >= max_steps:
                break
            if self._budget is not None:
                size = self._config_size(frozenset(current))
                extra = self.estimator.backend.index_size_bytes(candidate)
                if size + extra > self._budget:
                    continue
            current.add(candidate.key)
            steps += 1
        # Occasionally try dropping one removable index during rollout.
        # sorted(): rng.choice picks by position, so the candidate
        # order must not depend on set hashing.
        removable = sorted(k for k in current if k not in self._protected)
        if removable and rng.random() < 0.3:
            current.discard(rng.choice(removable))
        return frozenset(current)

    def _backpropagate(self, node: PolicyNode, benefit: float) -> None:
        """Step 3 — push visits and max-benefit up the path."""
        current: Optional[PolicyNode] = node
        while current is not None:
            current.visits += 1
            if benefit > current.subtree_best:
                current.subtree_best = benefit
            current = current.parent

    # ------------------------------------------------------------------
    # benefit plumbing
    # ------------------------------------------------------------------

    def _cost_of(
        self,
        config: FrozenSet[IndexKey],
        ref: Optional[Tuple[FrozenSet[IndexKey], np.ndarray]] = None,
    ) -> Tuple[float, np.ndarray]:
        """Workload cost of ``config`` plus its per-template cost array.

        With delta costing enabled and a reference available, only
        templates touching tables whose index set differs from the
        reference are re-costed; the result is bitwise identical to a
        full recomputation (the estimator guarantees it).
        """
        if self.delta_costing and ref is not None:
            ref_config, ref_costs = ref
            # The frozenset symmetric difference gives the changed
            # tables directly (every index key starts with its table
            # name) — no need to materialise the reference defs.
            changed = {
                key[0] for key in config.symmetric_difference(ref_config)
            }
            return self.estimator.workload_cost_delta(
                ref_costs,
                self._templates,
                (),
                self._defs_of(config),
                changed_tables=changed,
            )
        costs = self.estimator.workload_costs(
            self._templates, self._defs_of(config)
        )
        return float(costs.sum()), costs

    def _config_benefit(
        self,
        config: FrozenSet[IndexKey],
        ref: Optional[Tuple[FrozenSet[IndexKey], np.ndarray]] = None,
    ) -> float:
        if self._budget is not None and (
            self._config_size(config) > self._budget
        ):
            return -math.inf
        self._evaluations += 1
        if ref is None:
            ref = self._root_ref
        cost, costs = self._cost_of(config, ref)
        return self._record_benefit(config, cost, costs)

    def _record_benefit(
        self,
        config: FrozenSet[IndexKey],
        cost: float,
        costs: np.ndarray,
    ) -> float:
        """Fold one costed configuration into the search state.

        Shared by the serial path and the pool merge so both perform
        the identical bookkeeping sequence: registry-node refresh
        (cost arrays are the delta references for the node's
        children), then best-so-far tracking.
        """
        benefit = self._baseline_cost - cost
        # Keep the registry node's own estimate (and cost array, the
        # delta reference for its children) fresh.
        node = self.tree.registry.get(config)
        if node is not None:
            if node.own_benefit is None or node.epoch != self.tree.epoch:
                node.own_benefit = benefit
                node.epoch = self.tree.epoch
            node.costs = costs
            node.costs_epoch = self.tree.epoch
        if benefit > self._best_benefit:
            self._best_benefit = benefit
            self._best_config = config
        return benefit

    def _fit_to_budget(
        self, config: FrozenSet[IndexKey]
    ) -> FrozenSet[IndexKey]:
        """Shrink an over-budget config by dropping the indexes with
        the worst marginal benefit per byte until it fits.

        This is the paper's "if the storage has arrived limit, try out
        other branches" behaviour in closed form: instead of
        truncating a ranked list like Greedy, the repair keeps the
        combination that buys the most benefit per byte of budget.
        """
        if self._budget is None:
            return config
        current = set(config)
        while self._config_size(frozenset(current)) > self._budget:
            removable = sorted(
                k for k in current if k not in self._protected
            )
            if not removable:
                return frozenset(current)  # nothing else can give
            frozen = frozenset(current)
            base_cost, base_costs = self._cost_of(frozen, self._root_ref)
            best_key = None
            best_ratio = None
            for key in removable:
                without_cost, _ = self._cost_of(
                    frozen - {key}, (frozen, base_costs)
                )
                loss = max(without_cost - base_cost, 0.0)
                size = self.estimator.backend.index_size_bytes(
                    self._universe[key]
                )
                ratio = loss / max(size, 1)
                if best_ratio is None or ratio < best_ratio:
                    best_ratio = ratio
                    best_key = key
            current.discard(best_key)
        return self._fill_budget(frozenset(current))

    def _fill_budget(
        self, config: FrozenSet[IndexKey]
    ) -> FrozenSet[IndexKey]:
        """Spend leftover budget on the best remaining candidates.

        After repair some budget may be unused; greedily add back the
        candidates with the highest marginal benefit per byte while
        they fit and actually help.
        """
        if self._budget is None:
            return config
        current = set(config)
        improved = True
        while improved:
            improved = False
            frozen = frozenset(current)
            size = self._config_size(frozen)
            base_cost, base_costs = self._cost_of(frozen, self._root_ref)
            best_key = None
            best_ratio = 0.0
            for candidate in self._candidates:
                if candidate.key in current:
                    continue
                extra = self.estimator.backend.index_size_bytes(candidate)
                if size + extra > self._budget:
                    continue
                with_cost, _ = self._cost_of(
                    frozen | {candidate.key}, (frozen, base_costs)
                )
                gain = base_cost - with_cost
                if gain <= 1e-9:
                    continue
                ratio = gain / max(extra, 1)
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_key = candidate.key
            if best_key is not None:
                current.add(best_key)
                improved = True
        return frozenset(current)

    def _within_budget(self, config: FrozenSet[IndexKey]) -> bool:
        if self._budget is None:
            return True
        return self._config_size(config) <= self._budget

    def _prune(self, config: FrozenSet[IndexKey]) -> FrozenSet[IndexKey]:
        """Strip redundant/negative indexes from the winning config.

        The workflow step of Section III: after search, every
        non-protected index whose removal does not increase the
        estimated workload cost is dropped — rollouts can sweep
        freeloading indexes into an otherwise-good configuration, and
        each freeloader still costs storage and write maintenance.
        """
        current = config
        cost, costs = self._cost_of(current, self._root_ref)
        improved = True
        while improved:
            improved = False
            for key in sorted(current):
                if key in self._protected:
                    continue
                trial = current - {key}
                trial_cost, trial_costs = self._cost_of(
                    trial, (current, costs)
                )
                if trial_cost <= cost * (1.0 + 1e-9):
                    current = trial
                    cost = trial_cost
                    costs = trial_costs
                    improved = True
        return current

    def _defs_of(self, config: FrozenSet[IndexKey]) -> List[IndexDef]:
        return [self._universe[key] for key in sorted(config)]

    def _config_size(self, config: FrozenSet[IndexKey]) -> int:
        """Total bytes of the non-protected indexes in a config."""
        total = 0
        # lint: ignore[unordered-iteration] -- order-free integer sum
        for key in config:
            if key in self._protected:
                continue
            total += self.estimator.backend.index_size_bytes(self._universe[key])
        return total
