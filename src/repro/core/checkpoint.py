"""Crash-safe checkpoint directories for advisor state.

Layout (all writes atomic: temp file + fsync + rename):

    <dir>/templates.json        current component payloads
    <dir>/estimator.npz
    <dir>/templates.json.prev   previous generation (rename of the
    <dir>/estimator.npz.prev    old file, made just before replacing)
    <dir>/manifest.json         written LAST: format version + sha256
    <dir>/manifest.json.prev    checksum and byte size per component

Because the manifest lands last and every file is replaced atomically,
a crash at any instant leaves the directory loadable:

* crash before any write — the old generation is untouched;
* crash between component writes — new files are complete (rename is
  atomic; there are no torn writes), old files survive as ``.prev``;
* crash before the manifest write — component checksums mismatch the
  stale manifest, which the loader treats as "unverified", not fatal.

Loading mirrors that: for each component the loader tries the current
file, then ``.prev``, accepting the first candidate that actually
parses; checksums (when a manifest entry exists) upgrade a load to
*verified* but a mismatch alone never rejects a parseable payload — a
complete-but-unmanifested file is exactly what a mid-save crash leaves
behind. A component with no loadable candidate is *skipped* (the
caller keeps its in-memory state); :func:`read_component` never
raises.

Multi-tenant layout: a checkpoint *root* holds one namespace per
tenant (``<root>/tenant-<encoded id>/``), each an ordinary checkpoint
directory with all of the guarantees above.  :func:`tenant_namespace`
maps a tenant id to its directory (percent-encoding anything the
filesystem or the ``.prev`` rotation could misread), and
:func:`list_tenant_namespaces` enumerates a root.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.engine.faults import (
    FaultError,
    FaultInjector,
    check as fault_check,
)

MANIFEST_NAME = "manifest.json"
PREV_SUFFIX = ".prev"
FORMAT_VERSION = 1

#: Subdirectory prefix marking a tenant namespace inside a checkpoint
#: root; the rest of the name is the percent-encoded tenant id.
TENANT_PREFIX = "tenant-"

#: Characters a tenant id may contribute verbatim to its directory
#: name; anything else is percent-encoded.  Deliberately excludes
#: ``.`` so no encoded id can spell ``.``/``..`` or collide with the
#: ``.prev`` rotation suffix.
_TENANT_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789-_"
)


def encode_tenant_id(tenant_id: str) -> str:
    """Filesystem-safe, collision-free spelling of a tenant id.

    Safe characters pass through; everything else (including ``/``,
    ``.`` and ``%`` itself) becomes ``%XX`` per UTF-8 byte, so two
    distinct ids can never map to one directory and no id can escape
    the checkpoint root.
    """
    if not tenant_id:
        raise ValueError("tenant id must be non-empty")
    out = []
    for ch in tenant_id:
        if ch in _TENANT_SAFE:
            out.append(ch)
        else:
            out.extend(f"%{b:02X}" for b in ch.encode("utf-8"))
    return "".join(out)


def decode_tenant_id(encoded: str) -> str:
    """Inverse of :func:`encode_tenant_id`."""
    data = bytearray()
    i = 0
    while i < len(encoded):
        ch = encoded[i]
        if ch == "%":
            data.append(int(encoded[i + 1 : i + 3], 16))
            i += 3
        else:
            data.extend(ch.encode("utf-8"))
            i += 1
    return data.decode("utf-8")


def tenant_namespace(root, tenant_id: str) -> pathlib.Path:
    """The per-tenant checkpoint directory under ``root``.

    Each namespace is an ordinary checkpoint directory — the atomic
    write, ``.prev`` rotation, and manifest-last guarantees of
    :func:`write_checkpoint` apply per tenant, and concurrent saves to
    *different* tenants never touch each other's files.  The directory
    is not created here; :func:`write_checkpoint` creates it on first
    save.
    """
    return pathlib.Path(root) / (
        TENANT_PREFIX + encode_tenant_id(tenant_id)
    )


def list_tenant_namespaces(root) -> List[str]:
    """Tenant ids with a namespace under ``root``, sorted.

    Only directories carrying the tenant prefix count; a namespace
    that exists but was never saved to (no files yet) is still
    listed, since the daemon creates tenants before their first
    checkpoint lands.
    """
    path = pathlib.Path(root)
    if not path.is_dir():
        return []
    tenants = []
    for entry in sorted(path.iterdir()):
        if not entry.is_dir():
            continue
        if not entry.name.startswith(TENANT_PREFIX):
            continue
        try:
            tenants.append(
                decode_tenant_id(entry.name[len(TENANT_PREFIX):])
            )
        except (ValueError, UnicodeDecodeError):
            continue
    return tenants


@dataclass
class ComponentLoad:
    """How one component of a checkpoint loaded."""

    name: str
    status: str  # "loaded" | "fallback" | "skipped" | "missing"
    verified: bool = False
    detail: str = ""


@dataclass
class CheckpointLoadReport:
    """What :meth:`AutoIndexAdvisor.load_state` managed to restore."""

    components: List[ComponentLoad] = field(default_factory=list)
    manifest_found: bool = False

    def status_of(self, name: str) -> Optional[str]:
        for component in self.components:
            if component.name == name:
                return component.status
        return None

    def loaded(self, name: str) -> bool:
        return self.status_of(name) in ("loaded", "fallback")


def atomic_write(path: pathlib.Path, blob: bytes) -> None:
    """Write ``blob`` so that ``path`` is only ever old or complete."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def write_checkpoint(
    directory,
    components: Dict[str, bytes],
    faults: Optional[FaultInjector] = None,
) -> Dict:
    """Write a checkpoint generation; returns the manifest dict.

    The previous generation of every replaced file is preserved under
    ``<name>.prev`` *before* the new payload lands, so a crash (or an
    injected ``checkpoint.io`` fault) mid-save always leaves a
    complete generation on disk for the loader to fall back to.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    entries: Dict[str, Dict] = {}
    for name, blob in components.items():
        fault_check(faults, "checkpoint.io")
        target = path / name
        if target.exists():
            os.replace(target, path / (name + PREV_SUFFIX))
        atomic_write(target, blob)
        entries[name] = {"sha256": _sha256(blob), "bytes": len(blob)}
    fault_check(faults, "checkpoint.io")
    manifest = {"format_version": FORMAT_VERSION, "components": entries}
    manifest_blob = json.dumps(manifest, indent=2, sort_keys=True).encode(
        "utf-8"
    )
    manifest_target = path / MANIFEST_NAME
    if manifest_target.exists():
        os.replace(
            manifest_target, path / (MANIFEST_NAME + PREV_SUFFIX)
        )
    atomic_write(manifest_target, manifest_blob)
    return manifest


def update_component(
    directory,
    name: str,
    blob: bytes,
    faults: Optional[FaultInjector] = None,
) -> Dict:
    """Replace one component of an existing checkpoint in place.

    Built for out-of-process writers (the review CLI resolving
    verdicts against a checkpoint directory while the advisor is
    down): the other components and their manifest entries are
    preserved verbatim, only ``name`` is rewritten — with the same
    ``.prev`` rotation and manifest-last ordering as a full
    :func:`write_checkpoint`, so crash-safety guarantees carry over.
    Returns the new manifest.
    """
    path = pathlib.Path(directory)
    manifest = read_manifest(path, faults=faults) or {
        "format_version": FORMAT_VERSION,
        "components": {},
    }
    entries: Dict[str, Dict] = dict(manifest.get("components", {}))
    fault_check(faults, "checkpoint.io")
    target = path / name
    if target.exists():
        os.replace(target, path / (name + PREV_SUFFIX))
    atomic_write(target, blob)
    entries[name] = {"sha256": _sha256(blob), "bytes": len(blob)}
    fault_check(faults, "checkpoint.io")
    updated = {
        "format_version": manifest.get(
            "format_version", FORMAT_VERSION
        ),
        "components": entries,
    }
    manifest_blob = json.dumps(updated, indent=2, sort_keys=True).encode(
        "utf-8"
    )
    manifest_target = path / MANIFEST_NAME
    if manifest_target.exists():
        os.replace(
            manifest_target, path / (MANIFEST_NAME + PREV_SUFFIX)
        )
    atomic_write(manifest_target, manifest_blob)
    return updated


def read_manifest(
    directory, faults: Optional[FaultInjector] = None
) -> Optional[Dict]:
    """Best-effort manifest read: current, then ``.prev``, else None."""
    path = pathlib.Path(directory)
    for name in (MANIFEST_NAME, MANIFEST_NAME + PREV_SUFFIX):
        candidate = path / name
        if not candidate.exists():
            continue
        try:
            fault_check(faults, "checkpoint.io")
            manifest = json.loads(candidate.read_bytes().decode("utf-8"))
        except (OSError, ValueError, FaultError):
            continue
        if isinstance(manifest, dict) and isinstance(
            manifest.get("components"), dict
        ):
            return manifest
    return None


def read_component(
    directory,
    name: str,
    loader: Callable[[bytes], object],
    manifest: Optional[Dict],
    report: CheckpointLoadReport,
    faults: Optional[FaultInjector] = None,
) -> Optional[object]:
    """Load one component, falling back to its previous generation.

    Tries ``<name>`` then ``<name>.prev``; the first candidate whose
    bytes both read and pass ``loader`` wins. Never raises — a
    component with no usable candidate is recorded as skipped/missing
    and ``None`` is returned so the caller keeps its current state.
    """
    path = pathlib.Path(directory)
    entry = (manifest or {}).get("components", {}).get(name)
    failures: List[str] = []
    tried_any = False
    for suffix, status in (("", "loaded"), (PREV_SUFFIX, "fallback")):
        candidate = path / (name + suffix)
        if not candidate.exists():
            continue
        tried_any = True
        try:
            fault_check(faults, "checkpoint.io")
            blob = candidate.read_bytes()
        except (OSError, FaultError) as exc:
            failures.append(f"{candidate.name}: read failed ({exc})")
            continue
        verified = bool(entry) and entry.get("sha256") == _sha256(blob)
        try:
            value = loader(blob)
        except Exception as exc:
            # Deliberately broad: "load the last good state, never
            # raise" is the contract; any parse/validation error just
            # advances to the previous generation.
            failures.append(f"{candidate.name}: unloadable ({exc})")
            continue
        report.components.append(
            ComponentLoad(
                name=name,
                status=status,
                verified=verified,
                detail="; ".join(failures),
            )
        )
        return value
    report.components.append(
        ComponentLoad(
            name=name,
            status="skipped" if tried_any else "missing",
            detail="; ".join(failures),
        )
    )
    return None
