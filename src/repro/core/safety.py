"""The regret-bounded apply layer: ledger, shadow gate, review queue.

The paper's tuner applies DDL whenever the estimator predicts benefit;
the post-apply observation window (auto-revert) is the only defense
against a wrong prediction. This module adds the accounting that makes
every apply *regret-bounded*, in the DBA-bandits sense: each applied
index is a bandit arm, the estimator's predicted benefit is the arm's
claimed reward, and the benefit actually observed over the arm's
observation window settles the claim.

Three pieces cooperate:

* :class:`BenefitLedger` — persistent per-arm accounting of predicted
  vs. observed benefit, empirical |error|, and a cumulative-regret
  counter (regret = benefit claimed but not delivered). It survives
  crash/restore through the advisor's checkpoint machinery.
* :class:`SafetyController` — the gate. Before any DDL, the shadow
  evaluation (:func:`evaluate_shadow`) costs the current and candidate
  configurations on the recent template stream via hypothetical
  what-if indexes; the controller queues (instead of applies) any
  change whose shadow margin is smaller than the ledger's historical
  error for similar arms, and degrades the advisor to shadow-only —
  recommend, never apply — once cumulative regret plus worst-case
  pending exposure would exceed the configured bound.
* :class:`ReviewQueue` — the DBA-in-the-loop half. Gated
  recommendations are queued with an :class:`Explanation` (per-template
  benefit breakdown, write-cost delta, affected tables) behind an
  accept/reject API; verdicts feed back into the estimator's training
  history.

Gating is active only when the advisor is configured for it
(``apply_mode != "auto"`` or a ``regret_bound`` is set); the ledger
itself always records, so switching a long-running advisor into a
bounded mode starts from real history rather than from zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import BenefitEstimator
from repro.core.templates import QueryTemplate
from repro.engine.index import IndexDef

__all__ = [
    "ArmStats",
    "BenefitLedger",
    "Explanation",
    "GateDecision",
    "PendingRecommendation",
    "ReviewQueue",
    "SafetyController",
    "SafetyPolicy",
    "ShadowReport",
    "TemplateImpact",
    "evaluate_shadow",
    "explain_change",
]


# ---------------------------------------------------------------------------
# per-tenant policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SafetyPolicy:
    """Per-tenant apply/regret configuration.

    The serving daemon maps every tenant to its own policy; each
    tenant then gets an *independent* :class:`SafetyController` — its
    own ledger, its own review queue, its own regret budget — so one
    tenant burning through its bound can never gate another tenant's
    applies, and a DBA verdict on one tenant's queue never leaks into
    a neighbour's training data.  The library path uses the same
    defaults through the advisor's scalar knobs.
    """

    apply_mode: str = "auto"
    regret_bound: Optional[float] = None
    regret_headroom: float = 1.0
    gate_min_observations: int = 1

    def controller(self) -> "SafetyController":
        """A fresh, independent controller honouring this policy."""
        return SafetyController(
            apply_mode=self.apply_mode,
            regret_bound=self.regret_bound,
            regret_headroom=self.regret_headroom,
            gate_min_observations=self.gate_min_observations,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "apply_mode": self.apply_mode,
            "regret_bound": self.regret_bound,
            "regret_headroom": self.regret_headroom,
            "gate_min_observations": self.gate_min_observations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SafetyPolicy":
        bound = data.get("regret_bound")
        return cls(
            apply_mode=str(data.get("apply_mode", "auto")),
            regret_bound=(
                float(bound) if bound is not None else None  # type: ignore[arg-type]
            ),
            regret_headroom=float(data.get("regret_headroom", 1.0)),  # type: ignore[arg-type]
            gate_min_observations=int(
                data.get("gate_min_observations", 1)  # type: ignore[arg-type]
            ),
        )


# ---------------------------------------------------------------------------
# benefit ledger (bandit arms)
# ---------------------------------------------------------------------------


@dataclass
class ArmStats:
    """Settled accounting for one bandit arm (one applied index)."""

    definition: IndexDef
    samples: int = 0
    predicted_total: float = 0.0
    observed_total: float = 0.0
    abs_error_total: float = 0.0
    regret_total: float = 0.0

    @property
    def mean_abs_error(self) -> float:
        return self.abs_error_total / max(self.samples, 1)

    def to_dict(self) -> Dict[str, object]:
        return {
            "definition": self.definition.to_dict(),
            "samples": self.samples,
            "predicted_total": self.predicted_total,
            "observed_total": self.observed_total,
            "abs_error_total": self.abs_error_total,
            "regret_total": self.regret_total,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArmStats":
        return cls(
            definition=IndexDef.from_dict(data["definition"]),  # type: ignore[arg-type]
            samples=int(data["samples"]),  # type: ignore[arg-type]
            predicted_total=float(data["predicted_total"]),  # type: ignore[arg-type]
            observed_total=float(data["observed_total"]),  # type: ignore[arg-type]
            abs_error_total=float(data["abs_error_total"]),  # type: ignore[arg-type]
            regret_total=float(data["regret_total"]),  # type: ignore[arg-type]
        )


class BenefitLedger:
    """Predicted-vs-observed benefit accounting, per applied index.

    ``record_prediction`` opens a claim when an index is applied;
    ``record_observation`` settles it when the index's observation
    window closes. The per-arm |predicted − observed| history is what
    the shadow gate compares margins against, with an arm → same-table
    → global fallback so a brand-new arm is judged by the closest
    history available.
    """

    # cache-keys: fields[_arms, _pending] invalidator[_touch]

    def __init__(self) -> None:
        #: arm key → settled stats.
        self._arms: Dict[Tuple, ArmStats] = {}
        #: arm key → (definition, predicted benefit awaiting settle).
        self._pending: Dict[Tuple, Tuple[IndexDef, float]] = {}
        self._version = 0
        #: derived error lookups, keyed on the fallback level; any
        #: write to the accounting fields flushes it via ``_touch``.
        self._error_memo: Dict[Tuple, Optional[float]] = {}

    def _touch(self) -> None:
        self._version += 1
        self._error_memo.clear()

    # -- recording -----------------------------------------------------------

    def record_prediction(
        self, definition: IndexDef, predicted: float
    ) -> None:
        """Open a claim: ``definition`` was applied expecting benefit."""
        self._pending[definition.key] = (definition, float(predicted))
        self._touch()

    def record_observation(
        self, definition: IndexDef, observed: float
    ) -> float:
        """Settle a claim with the benefit actually observed.

        Returns the regret charged for this arm: the part of the
        predicted benefit that did not materialise, never negative —
        an index that over-delivers earns no credit to gamble with
        later.
        """
        key = definition.key
        _, predicted = self._pending.pop(key, (definition, 0.0))
        arm = self._arms.get(key)
        if arm is None:
            arm = ArmStats(definition=definition)
            self._arms[key] = arm
        arm.samples += 1
        arm.predicted_total += predicted
        arm.observed_total += float(observed)
        arm.abs_error_total += abs(predicted - float(observed))
        regret = max(predicted - float(observed), 0.0)
        arm.regret_total += regret
        self._touch()
        return regret

    def drop_pending(self, definition: IndexDef) -> None:
        """Withdraw a claim (the index disappeared unobserved)."""
        self._pending.pop(definition.key, None)
        self._touch()

    # -- queries -------------------------------------------------------------

    def has_pending(self, definition: IndexDef) -> bool:
        return definition.key in self._pending

    def pending_prediction(
        self, definition: IndexDef
    ) -> Optional[float]:
        entry = self._pending.get(definition.key)
        return entry[1] if entry is not None else None

    def pending_exposure(self) -> float:
        """Worst-case regret still open: sum of unsettled claims."""
        return sum(
            max(predicted, 0.0)
            for _, predicted in self._pending.values()
        )

    @property
    def cumulative_regret(self) -> float:
        return sum(
            arm.regret_total for arm in self._arms.values()
        )

    @property
    def observations(self) -> int:
        return sum(arm.samples for arm in self._arms.values())

    def error_for(self, definition: IndexDef) -> Optional[float]:
        """Historical |predicted − observed| for the closest arms.

        Fallback ladder: this exact arm → arms on the same table →
        all arms; ``None`` when the ledger has no settled history at
        all (a fresh ledger must not gate anything).
        """
        memo_key = ("arm", definition.key)
        if memo_key in self._error_memo:
            return self._error_memo[memo_key]
        arm = self._arms.get(definition.key)
        if arm is not None and arm.samples > 0:
            result: Optional[float] = arm.mean_abs_error
        else:
            result = self._pooled_error(definition.table)
            if result is None:
                result = self._pooled_error(None)
        self._error_memo[memo_key] = result
        return result

    def _pooled_error(self, table: Optional[str]) -> Optional[float]:
        total = 0.0
        samples = 0
        for arm in self._arms.values():
            if table is not None and arm.definition.table != table:
                continue
            total += arm.abs_error_total
            samples += arm.samples
        if samples == 0:
            return None
        return total / samples

    def arm_stats(self) -> List[ArmStats]:
        return list(self._arms.values())

    def summary(self) -> Dict[str, object]:
        """Counters for reports and bench output."""
        return {
            "arms": len(self._arms),
            "observations": self.observations,
            "pending": len(self._pending),
            "pending_exposure": self.pending_exposure(),
            "cumulative_regret": self.cumulative_regret,
        }

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "arms": [arm.to_dict() for arm in self._arms.values()],
            "pending": [
                {
                    "definition": definition.to_dict(),
                    "predicted": predicted,
                }
                for definition, predicted in self._pending.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenefitLedger":
        ledger = cls()
        for entry in data.get("arms", ()):  # type: ignore[union-attr]
            arm = ArmStats.from_dict(entry)
            ledger._arms[arm.definition.key] = arm
        for entry in data.get("pending", ()):  # type: ignore[union-attr]
            definition = IndexDef.from_dict(entry["definition"])
            ledger._pending[definition.key] = (
                definition,
                float(entry["predicted"]),
            )
        ledger._touch()
        return ledger


# ---------------------------------------------------------------------------
# shadow evaluation
# ---------------------------------------------------------------------------


@dataclass
class ShadowReport:
    """What the pre-DDL shadow evaluation saw.

    ``current_cost`` / ``candidate_cost`` are *analytic* what-if
    workload costs (model-independent: planned features summed with
    the paper's static formula), so the margin is judged with a
    yardstick the trained model cannot bend. ``model_*`` are the
    estimator's own predictions; their difference, split per added
    arm in ``per_arm``, is what the ledger records as each claim.
    """

    current_cost: float = 0.0
    candidate_cost: float = 0.0
    model_current: float = 0.0
    model_candidate: float = 0.0
    #: (definition, model-predicted marginal benefit) per added index.
    per_arm: List[Tuple[IndexDef, float]] = field(default_factory=list)
    unavailable: bool = False
    note: str = ""

    @property
    def margin(self) -> float:
        """Analytic benefit of the candidate over the current config."""
        return self.current_cost - self.candidate_cost

    @property
    def predicted_benefit(self) -> float:
        """Model-predicted benefit of the whole change."""
        return self.model_current - self.model_candidate


def evaluate_shadow(
    estimator: BenefitEstimator,
    templates: Sequence[QueryTemplate],
    existing: Sequence[IndexDef],
    additions: Sequence[IndexDef],
    removals: Sequence[IndexDef],
) -> ShadowReport:
    """Cost current vs. candidate configs before any DDL runs.

    Everything here goes through hypothetical what-if indexes (the
    planner never sees a real B+Tree build), so the evaluation is
    read-only and safe to run on every round. Raises
    :class:`~repro.core.estimator.EstimatorUnavailable` when planning
    itself is down; callers decide whether that gates or waves through.
    """
    removed = {d.key for d in removals}
    candidate = [d for d in existing if d.key not in removed]
    candidate.extend(additions)
    report = ShadowReport(
        current_cost=estimator.shadow_workload_cost(templates, existing),
        candidate_cost=estimator.shadow_workload_cost(
            templates, candidate
        ),
        model_current=estimator.workload_cost(templates, existing),
        model_candidate=estimator.workload_cost(templates, candidate),
    )
    for definition in additions:
        without = [d for d in candidate if d.key != definition.key]
        report.per_arm.append(
            (
                definition,
                estimator.workload_cost(templates, without)
                - report.model_candidate,
            )
        )
    return report


# ---------------------------------------------------------------------------
# explanations (what the DBA sees in the review queue)
# ---------------------------------------------------------------------------


@dataclass
class TemplateImpact:
    """Per-template cost shift of a recommended change."""

    fingerprint: str
    sample_sql: str
    is_write: bool
    current_cost: float
    candidate_cost: float

    @property
    def delta(self) -> float:
        return self.current_cost - self.candidate_cost

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "sample_sql": self.sample_sql,
            "is_write": self.is_write,
            "current_cost": self.current_cost,
            "candidate_cost": self.candidate_cost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TemplateImpact":
        return cls(
            fingerprint=str(data["fingerprint"]),
            sample_sql=str(data["sample_sql"]),
            is_write=bool(data["is_write"]),
            current_cost=float(data["current_cost"]),  # type: ignore[arg-type]
            candidate_cost=float(data["candidate_cost"]),  # type: ignore[arg-type]
        )


@dataclass
class Explanation:
    """Why the advisor recommends a change (per-template breakdown)."""

    per_template: List[TemplateImpact] = field(default_factory=list)
    write_cost_delta: float = 0.0
    affected_tables: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "per_template": [t.to_dict() for t in self.per_template],
            "write_cost_delta": self.write_cost_delta,
            "affected_tables": list(self.affected_tables),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Explanation":
        return cls(
            per_template=[
                TemplateImpact.from_dict(entry)
                for entry in data.get("per_template", ())  # type: ignore[union-attr]
            ],
            write_cost_delta=float(data.get("write_cost_delta", 0.0)),  # type: ignore[arg-type]
            affected_tables=list(data.get("affected_tables", ())),  # type: ignore[arg-type]
        )

    def render(self, top: int = 8) -> str:
        lines = [
            "affected tables: "
            + (", ".join(self.affected_tables) or "(none)"),
            f"write-cost delta: {self.write_cost_delta:+,.1f}",
        ]
        impacts = sorted(
            self.per_template,
            key=lambda t: abs(t.delta),
            reverse=True,
        )[:top]
        for impact in impacts:
            kind = "write" if impact.is_write else "read"
            lines.append(
                f"  {impact.delta:+12,.1f}  [{kind}] "
                f"{impact.sample_sql[:70]}"
            )
        return "\n".join(lines)


def explain_change(
    estimator: BenefitEstimator,
    templates: Sequence[QueryTemplate],
    existing: Sequence[IndexDef],
    additions: Sequence[IndexDef],
    removals: Sequence[IndexDef],
    top: int = 16,
) -> Explanation:
    """Per-template benefit breakdown for a recommended change."""
    removed = {d.key for d in removals}
    candidate = [d for d in existing if d.key not in removed]
    candidate.extend(additions)
    current = estimator.workload_costs(templates, existing)
    future = estimator.workload_costs(templates, candidate)
    impacts: List[TemplateImpact] = []
    write_delta = 0.0
    for i, template in enumerate(templates):
        cur, cand = float(current[i]), float(future[i])
        if template.is_write:
            write_delta += cand - cur
        if cur == cand:
            continue
        impacts.append(
            TemplateImpact(
                fingerprint=template.fingerprint,
                sample_sql=template.sample_sql or template.fingerprint,
                is_write=template.is_write,
                current_cost=cur,
                candidate_cost=cand,
            )
        )
    impacts.sort(key=lambda t: abs(t.delta), reverse=True)
    tables = sorted(
        {d.table for d in additions} | {d.table for d in removals}
    )
    return Explanation(
        per_template=impacts[:top],
        write_cost_delta=write_delta,
        affected_tables=tables,
    )


# ---------------------------------------------------------------------------
# review queue (DBA in the loop)
# ---------------------------------------------------------------------------


@dataclass
class PendingRecommendation:
    """One gated recommendation awaiting (or carrying) a DBA verdict."""

    rec_id: int
    additions: List[IndexDef]
    removals: List[IndexDef]
    predicted_benefit: float
    shadow_margin: Optional[float]
    reason: str
    explanation: Explanation
    status: str = "pending"  # pending | accepted | rejected
    verdict_note: str = ""
    #: set once the advisor has acted on the verdict (applied the
    #: accepted change / trained on the rejected one).
    consumed: bool = False

    @property
    def change_key(self) -> Tuple:
        return (
            tuple(sorted(d.key for d in self.additions)),
            tuple(sorted(d.key for d in self.removals)),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rec_id": self.rec_id,
            "additions": [d.to_dict() for d in self.additions],
            "removals": [d.to_dict() for d in self.removals],
            "predicted_benefit": self.predicted_benefit,
            "shadow_margin": self.shadow_margin,
            "reason": self.reason,
            "explanation": self.explanation.to_dict(),
            "status": self.status,
            "verdict_note": self.verdict_note,
            "consumed": self.consumed,
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, object]
    ) -> "PendingRecommendation":
        margin = data.get("shadow_margin")
        return cls(
            rec_id=int(data["rec_id"]),  # type: ignore[arg-type]
            additions=[
                IndexDef.from_dict(d)
                for d in data.get("additions", ())  # type: ignore[union-attr]
            ],
            removals=[
                IndexDef.from_dict(d)
                for d in data.get("removals", ())  # type: ignore[union-attr]
            ],
            predicted_benefit=float(data.get("predicted_benefit", 0.0)),  # type: ignore[arg-type]
            shadow_margin=(
                float(margin) if margin is not None else None  # type: ignore[arg-type]
            ),
            reason=str(data.get("reason", "")),
            explanation=Explanation.from_dict(
                data.get("explanation", {})  # type: ignore[arg-type]
            ),
            status=str(data.get("status", "pending")),
            verdict_note=str(data.get("verdict_note", "")),
            consumed=bool(data.get("consumed", False)),
        )

    def render(self) -> str:
        heading = [
            f"recommendation #{self.rec_id} [{self.status}]",
            "  create: "
            + (", ".join(str(d) for d in self.additions) or "(none)"),
            "  drop:   "
            + (", ".join(str(d) for d in self.removals) or "(none)"),
            f"  predicted benefit: {self.predicted_benefit:,.1f}"
            + (
                f", shadow margin: {self.shadow_margin:,.1f}"
                if self.shadow_margin is not None
                else ""
            ),
            f"  gated because: {self.reason}",
        ]
        body = self.explanation.render()
        return "\n".join(heading) + "\n" + body


class ReviewQueue:
    """Accept/reject queue for gated recommendations."""

    def __init__(self) -> None:
        self._items: Dict[int, PendingRecommendation] = {}
        self._next_id = 1

    def submit(
        self,
        additions: Sequence[IndexDef],
        removals: Sequence[IndexDef],
        predicted_benefit: float,
        shadow_margin: Optional[float],
        reason: str,
        explanation: Explanation,
    ) -> PendingRecommendation:
        """Queue a recommendation; identical pending changes dedup."""
        rec = PendingRecommendation(
            rec_id=self._next_id,
            additions=list(additions),
            removals=list(removals),
            predicted_benefit=predicted_benefit,
            shadow_margin=shadow_margin,
            reason=reason,
            explanation=explanation,
        )
        for existing in self._items.values():
            if (
                existing.status == "pending"
                and existing.change_key == rec.change_key
            ):
                existing.reason = reason
                existing.predicted_benefit = predicted_benefit
                existing.shadow_margin = shadow_margin
                existing.explanation = explanation
                return existing
        self._items[rec.rec_id] = rec
        self._next_id += 1
        return rec

    def get(self, rec_id: int) -> PendingRecommendation:
        if rec_id not in self._items:
            raise KeyError(f"no recommendation #{rec_id}")
        return self._items[rec_id]

    def pending(self) -> List[PendingRecommendation]:
        return [
            rec
            for rec in self._items.values()
            if rec.status == "pending"
        ]

    def all_items(self) -> List[PendingRecommendation]:
        return list(self._items.values())

    def resolve(
        self, rec_id: int, accept: bool, note: str = ""
    ) -> PendingRecommendation:
        rec = self.get(rec_id)
        if rec.status != "pending":
            raise ValueError(
                f"recommendation #{rec_id} already {rec.status}"
            )
        rec.status = "accepted" if accept else "rejected"
        rec.verdict_note = note
        return rec

    def unconsumed_verdicts(self) -> List[PendingRecommendation]:
        """Resolved recommendations the advisor has not acted on yet."""
        return [
            rec
            for rec in self._items.values()
            if rec.status != "pending" and not rec.consumed
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "next_id": self._next_id,
            "items": [
                rec.to_dict() for rec in self._items.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReviewQueue":
        queue = cls()
        for entry in data.get("items", ()):  # type: ignore[union-attr]
            rec = PendingRecommendation.from_dict(entry)
            queue._items[rec.rec_id] = rec
        queue._next_id = int(data.get("next_id", 1))  # type: ignore[arg-type]
        if queue._items:
            queue._next_id = max(
                queue._next_id, max(queue._items) + 1
            )
        return queue


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateDecision:
    action: str  # "apply" | "queue"
    reason: str = ""


class SafetyController:
    """Decides, per round, whether a recommended change may be applied.

    ``apply_mode``:

    * ``"auto"`` — apply freely; with a ``regret_bound`` set, the
      budget check and the margin-vs-historical-error gate activate.
    * ``"review"`` — never apply autonomously; every recommendation
      is queued for a DBA verdict.
    * ``"shadow"`` — observe and recommend only, applies disabled.

    The budget check is conservative: an apply is allowed only if the
    regret already settled, plus the worst case of every still-open
    claim, plus this change's own claim (padded by the historical
    error of its arms), stays under the bound. Once that fails the
    advisor behaves shadow-only until claims settle in its favour.
    """

    def __init__(
        self,
        apply_mode: str = "auto",
        regret_bound: Optional[float] = None,
        regret_headroom: float = 1.0,
        gate_min_observations: int = 1,
        ledger: Optional[BenefitLedger] = None,
        queue: Optional[ReviewQueue] = None,
    ) -> None:
        if apply_mode not in ("auto", "review", "shadow"):
            raise ValueError(
                f"apply_mode must be auto, review, or shadow; "
                f"got {apply_mode!r}"
            )
        self.apply_mode = apply_mode
        self.regret_bound = regret_bound
        self.regret_headroom = regret_headroom
        self.gate_min_observations = gate_min_observations
        self.ledger = ledger if ledger is not None else BenefitLedger()
        self.queue = queue if queue is not None else ReviewQueue()
        self.gated_rounds = 0

    def gating_active(self) -> bool:
        return self.apply_mode != "auto" or self.regret_bound is not None

    def shadow_only(self) -> bool:
        """True when no apply can currently fit the regret budget."""
        if self.apply_mode == "shadow":
            return True
        if self.regret_bound is None:
            return False
        spent = (
            self.ledger.cumulative_regret
            + self.ledger.pending_exposure()
        )
        return spent >= self.regret_bound

    def decide(self, shadow: ShadowReport) -> GateDecision:
        if self.apply_mode == "review":
            return GateDecision("queue", "review mode: DBA approval required")
        if self.apply_mode == "shadow":
            return GateDecision("queue", "shadow-only mode: applies disabled")
        if self.regret_bound is None:
            return GateDecision("apply")
        if shadow.unavailable:
            return GateDecision(
                "queue",
                f"shadow evaluation unavailable ({shadow.note}); "
                "not gambling under a regret bound",
            )
        spent = (
            self.ledger.cumulative_regret
            + self.ledger.pending_exposure()
        )
        charge = 0.0
        for definition, predicted in shadow.per_arm:
            error = self.ledger.error_for(definition)
            charge += max(predicted, 0.0)
            charge += self.regret_headroom * (error or 0.0)
        if spent + charge > self.regret_bound:
            return GateDecision(
                "queue",
                f"regret budget: settled+pending {spent:,.1f} plus "
                f"worst-case charge {charge:,.1f} exceeds bound "
                f"{self.regret_bound:,.1f}",
            )
        threshold = self._margin_threshold(shadow)
        if threshold is not None and shadow.margin < threshold:
            return GateDecision(
                "queue",
                f"shadow margin {shadow.margin:,.1f} below historical "
                f"estimator error {threshold:,.1f} for similar arms",
            )
        return GateDecision("apply")

    def _margin_threshold(
        self, shadow: ShadowReport
    ) -> Optional[float]:
        """Combined historical error of the arms being applied."""
        if self.ledger.observations < self.gate_min_observations:
            return None
        errors = [
            self.ledger.error_for(definition)
            for definition, _ in shadow.per_arm
        ]
        known = [e for e in errors if e is not None]
        if not known:
            return None
        return sum(known)

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "apply_mode": self.apply_mode,
            "regret_bound": self.regret_bound,
            "ledger": self.ledger.to_dict(),
            "queue": self.queue.to_dict(),
            "gated_rounds": self.gated_rounds,
        }

    def restore(self, data: Dict[str, object]) -> None:
        """Adopt persisted ledger/queue state (mode knobs stay as
        constructed — a restart may deliberately change them)."""
        self.ledger = BenefitLedger.from_dict(
            data.get("ledger", {})  # type: ignore[arg-type]
        )
        self.queue = ReviewQueue.from_dict(
            data.get("queue", {})  # type: ignore[arg-type]
        )
        self.gated_rounds = int(data.get("gated_rounds", 0))  # type: ignore[arg-type]
