"""AutoIndex core: the paper's primary contribution.

Pipeline (Section III):

1. :mod:`repro.core.diagnosis` — detect index problems from workload
   metrics and decide when to tune;
2. :mod:`repro.core.templates` — SQL2Template workload compression;
3. :mod:`repro.core.candidates` — template-based candidate index
   generation (DNF factorization, selectivity gate, join/driven-table
   rule, leftmost-prefix merge);
4. :mod:`repro.core.mcts` — MCTS index update over the policy tree;
5. :mod:`repro.core.estimator` — the deep index-benefit estimation
   model (Section V cost features + one-layer regression);
6. :mod:`repro.core.advisor` — the orchestrating AutoIndexAdvisor;
7. :mod:`repro.core.baselines` — Default / Greedy / query-level
   comparison advisors.
"""

from repro.core.advisor import AutoIndexAdvisor, TuningReport
from repro.core.baselines import DefaultAdvisor, GreedyAdvisor, QueryLevelAdvisor
from repro.core.candidates import CandidateGenerator
from repro.core.estimator import BenefitEstimator, DeepIndexEstimator, WhatIfCostModel
from repro.core.mcts import MctsIndexSelector, PolicyTree
from repro.core.templates import QueryTemplate, TemplateStore
from repro.core.diagnosis import IndexDiagnosis, IndexProblemReport

__all__ = [
    "AutoIndexAdvisor",
    "BenefitEstimator",
    "CandidateGenerator",
    "DeepIndexEstimator",
    "DefaultAdvisor",
    "GreedyAdvisor",
    "IndexDiagnosis",
    "IndexProblemReport",
    "MctsIndexSelector",
    "PolicyTree",
    "QueryLevelAdvisor",
    "QueryTemplate",
    "TemplateStore",
    "TuningReport",
    "WhatIfCostModel",
]
