"""Index benefit estimation (paper Section V).

Three layers:

* :class:`WhatIfCostModel` — the traditional baseline: static-weight
  sum of the cost features (what plain optimizer-driven advisors use);
* :class:`DeepIndexEstimator` — the paper's one-layer deep regression
  ``cost(q) = sigmoid(W · C + b)`` trained on historical index
  management data (feature vectors + measured execution costs), with
  k-fold cross-validation (the paper uses 9-fold);
* :class:`BenefitEstimator` — the facade MCTS talks to: caches
  per-(template, relevant-config) query costs and aggregates them into
  workload-level costs, weighting templates by matched frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.features import (
    CostFeatures,
    compute_features,
    compute_features_batch,
    features_matrix,
    referenced_tables,
)
from repro.core.templates import QueryTemplate
from repro.engine.faults import (
    FaultError,
    PermanentFault,
    TransientFault,
    VirtualClock,
    backoff_delay,
)
from repro.engine.index import IndexDef
from repro.engine.metrics import CacheStats, LruCache
from repro.ports.backend import TuningBackend
from repro.sql import ast
from repro.sql.lexer import SqlSyntaxError


#: Single sizing knob for the estimator's bounded caches. Both LRU
#: tiers (cost and features) and the parsed-sample cache default to
#: this; pass an explicit size (0 disables a tier) to override. The
#: sizes live here — and only here — so the tiers cannot silently
#: drift apart again (the full-mode bench once ran with a disabled
#: feature tier while delta mode got 50 000).
DEFAULT_CACHE_SIZE = 50_000


class EstimatorUnavailable(RuntimeError):
    """Raised when every rung of the degradation ladder has failed.

    The advisor treats this as "skip the round, do not crash": even
    the analytic what-if fallback could not produce a prediction, so
    there is no estimate to tune with.
    """


class WhatIfCostModel:
    """Static-weight cost model: ``cost = C_data + C_io + C_cpu``."""

    trained = True  # usable out of the box

    def predict_one(self, features: CostFeatures) -> float:
        return features.naive_total

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        # Columns: data, io, cpu, is_write, num_indexes.
        return matrix[:, 0] + matrix[:, 1] + matrix[:, 2]


@dataclass
class TrainingMetrics:
    """Fit diagnostics for the deep regression."""

    mse: float
    mean_q_error: float
    samples: int


class DeepIndexEstimator:
    """One-layer sigmoid regression over the Section V cost features.

    ``cost(q) = sigmoid(W · C + b) * y_scale`` with standardized
    features. Weights are learned with full-batch gradient descent on
    MSE — deliberately the paper's "one-layer deep regression", not a
    deeper network.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 400,
                 seed: int = 1):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_scale: float = 1.0
        self.trained = False

    # -- training -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> TrainingMetrics:
        """Train on feature matrix ``X`` and measured costs ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ValueError("need a non-empty aligned training set")

        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std < 1e-12] = 1.0
        Xn = (X - self._x_mean) / self._x_std
        # Scale targets into sigmoid range with headroom.
        self._y_scale = max(float(y.max()) * 1.25, 1e-9)
        yn = y / self._y_scale

        rng = np.random.default_rng(self.seed)
        w = rng.normal(scale=0.1, size=X.shape[1])
        b = 0.0
        n = len(y)
        for _ in range(self.epochs):
            z = Xn @ w + b
            pred = _sigmoid(z)
            err = pred - yn
            grad_z = err * pred * (1.0 - pred)
            grad_w = Xn.T @ grad_z / n
            grad_b = float(grad_z.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights = w
        self.bias = b
        self.trained = True

        pred = self.predict(X)
        mse = float(np.mean((pred - y) ** 2))
        return TrainingMetrics(
            mse=mse, mean_q_error=_mean_q_error(pred, y), samples=n
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict costs for a feature matrix (requires a prior fit)."""
        if not self.trained:
            raise RuntimeError("estimator is not trained")
        X = np.asarray(X, dtype=float)
        Xn = (X - self._x_mean) / self._x_std
        return _sigmoid(Xn @ self.weights + self.bias) * self._y_scale

    def predict_one(self, features: CostFeatures) -> float:
        """Predict the cost of a single feature vector."""
        return float(self.predict(features.as_array()[None, :])[0])

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Persist trained weights to an ``.npz`` file."""
        if not self.trained:
            raise RuntimeError("cannot save an untrained estimator")
        np.savez(
            path,
            weights=self.weights,
            bias=np.array([self.bias]),
            x_mean=self._x_mean,
            x_std=self._x_std,
            y_scale=np.array([self._y_scale]),
        )

    @classmethod
    def load(cls, path) -> "DeepIndexEstimator":
        """Restore an estimator saved with :meth:`save`."""
        data = np.load(path)
        model = cls()
        model.weights = data["weights"]
        model.bias = float(data["bias"][0])
        model._x_mean = data["x_mean"]
        model._x_std = data["x_std"]
        model._y_scale = float(data["y_scale"][0])
        model.trained = True
        return model

    # -- evaluation -----------------------------------------------------------

    def cross_validate(
        self, X: np.ndarray, y: np.ndarray, folds: int = 9
    ) -> List[TrainingMetrics]:
        """K-fold CV (paper: 9-fold); returns held-out metrics per fold."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n = len(y)
        folds = min(folds, n)
        if folds < 2:
            raise ValueError("need at least 2 folds / samples")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        metrics: List[TrainingMetrics] = []
        for k in range(folds):
            test_idx = order[k::folds]
            train_mask = np.ones(n, dtype=bool)
            train_mask[test_idx] = False
            model = DeepIndexEstimator(
                learning_rate=self.learning_rate,
                epochs=self.epochs,
                seed=self.seed + k,
            )
            model.fit(X[train_mask], y[train_mask])
            pred = model.predict(X[test_idx])
            metrics.append(
                TrainingMetrics(
                    mse=float(np.mean((pred - y[test_idx]) ** 2)),
                    mean_q_error=_mean_q_error(pred, y[test_idx]),
                    samples=len(test_idx),
                )
            )
        return metrics


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def _mean_q_error(pred: np.ndarray, truth: np.ndarray) -> float:
    """Mean q-error (max(p/t, t/p)), the standard estimator metric."""
    p = np.maximum(np.asarray(pred, dtype=float), 1e-9)
    t = np.maximum(np.asarray(truth, dtype=float), 1e-9)
    return float(np.mean(np.maximum(p / t, t / p)))


# ---------------------------------------------------------------------------
# workload-level facade
# ---------------------------------------------------------------------------


@dataclass
class HistorySample:
    """One observed execution: features + measured cost."""

    features: CostFeatures
    actual_cost: float


class BenefitEstimator:
    """Workload-level index benefit estimation with tiered caching.

    ``workload_cost(templates, config)`` sums frequency-weighted
    per-template costs. Two bounded LRU tiers back it:

    * the **cost tier** maps (template fingerprint, relevant index
      subset) to a predicted cost; it is invalidated whenever the
      *model* changes (:meth:`train`, :meth:`clear_cache`);
    * the **feature tier** maps the same key to the planned
      :class:`CostFeatures`; planning does not depend on the model, so
      this tier survives retraining — after a model swap only
      prediction re-runs, no statement is re-planned.

    Both tiers key on the subset of the configuration touching the
    statement's tables, so configurations that differ only in
    irrelevant indexes share entries. Data/DDL changes are detected
    via the catalog version and flush both tiers.

    :meth:`workload_cost_delta` is the MCTS hot path: given a parent
    configuration's per-template costs, only templates touching a
    table whose index set changed are re-costed (via a table →
    templates inverted index); everything else is reused verbatim, so
    the delta total is bitwise-identical to a full recomputation.
    """

    def __init__(
        self,
        backend: TuningBackend,
        model=None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        feature_cache_size: Optional[int] = None,
        max_predict_retries: int = 3,
        clock: Optional[VirtualClock] = None,
        vectorized: bool = True,
    ):
        # ``feature_cache_size=None`` follows ``cache_size`` so one
        # argument sizes both tiers; benchmarks that deliberately
        # disable a tier must say so with an explicit 0.
        if feature_cache_size is None:
            feature_cache_size = cache_size
        self.backend = backend
        #: ``vectorized=False`` pins the per-template scalar costing
        #: path (one what-if overlay per statement, elementwise
        #: aggregation) — kept for the perf bench baseline and the
        #: batch-equals-scalar property tests. Results are bitwise
        #: identical either way.
        self.vectorized = vectorized
        self.model = model if model is not None else WhatIfCostModel()
        self.history: List[HistorySample] = []
        self._cache = LruCache(cache_size)
        self._feature_cache = LruCache(feature_cache_size)
        self._tables_cache: Dict[str, Tuple[str, ...]] = {}
        self._sample_cache = LruCache(cache_size)
        self._inverted_cache = LruCache(8)
        self._inverted_memo: Optional[Tuple[Sequence, Dict]] = None
        self._catalog_version = backend.catalog_version()
        self.estimate_calls = 0  # model predictions (cost-tier misses)
        self.plans_computed = 0  # planner invocations (feature misses)
        # Resilience (the degradation ladder; see _predict).
        self.faults = getattr(backend, "faults", None)
        self.max_predict_retries = max_predict_retries
        self.clock = clock if clock is not None else VirtualClock()
        self.retries = 0            # transient predict faults retried
        self.fallbacks = 0          # deep model -> what-if demotions
        self.placeholder_fallbacks = 0  # sample SQL unusable, used template
        self.degraded_reason: Optional[str] = None

    # -- estimation --------------------------------------------------------------

    def _predict(self, matrix: np.ndarray) -> np.ndarray:
        """Model prediction behind the degradation ladder.

        Rungs, in order:

        1. the current model (deep regression once trained);
        2. on a *transient* fault: bounded retries with deterministic
           exponential backoff on the virtual clock;
        3. on a *permanent* fault, exhausted retries, or a genuine
           model blow-up: demote to the analytic
           :class:`WhatIfCostModel` (flushing the cost tier, which is
           model-dependent) and keep going;
        4. if even the what-if fallback cannot predict:
           :class:`EstimatorUnavailable` — the advisor turns that into
           a skipped-not-crashed tuning round.

        With no fault injector and a healthy model this is exactly one
        ``model.predict`` call — bitwise-identical to the undecorated
        path.
        """
        attempts = 0
        while True:
            try:
                if self.faults is not None:
                    self.faults.check("estimator.predict")
                return self.model.predict(matrix)
            except TransientFault:
                if attempts < self.max_predict_retries:
                    attempts += 1
                    self.retries += 1
                    self.clock.sleep(backoff_delay(attempts - 1))
                    continue
                reason = "transient predict faults exhausted retries"
            except PermanentFault:
                reason = "permanent predict fault"
            except (RuntimeError, ValueError, FloatingPointError) as exc:
                reason = f"model failure: {exc}"
            self._degrade(reason)
            attempts = 0

    def _degrade(self, reason: str) -> None:
        """Drop one rung down the ladder or give up."""
        if isinstance(self.model, WhatIfCostModel):
            raise EstimatorUnavailable(
                f"what-if fallback unusable ({reason})"
            )
        self.fallbacks += 1
        # lint: ignore[fork-safety] -- degradation inside a pool worker is caught by _pool_cost_job's fallbacks guard: the job fails and the parent recomputes in-process, where this write is visible
        self.degraded_reason = reason
        self.model = WhatIfCostModel()  # lint: ignore[fork-safety] -- same guard as degraded_reason above: a worker-side model swap fails the job instead of silently diverging from the parent
        # The cost tier is model-dependent; predictions cached from
        # the demoted model must not mix with fallback predictions.
        self._cache.clear()

    @property
    def db(self) -> TuningBackend:
        """Backward-compatible alias for :attr:`backend`."""
        return self.backend

    def _check_version(self) -> None:
        """Flush both tiers if the database changed underneath us."""
        version = self.backend.catalog_version()
        if version != self._catalog_version:
            self._cache.clear()
            self._feature_cache.clear()
            self._catalog_version = version  # lint: ignore[fork-safety] -- version-guard bookkeeping: workers never perform DDL (this rule proves it), so the forked backend's version cannot move and this write is dead in workers

    def query_cost(
        self,
        template: QueryTemplate,
        config: Sequence[IndexDef],
    ) -> float:
        """Estimated execution cost of one template instance.

        Estimation uses the template's most recent *concrete* instance
        (real literals → real selectivities) when one is available;
        the placeholder form (unknown-value selectivities) is the
        fallback.
        """
        self._check_version()
        key, relevant = self._relevant_config(template, config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        features = self._features_for(template, key, relevant)
        self.estimate_calls += 1
        # lint: ignore[cache-key] -- model swaps flush the cost tier (train/clear_cache)
        cost = float(self._predict(features.as_array()[None, :])[0])
        self._cache.put(key, cost)
        return cost

    def _features_for(
        self,
        template: QueryTemplate,
        key: Tuple,
        relevant: List[IndexDef],
    ) -> CostFeatures:
        """Feature-tier lookup; plans the statement only on a miss."""
        features = self._feature_cache.get(key)
        if features is None:
            self.plans_computed += 1
            statement = self._representative(template)
            features = self._plan_features(statement, relevant)
            self._feature_cache.put(key, features)
        return features

    def _plan_features(
        self, statement: ast.Statement, relevant: List[IndexDef]
    ) -> CostFeatures:
        """Feature planning with bounded retry on transient faults.

        Planning has no analytic fallback (it *is* the analytic
        layer), so a permanent planner fault — or retries running
        dry — escalates to :class:`EstimatorUnavailable` and the
        advisor skips the round.
        """
        attempts = 0
        while True:
            try:
                return compute_features(self.backend, statement, relevant)
            except TransientFault:
                if attempts < self.max_predict_retries:
                    attempts += 1
                    self.retries += 1
                    self.clock.sleep(backoff_delay(attempts - 1))
                    continue
                raise EstimatorUnavailable(
                    "transient planner faults exhausted retries"
                ) from None
            except PermanentFault as exc:
                raise EstimatorUnavailable(
                    f"permanent planner fault ({exc})"
                ) from None

    def _representative(self, template: QueryTemplate) -> ast.Statement:
        """A concrete statement standing in for the template."""
        if not template.sample_sql:
            return template.statement
        cached = self._sample_cache.get(template.fingerprint)
        if cached is None:
            try:
                cached = self.backend.parse_statement(template.sample_sql)
            except (SqlSyntaxError, FaultError):
                # Unparsable (or fault-injected) sample: fall back to
                # the placeholder form. Counted, not swallowed — a
                # rising placeholder_fallbacks means estimates are
                # running on unknown-value selectivities.
                self.placeholder_fallbacks += 1
                cached = template.statement
            self._sample_cache.put(template.fingerprint, cached)
        return cached

    def workload_costs(
        self,
        templates: Sequence[QueryTemplate],
        config: Sequence[IndexDef],
    ) -> np.ndarray:
        """Frequency-weighted per-template costs under ``config``.

        Cache misses are batched: features for every missing template
        are planned, stacked into one matrix, and predicted with a
        single :meth:`model.predict` call (the vectorized estimator
        path) instead of one ``predict_one`` per template.
        """
        self._check_version()
        out = np.zeros(len(templates), dtype=float)
        self._fill_costs(templates, config, range(len(templates)), out)
        return out

    def _fill_costs(
        self,
        templates: Sequence[QueryTemplate],
        config: Sequence[IndexDef],
        positions,
        out: np.ndarray,
    ) -> None:
        """Write weighted costs for ``positions`` into ``out``.

        The vectorized estimator path: cost-tier misses are
        feature-planned through the backend's bulk what-if entry (one
        overlay window for the whole batch), stacked into a single
        (n, NUM_FEATURES) matrix, and predicted with one
        ``model.predict`` call. Hits stay scalar writes on purpose —
        delta batches are a dozen positions, below the break-even
        point of array gather/scatter. Every step performs the same
        IEEE operations as the per-template path, so results are
        bitwise identical to it.
        """
        # One pass over the config up front; per template only its
        # (few) relevant definitions are touched, not the whole
        # config. Keys match _relevant_config exactly: the per-table
        # signatures below are sorted key tuples, and a single-table
        # template's merged key IS its table's signature — computed
        # once per call, not once per position.
        by_table: Dict[str, List[IndexDef]] = {}
        for d in config:
            by_table.setdefault(d.table, []).append(d)
        table_sigs: Dict[str, Tuple] = {}
        cache_get = self._cache.get
        missing: List[
            Tuple[int, Tuple, float, QueryTemplate, Optional[CostFeatures]]
        ] = []
        for i in positions:
            template = templates[i]
            # Inlined max(template.weight, 0.1) — property and call
            # overhead matter at this call rate.
            weight = (
                template.window_frequency + 0.1 * template.frequency
            )
            if weight < 0.1:
                weight = 0.1
            tables = self._tables_of(template)
            if len(tables) == 1:
                sig = table_sigs.get(tables[0])
                if sig is None:
                    defs = by_table.get(tables[0])
                    sig = (
                        tuple(sorted(d.key for d in defs))
                        if defs
                        else ()
                    )
                    table_sigs[tables[0]] = sig
                merged = sig
            else:
                keys = [
                    d.key
                    for table in tables
                    for d in by_table.get(table, ())
                ]
                keys.sort()
                merged = tuple(keys)
            key = (template.fingerprint, merged)
            cached = cache_get(key)
            if cached is not None:
                out[i] = weight * cached
                continue
            if self.vectorized:
                missing.append((i, key, weight, template, None))
            else:
                # Scalar pin: plan each statement through its own
                # what-if overlay window (the pre-batch path) and
                # carry the features along — they must not depend on
                # the feature tier being enabled.
                relevant = [
                    d
                    for table in tables
                    for d in by_table.get(table, ())
                ]
                relevant.sort(key=lambda d: d.key)
                feats = self._features_for(template, key, relevant)
                missing.append((i, key, weight, template, feats))
        if not missing:
            return
        features = self._batch_features(missing, config)
        matrix = features_matrix(features)
        # lint: ignore[cache-key] -- model swaps flush the cost tier (train/clear_cache)
        predicted = self._predict(matrix)
        self.estimate_calls += len(missing)
        for (i, key, weight, _template, _f), raw in zip(missing, predicted):
            cost = float(raw)
            self._cache.put(key, cost)
            out[i] = weight * cost

    def _batch_features(
        self,
        missing: Sequence[
            Tuple[int, Tuple, float, QueryTemplate, Optional[CostFeatures]]
        ],
        config: Sequence[IndexDef],
    ) -> List[CostFeatures]:
        """Feature vectors for the cost-tier misses of one evaluation.

        An entry carrying pre-planned features (the scalar pin) is
        used as-is. The rest are looked up in the feature tier;
        feature-tier misses are planned together through
        :func:`compute_features_batch` under the *full* configuration:
        a statement's plan and maintenance charge only depend on the
        indexes of its referenced tables, so planning under the full
        config equals planning under the per-template relevant subset
        (the cache key stays the relevant subset). Under fault
        injection the batch window would blur per-statement retry
        semantics, so each statement goes through the serial
        retry-laddered path instead.
        """
        features: List[Optional[CostFeatures]] = []
        unplanned: List[int] = []
        for pos, (_i, key, _weight, template, carried) in enumerate(
            missing
        ):
            cached = (
                carried
                if carried is not None
                else self._feature_cache.get(key)
            )
            features.append(cached)
            if cached is None:
                unplanned.append(pos)
        if unplanned:
            if self.faults is not None:
                for pos in unplanned:
                    _i, key, _weight, template, _f = missing[pos]
                    features[pos] = self._features_for(
                        template, key, self._relevant_of(template, config)
                    )
            else:
                statements = [
                    self._representative(missing[pos][3])
                    for pos in unplanned
                ]
                self.plans_computed += len(unplanned)
                planned = compute_features_batch(
                    self.backend, statements, list(config)
                )
                for pos, feats in zip(unplanned, planned):
                    self._feature_cache.put(missing[pos][1], feats)
                    features[pos] = feats
        return features  # type: ignore[return-value]

    def _relevant_of(
        self, template: QueryTemplate, config: Sequence[IndexDef]
    ) -> List[IndexDef]:
        """The config subset touching the template's tables."""
        table_set = set(self._tables_of(template))
        relevant = [d for d in config if d.table in table_set]
        relevant.sort(key=lambda d: d.key)
        return relevant

    def workload_cost(
        self,
        templates: Sequence[QueryTemplate],
        config: Sequence[IndexDef],
    ) -> float:
        """Frequency-weighted total workload cost under ``config``."""
        return float(self.workload_costs(templates, config).sum())

    def shadow_workload_cost(
        self,
        templates: Sequence[QueryTemplate],
        config: Sequence[IndexDef],
    ) -> float:
        """Model-independent analytic workload cost under ``config``.

        The shadow gate's yardstick: planned features summed with the
        static what-if formula (``CostFeatures.naive_total``),
        bypassing the trained model and the cost tier entirely. A
        miscalibrated model cannot bend this number, which is what
        lets the safety layer measure the model's own error against
        it. Shares the feature tier with normal estimation, so after
        a search the round's configurations are usually already
        planned. Raises :class:`EstimatorUnavailable` when planning
        itself is down.
        """
        self._check_version()
        total = 0.0
        for template in templates:
            weight = (
                template.window_frequency + 0.1 * template.frequency
            )
            if weight < 0.1:
                weight = 0.1
            key, relevant = self._relevant_config(template, config)
            features = self._features_for(template, key, relevant)
            total += weight * features.naive_total
        return total

    def workload_cost_delta(
        self,
        parent_costs: np.ndarray,
        templates: Sequence[QueryTemplate],
        parent_config: Sequence[IndexDef],
        child_config: Sequence[IndexDef],
        changed_tables: Optional[Set[str]] = None,
    ) -> Tuple[float, np.ndarray]:
        """Incrementally re-cost a config that differs from its parent.

        Only templates referencing a table whose index set changed
        between ``parent_config`` and ``child_config`` are re-costed;
        every other entry of ``parent_costs`` is reused verbatim.
        Because unaffected per-query costs are invariant under the
        change (the cache key proves it), the returned total is
        bitwise-identical to ``workload_cost(templates,
        child_config)``.

        ``parent_costs`` must be the array ``workload_costs(templates,
        parent_config)`` returned for the *same* template sequence
        with unchanged weights. A caller that already knows the
        changed table set (MCTS holds configs as key frozensets, so
        the symmetric difference is one C-level set op) may pass it as
        ``changed_tables`` — it must equal
        ``_changed_tables(parent_config, child_config)``, and
        ``parent_config`` is then ignored. Returns
        ``(total, per_template)``.
        """
        if len(parent_costs) != len(templates):
            raise ValueError(
                "parent_costs does not match the template sequence "
                f"({len(parent_costs)} costs, {len(templates)} templates)"
            )
        self._check_version()
        changed = (
            changed_tables
            if changed_tables is not None
            else self._changed_tables(parent_config, child_config)
        )
        if not changed:
            return float(parent_costs.sum()), parent_costs
        inverted = self._template_table_index(templates)
        affected = sorted(
            {i for table in changed for i in inverted.get(table, ())}
        )
        costs = parent_costs.copy()
        if affected:
            self._fill_costs(templates, child_config, affected, costs)
        return float(costs.sum()), costs

    @staticmethod
    def _changed_tables(
        parent_config: Sequence[IndexDef],
        child_config: Sequence[IndexDef],
    ) -> Set[str]:
        """Tables whose index set differs between the two configs."""
        # Compare identity keys, not the defs themselves: every key
        # starts with the table name, and tuple hashing is far
        # cheaper than dataclass hashing on this hot path.
        parent_keys = {d.key for d in parent_config}
        diff = parent_keys.symmetric_difference(
            d.key for d in child_config
        )
        return {key[0] for key in diff}

    def _template_table_index(
        self, templates: Sequence[QueryTemplate]
    ) -> Dict[str, Tuple[int, ...]]:
        """Inverted index: table name → template positions touching it."""
        # Identity fast path: MCTS hands the same list object for the
        # whole search, so skip rebuilding the fingerprint-tuple key
        # each delta call (the held reference keeps the id stable).
        last = self._inverted_memo
        if last is not None and last[0] is templates:
            return last[1]
        key = tuple(t.fingerprint for t in templates)
        inverted = self._inverted_cache.get(key)
        if inverted is None:
            build: Dict[str, List[int]] = {}
            for i, template in enumerate(templates):
                for table in self._tables_of(template):
                    build.setdefault(table, []).append(i)
            inverted = {t: tuple(ix) for t, ix in build.items()}
            self._inverted_cache.put(key, inverted)
        self._inverted_memo = (templates, inverted)
        return inverted

    def benefit(
        self,
        templates: Sequence[QueryTemplate],
        baseline_config: Sequence[IndexDef],
        config: Sequence[IndexDef],
    ) -> float:
        """``B = cost(W, baseline) - cost(W, config)`` (Section II-A)."""
        return self.workload_cost(templates, baseline_config) - (
            self.workload_cost(templates, config)
        )

    def _tables_of(self, template: QueryTemplate) -> Tuple[str, ...]:
        tables = self._tables_cache.get(template.fingerprint)
        if tables is None:
            tables = referenced_tables(template.statement)
            if len(self._tables_cache) < 100_000:
                self._tables_cache[template.fingerprint] = tables
        return tables

    def _relevant_config(
        self, template: QueryTemplate, config: Sequence[IndexDef]
    ) -> Tuple[Tuple, List[IndexDef]]:
        """Cache key + the config subset that can affect the template.

        Only indexes on the statement's referenced tables influence
        its plan or maintenance charge, so the key (and the config
        slice handed to the planner) is restricted to them.
        """
        table_set = set(self._tables_of(template))
        relevant = sorted(
            (d for d in config if d.table in table_set),
            key=lambda d: d.key,
        )
        key = (template.fingerprint, tuple(d.key for d in relevant))
        return key, relevant

    def _cache_key(
        self, template: QueryTemplate, config: Sequence[IndexDef]
    ) -> Tuple:
        return self._relevant_config(template, config)[0]

    def clear_cache(self, include_features: bool = False) -> None:
        """Drop predicted costs; optionally the planned features too.

        The default keeps the feature tier: it is the right call after
        a *model* change (costs stale, plans still valid). Pass
        ``include_features=True`` only when plans themselves are
        suspect — database changes are handled automatically via the
        catalog version.
        """
        self._cache.clear()
        if include_features:
            self._feature_cache.clear()

    def cache_stats(self) -> Dict[str, CacheStats]:
        """Counters for both tiers (hits/misses/evictions/size)."""
        return {
            "cost": self._cache.stats(),
            "features": self._feature_cache.stats(),
        }

    def resilience_stats(self) -> Dict[str, object]:
        """Degradation-ladder counters (visible, not just internal)."""
        return {
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "placeholder_fallbacks": self.placeholder_fallbacks,
            "backoff_virtual_seconds": self.clock.now(),
            "degraded_reason": self.degraded_reason,
        }

    # -- learning ------------------------------------------------------------------

    def record_execution(
        self,
        statement: ast.Statement,
        actual_cost: float,
        config: Optional[Sequence[IndexDef]] = None,
    ) -> None:
        """Log one (features, measured cost) pair for later training."""
        features = compute_features(self.backend, statement, config)
        self.history.append(
            HistorySample(features=features, actual_cost=actual_cost)
        )

    def record_template_feedback(
        self,
        template: QueryTemplate,
        config: Sequence[IndexDef],
        actual_cost: float,
    ) -> None:
        """Log a DBA-verdict training pair for one template.

        A rejected recommendation is a label: the DBA asserts the
        template's cost under ``config`` is ``actual_cost`` (the
        current cost), not what the model claimed. Planned through
        the same feature tier as estimation, so the sample's features
        match what the model would be asked at prediction time.
        """
        key, relevant = self._relevant_config(template, config)
        features = self._features_for(template, key, relevant)
        self.history.append(
            HistorySample(
                features=features, actual_cost=float(actual_cost)
            )
        )

    def training_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.history:
            raise RuntimeError("no execution history recorded")
        X = np.stack([s.features.as_array() for s in self.history])
        y = np.array([s.actual_cost for s in self.history])
        return X, y

    def train(self) -> TrainingMetrics:
        """Fit the deep regression on the recorded history.

        Replaces a static :class:`WhatIfCostModel` with a trained
        :class:`DeepIndexEstimator` and clears the prediction cache.
        """
        X, y = self.training_matrix()
        if not isinstance(self.model, DeepIndexEstimator):
            self.model = DeepIndexEstimator()
        metrics = self.model.fit(X, y)
        self.clear_cache()
        return metrics
