"""Index benefit estimation (paper Section V).

Three layers:

* :class:`WhatIfCostModel` — the traditional baseline: static-weight
  sum of the cost features (what plain optimizer-driven advisors use);
* :class:`DeepIndexEstimator` — the paper's one-layer deep regression
  ``cost(q) = sigmoid(W · C + b)`` trained on historical index
  management data (feature vectors + measured execution costs), with
  k-fold cross-validation (the paper uses 9-fold);
* :class:`BenefitEstimator` — the facade MCTS talks to: caches
  per-(template, relevant-config) query costs and aggregates them into
  workload-level costs, weighting templates by matched frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import (
    CostFeatures,
    compute_features,
    referenced_tables,
)
from repro.core.templates import QueryTemplate
from repro.engine.database import Database
from repro.engine.index import IndexDef
from repro.sql import ast


class WhatIfCostModel:
    """Static-weight cost model: ``cost = C_data + C_io + C_cpu``."""

    trained = True  # usable out of the box

    def predict_one(self, features: CostFeatures) -> float:
        return features.naive_total

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        # Columns: data, io, cpu, is_write, num_indexes.
        return matrix[:, 0] + matrix[:, 1] + matrix[:, 2]


@dataclass
class TrainingMetrics:
    """Fit diagnostics for the deep regression."""

    mse: float
    mean_q_error: float
    samples: int


class DeepIndexEstimator:
    """One-layer sigmoid regression over the Section V cost features.

    ``cost(q) = sigmoid(W · C + b) * y_scale`` with standardized
    features. Weights are learned with full-batch gradient descent on
    MSE — deliberately the paper's "one-layer deep regression", not a
    deeper network.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 400,
                 seed: int = 1):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_scale: float = 1.0
        self.trained = False

    # -- training -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> TrainingMetrics:
        """Train on feature matrix ``X`` and measured costs ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ValueError("need a non-empty aligned training set")

        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std < 1e-12] = 1.0
        Xn = (X - self._x_mean) / self._x_std
        # Scale targets into sigmoid range with headroom.
        self._y_scale = max(float(y.max()) * 1.25, 1e-9)
        yn = y / self._y_scale

        rng = np.random.default_rng(self.seed)
        w = rng.normal(scale=0.1, size=X.shape[1])
        b = 0.0
        n = len(y)
        for _ in range(self.epochs):
            z = Xn @ w + b
            pred = _sigmoid(z)
            err = pred - yn
            grad_z = err * pred * (1.0 - pred)
            grad_w = Xn.T @ grad_z / n
            grad_b = float(grad_z.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights = w
        self.bias = b
        self.trained = True

        pred = self.predict(X)
        mse = float(np.mean((pred - y) ** 2))
        return TrainingMetrics(
            mse=mse, mean_q_error=_mean_q_error(pred, y), samples=n
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict costs for a feature matrix (requires a prior fit)."""
        if not self.trained:
            raise RuntimeError("estimator is not trained")
        X = np.asarray(X, dtype=float)
        Xn = (X - self._x_mean) / self._x_std
        return _sigmoid(Xn @ self.weights + self.bias) * self._y_scale

    def predict_one(self, features: CostFeatures) -> float:
        """Predict the cost of a single feature vector."""
        return float(self.predict(features.as_array()[None, :])[0])

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Persist trained weights to an ``.npz`` file."""
        if not self.trained:
            raise RuntimeError("cannot save an untrained estimator")
        np.savez(
            path,
            weights=self.weights,
            bias=np.array([self.bias]),
            x_mean=self._x_mean,
            x_std=self._x_std,
            y_scale=np.array([self._y_scale]),
        )

    @classmethod
    def load(cls, path) -> "DeepIndexEstimator":
        """Restore an estimator saved with :meth:`save`."""
        data = np.load(path)
        model = cls()
        model.weights = data["weights"]
        model.bias = float(data["bias"][0])
        model._x_mean = data["x_mean"]
        model._x_std = data["x_std"]
        model._y_scale = float(data["y_scale"][0])
        model.trained = True
        return model

    # -- evaluation -----------------------------------------------------------

    def cross_validate(
        self, X: np.ndarray, y: np.ndarray, folds: int = 9
    ) -> List[TrainingMetrics]:
        """K-fold CV (paper: 9-fold); returns held-out metrics per fold."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n = len(y)
        folds = min(folds, n)
        if folds < 2:
            raise ValueError("need at least 2 folds / samples")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        metrics: List[TrainingMetrics] = []
        for k in range(folds):
            test_idx = order[k::folds]
            train_mask = np.ones(n, dtype=bool)
            train_mask[test_idx] = False
            model = DeepIndexEstimator(
                learning_rate=self.learning_rate,
                epochs=self.epochs,
                seed=self.seed + k,
            )
            model.fit(X[train_mask], y[train_mask])
            pred = model.predict(X[test_idx])
            metrics.append(
                TrainingMetrics(
                    mse=float(np.mean((pred - y[test_idx]) ** 2)),
                    mean_q_error=_mean_q_error(pred, y[test_idx]),
                    samples=len(test_idx),
                )
            )
        return metrics


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def _mean_q_error(pred: np.ndarray, truth: np.ndarray) -> float:
    """Mean q-error (max(p/t, t/p)), the standard estimator metric."""
    p = np.maximum(np.asarray(pred, dtype=float), 1e-9)
    t = np.maximum(np.asarray(truth, dtype=float), 1e-9)
    return float(np.mean(np.maximum(p / t, t / p)))


# ---------------------------------------------------------------------------
# workload-level facade
# ---------------------------------------------------------------------------


@dataclass
class HistorySample:
    """One observed execution: features + measured cost."""

    features: CostFeatures
    actual_cost: float


class BenefitEstimator:
    """Workload-level index benefit estimation with caching.

    ``workload_cost(templates, config)`` sums frequency-weighted
    per-template costs. Per-query costs are cached on the subset of
    the configuration touching the statement's tables, so MCTS rollouts
    that differ only in irrelevant indexes hit the cache.
    """

    def __init__(self, db: Database, model=None):
        self.db = db
        self.model = model if model is not None else WhatIfCostModel()
        self.history: List[HistorySample] = []
        self._cache: Dict[Tuple, float] = {}
        self._tables_cache: Dict[str, Tuple[str, ...]] = {}
        self._sample_cache: Dict[str, ast.Statement] = {}
        self.estimate_calls = 0  # tuning-overhead accounting

    # -- estimation --------------------------------------------------------------

    def query_cost(
        self,
        template: QueryTemplate,
        config: Sequence[IndexDef],
    ) -> float:
        """Estimated execution cost of one template instance.

        Estimation uses the template's most recent *concrete* instance
        (real literals → real selectivities) when one is available;
        the placeholder form (unknown-value selectivities) is the
        fallback.
        """
        key = self._cache_key(template, config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.estimate_calls += 1
        statement = self._representative(template)
        features = compute_features(self.db, statement, list(config))
        cost = float(self.model.predict_one(features))
        self._cache[key] = cost
        return cost

    def _representative(self, template: QueryTemplate) -> ast.Statement:
        """A concrete statement standing in for the template."""
        if not template.sample_sql:
            return template.statement
        cached = self._sample_cache.get(template.fingerprint)
        if cached is None:
            try:
                cached = self.db.parse_statement(template.sample_sql)
            except Exception:
                cached = template.statement
            self._sample_cache[template.fingerprint] = cached
        return cached

    def workload_cost(
        self,
        templates: Sequence[QueryTemplate],
        config: Sequence[IndexDef],
    ) -> float:
        """Frequency-weighted total workload cost under ``config``."""
        total = 0.0
        for template in templates:
            weight = max(template.weight, 0.1)
            total += weight * self.query_cost(template, config)
        return total

    def benefit(
        self,
        templates: Sequence[QueryTemplate],
        baseline_config: Sequence[IndexDef],
        config: Sequence[IndexDef],
    ) -> float:
        """``B = cost(W, baseline) - cost(W, config)`` (Section II-A)."""
        return self.workload_cost(templates, baseline_config) - (
            self.workload_cost(templates, config)
        )

    def _cache_key(
        self, template: QueryTemplate, config: Sequence[IndexDef]
    ) -> Tuple:
        tables = self._tables_cache.get(template.fingerprint)
        if tables is None:
            tables = referenced_tables(template.statement)
            self._tables_cache[template.fingerprint] = tables
        table_set = set(tables)
        relevant = tuple(
            sorted(d.key for d in config if d.table in table_set)
        )
        return (template.fingerprint, relevant)

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- learning ------------------------------------------------------------------

    def record_execution(
        self,
        statement: ast.Statement,
        actual_cost: float,
        config: Optional[Sequence[IndexDef]] = None,
    ) -> None:
        """Log one (features, measured cost) pair for later training."""
        features = compute_features(self.db, statement, config)
        self.history.append(
            HistorySample(features=features, actual_cost=actual_cost)
        )

    def training_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.history:
            raise RuntimeError("no execution history recorded")
        X = np.stack([s.features.as_array() for s in self.history])
        y = np.array([s.actual_cost for s in self.history])
        return X, y

    def train(self) -> TrainingMetrics:
        """Fit the deep regression on the recorded history.

        Replaces a static :class:`WhatIfCostModel` with a trained
        :class:`DeepIndexEstimator` and clears the prediction cache.
        """
        X, y = self.training_matrix()
        if not isinstance(self.model, DeepIndexEstimator):
            self.model = DeepIndexEstimator()
        metrics = self.model.fit(X, y)
        self.clear_cache()
        return metrics
