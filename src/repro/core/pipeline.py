"""The staged tuning pipeline: Observe → Diagnose → Candidates → Search → Apply.

One tuning round used to be a single monolithic ``tune()`` method;
here it is decomposed into explicit, composable stages sharing a
:class:`TuningContext`. The context carries everything a round needs —
the backend, the advisor's components, the seeded rng, the fault
plan, the storage budget, the search deadline, and the resilience
counters — so stages stay stateless, can be reordered or replaced in
tests, and per-shard sessions can later run whole pipelines
concurrently, one context each.

Stage contract: ``run(ctx)`` mutates the context (and the report
inside it) and may set ``ctx.done = True`` to short-circuit the rest
of the round; the pipeline always leaves finalisation (round-delta
counters, history) to the caller via :meth:`TuningContext.finalize`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.candidates import CandidateGenerator, CandidateIndex
from repro.core.changeset import IndexChangeSet
from repro.core.diagnosis import IndexDiagnosis, IndexProblemReport
from repro.core.estimator import BenefitEstimator, EstimatorUnavailable
from repro.core.mcts import MctsIndexSelector, SearchResult
from repro.core.safety import (
    Explanation,
    SafetyController,
    ShadowReport,
    evaluate_shadow,
    explain_change,
)
from repro.core.templates import QueryTemplate, TemplateStore
from repro.engine.faults import FaultInjector
from repro.engine.index import IndexDef
from repro.engine.metrics import Stopwatch
from repro.ports.backend import TuningBackend


@dataclass
class TuningReport:
    """What one tuning round did and what it cost."""

    created: List[IndexDef] = field(default_factory=list)
    dropped: List[IndexDef] = field(default_factory=list)
    estimated_benefit: float = 0.0
    baseline_cost: float = 0.0
    templates_used: int = 0
    candidates_considered: int = 0
    estimator_calls: int = 0
    plans_computed: int = 0
    cache_hit_rate: float = 0.0
    statements_analyzed: int = 0
    elapsed_seconds: float = 0.0
    search: Optional[SearchResult] = None
    skipped: bool = False
    # Resilience counters for the round: estimator predict retries,
    # model→what-if fallbacks, index changes undone (changeset
    # rollback + observation-window auto-reverts), and whether the
    # MCTS deadline cut the search short.
    retries: int = 0
    fallbacks: int = 0
    rolled_back: int = 0
    deadline_hit: bool = False
    degraded: Optional[str] = None
    # Safety layer (regret-bounded apply): whether the shadow gate
    # held this round's change back, why, the review-queue id it was
    # parked under, the analytic shadow margin, and the ledger's
    # cumulative regret after the round.
    gated: bool = False
    gate_reason: str = ""
    queued: Optional[int] = None
    shadow_margin: Optional[float] = None
    cumulative_regret: Optional[float] = None

    @property
    def changed(self) -> bool:
        return bool(self.created or self.dropped)

    def to_dict(self) -> dict:
        """Normalized, timing-free form of the report.

        This is the bit-identical surface of a round: everything a
        round *decided* (index changes, benefits, counters, gate
        outcome) with the two things that legitimately differ between
        replays of the same decision stripped out — wall-clock
        ``elapsed_seconds`` and the in-memory ``search`` object (whose
        decision content is already summarized in the scalar fields).
        The daemon persists this per round, and the serve parity suite
        compares it across the daemon and library paths.
        """
        return {
            "created": [d.to_dict() for d in self.created],
            "dropped": [d.to_dict() for d in self.dropped],
            "estimated_benefit": self.estimated_benefit,
            "baseline_cost": self.baseline_cost,
            "templates_used": self.templates_used,
            "candidates_considered": self.candidates_considered,
            "estimator_calls": self.estimator_calls,
            "plans_computed": self.plans_computed,
            "cache_hit_rate": self.cache_hit_rate,
            "statements_analyzed": self.statements_analyzed,
            "skipped": self.skipped,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "rolled_back": self.rolled_back,
            "deadline_hit": self.deadline_hit,
            "degraded": self.degraded,
            "gated": self.gated,
            "gate_reason": self.gate_reason,
            "queued": self.queued,
            "shadow_margin": self.shadow_margin,
            "cumulative_regret": self.cumulative_regret,
        }

    def render(self) -> str:
        """Human-readable one-round summary (for logs and examples)."""
        if self.skipped:
            if self.degraded:
                return f"tuning skipped (degraded: {self.degraded})"
            return "tuning skipped (no index problems detected)"
        lines = []
        if self.created:
            lines.append(
                "created: " + ", ".join(str(d) for d in self.created)
            )
        if self.dropped:
            lines.append(
                "dropped: " + ", ".join(str(d) for d in self.dropped)
            )
        if not self.changed:
            lines.append("no index changes")
        if self.baseline_cost > 0:
            lines.append(
                f"estimated benefit: {self.estimated_benefit:,.1f} "
                f"of {self.baseline_cost:,.1f} "
                f"({100 * self.estimated_benefit / self.baseline_cost:.1f}%)"
            )
        lines.append(
            f"analysed {self.templates_used} templates, "
            f"{self.candidates_considered} candidates, "
            f"{self.estimator_calls} estimator calls "
            f"({self.plans_computed} plans, "
            f"{100 * self.cache_hit_rate:.0f}% cost-cache hits) "
            f"in {self.elapsed_seconds:.2f}s"
        )
        resilience = []
        if self.retries:
            resilience.append(f"{self.retries} retries")
        if self.fallbacks:
            resilience.append(f"{self.fallbacks} estimator fallbacks")
        if self.rolled_back:
            resilience.append(f"{self.rolled_back} changes rolled back")
        if self.deadline_hit:
            resilience.append("search deadline hit")
        if resilience:
            lines.append("resilience: " + ", ".join(resilience))
        if self.gated:
            target = (
                f" (queued as recommendation #{self.queued})"
                if self.queued is not None
                else ""
            )
            lines.append(f"gated: {self.gate_reason}{target}")
        if self.degraded:
            lines.append(f"degraded: {self.degraded}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CounterSnapshot:
    """Estimator counters at round start (deltas fill the report)."""

    estimate_calls: int = 0
    plans_computed: int = 0
    retries: int = 0
    fallbacks: int = 0

    @classmethod
    def of(cls, estimator: BenefitEstimator) -> "CounterSnapshot":
        return cls(
            estimate_calls=estimator.estimate_calls,
            plans_computed=estimator.plans_computed,
            retries=estimator.retries,
            fallbacks=estimator.fallbacks,
        )


@dataclass
class TuningContext:
    """Everything one tuning round shares across its stages.

    Components (backend, template store, generator, estimator,
    selector, diagnosis) are references to the advisor's long-lived
    objects; the round-scoped state — report, timer, counter
    snapshot, intermediate stage products — lives only here, which is
    what lets several contexts run pipelines side by side later.
    """

    # Long-lived components.
    backend: TuningBackend
    store: TemplateStore
    generator: CandidateGenerator
    estimator: BenefitEstimator
    selector: MctsIndexSelector
    diagnosis: IndexDiagnosis
    # Round configuration: randomness, faults, budget, deadline.
    rng: random.Random = field(default_factory=lambda: random.Random(17))
    faults: Optional[FaultInjector] = None
    storage_budget: Optional[int] = None
    deadline_seconds: Optional[float] = None
    top_templates: int = 120
    protected: List[IndexDef] = field(default_factory=list)
    force: bool = True
    trigger_threshold: float = 0.1
    #: Restrict the round to templates touching these tables (the
    #: sharded store serves them without scanning every shard);
    #: ``None`` tunes against the whole workload.
    scope_tables: Optional[List[str]] = None
    #: The regret-bounded apply layer; ``None`` runs the pre-safety
    #: pipeline (no ledger, no gate) for contexts built by hand.
    safety: Optional[SafetyController] = None
    # Round state.
    report: TuningReport = field(default_factory=TuningReport)
    timer: Stopwatch = field(default_factory=Stopwatch)
    counters: Optional[CounterSnapshot] = None
    templates: Sequence[QueryTemplate] = ()
    candidates: Sequence[CandidateIndex] = ()
    existing: List[IndexDef] = field(default_factory=list)
    problems: Optional[IndexProblemReport] = None
    result: Optional[SearchResult] = None
    shadow: Optional[ShadowReport] = None
    done: bool = False

    def __post_init__(self) -> None:
        if self.counters is None:
            self.counters = CounterSnapshot.of(self.estimator)

    def finalize(self, statements_analyzed: int = 0) -> TuningReport:
        """Fill round-delta counters; returns the finished report."""
        report = self.report
        counters = self.counters
        report.estimator_calls = (
            self.estimator.estimate_calls - counters.estimate_calls
        )
        report.plans_computed = (
            self.estimator.plans_computed - counters.plans_computed
        )
        report.retries = self.estimator.retries - counters.retries
        report.fallbacks = self.estimator.fallbacks - counters.fallbacks
        if report.fallbacks and report.degraded is None:
            report.degraded = self.estimator.degraded_reason
        report.statements_analyzed = statements_analyzed
        report.elapsed_seconds = self.timer.elapsed()
        if self.safety is not None:
            report.cumulative_regret = (
                self.safety.ledger.cumulative_regret
            )
        return report


class ObserveStage:
    """Settle the observation window before planning anything new.

    Recently-applied indexes whose post-apply window shows regression
    are reverted (the paper's guarded-apply loop). Before any revert
    DDL runs, every window that closed this pass settles its benefit
    ledger claim — the observed benefit is measured with the arm
    still in the catalog. The revert itself goes through a
    transactional changeset (``ddl-create`` in the contract is the
    rollback's re-create): a fault during the revert's own DDL rolls
    the catalog back to exactly the pre-revert state and the
    regressed indexes are re-watched so the revert retries next
    round instead of stranding a half-reverted catalog.
    """

    name = "observe"
    # effect: allows[ddl-drop, ddl-create, cache-invalidate]

    def run(self, ctx: TuningContext) -> None:
        reverted = ctx.diagnosis.check_applied()
        closed = ctx.diagnosis.pop_closed()
        if ctx.safety is not None and closed:
            self._settle_ledger(ctx, closed)
        if reverted:
            changeset = IndexChangeSet(ctx.backend)
            try:
                changeset.apply(drops=reverted, creates=[])
            except Exception as exc:
                undone = changeset.rollback()
                ctx.report.rolled_back += undone
                ctx.diagnosis.rewatch(reverted)
                ctx.report.degraded = (
                    f"auto-revert failed after {undone} changes, "
                    f"rolled back: {exc}"
                )
            else:
                ctx.estimator.clear_cache()
                ctx.report.dropped.extend(reverted)
                ctx.report.rolled_back += len(reverted)
        if ctx.scope_tables is not None:
            # Table-scoped round: only the affected shards of the
            # template store are consulted.
            ctx.templates = ctx.store.templates_for_tables(
                ctx.scope_tables, top=ctx.top_templates
            )
        else:
            ctx.templates = ctx.store.templates(top=ctx.top_templates)

    def _settle_ledger(self, ctx: TuningContext, closed) -> None:
        """Settle benefit-ledger claims for windows that just closed.

        Observed benefit of an arm is the analytic shadow cost of the
        current workload *without* the arm minus the cost *with* it —
        measured before any revert DDL, so both configurations are
        what-if only. Arms without an open claim (e.g. re-watched
        after a failed revert, or applied before the safety layer
        existed) are skipped; an arm that disappeared outside the
        advisor's control has nothing measurable and its claim is
        withdrawn.
        """
        assert ctx.safety is not None
        ledger = ctx.safety.ledger
        measurable = []
        for definition, how in closed:
            if not ledger.has_pending(definition):
                continue
            if how == "disappeared":
                ledger.drop_pending(definition)
                continue
            measurable.append(definition)
        if not measurable:
            return
        templates = ctx.store.templates(top=ctx.top_templates)
        config = ctx.backend.index_defs()
        try:
            with_cost = ctx.estimator.shadow_workload_cost(
                templates, config
            )
            for definition in measurable:
                without = [
                    d for d in config if d.key != definition.key
                ]
                without_cost = ctx.estimator.shadow_workload_cost(
                    templates, without
                )
                ledger.record_observation(
                    definition, without_cost - with_cost
                )
        except EstimatorUnavailable:
            # Shadow costing is down (planner faults): settle at face
            # value — predicted == observed charges no regret and
            # records no error, the neutral outcome.
            for definition in measurable:
                predicted = ledger.pending_prediction(definition)
                if predicted is not None:
                    ledger.record_observation(definition, predicted)


class DiagnoseStage:
    """The monitored trigger: skip the round unless problems warrant it."""

    name = "diagnose"
    # effect: allows[]

    def run(self, ctx: TuningContext) -> None:
        if ctx.force:
            return
        problems = ctx.diagnosis.diagnose(
            protected=ctx.protected, top_templates=ctx.top_templates
        )
        ctx.problems = problems
        if not problems.should_tune(ctx.trigger_threshold):
            ctx.report.skipped = True
            ctx.done = True


class CandidateStage:
    """Template-driven candidate generation plus the current index set."""

    name = "candidates"
    # effect: allows[]

    def run(self, ctx: TuningContext) -> None:
        ctx.candidates = ctx.generator.generate(ctx.templates)
        ctx.existing = ctx.backend.index_defs()


class SearchStage:
    """MCTS over add/remove actions under the storage budget.

    An estimator whose degradation ladder is exhausted turns the
    round into a skipped report instead of an exception.
    """

    name = "search"
    # effect: allows[rng]

    def run(self, ctx: TuningContext) -> None:
        try:
            ctx.result = ctx.selector.search(
                existing=ctx.existing,
                candidates=[c.definition for c in ctx.candidates],
                templates=ctx.templates,
                budget_bytes=ctx.storage_budget,
                protected=ctx.protected,
            )
        except EstimatorUnavailable as exc:
            ctx.report.skipped = True
            ctx.report.degraded = str(exc)
            ctx.done = True


def _fill_search_summary(ctx: TuningContext, result) -> None:
    """Round-summary fields shared by the shadow gate and the apply."""
    report = ctx.report
    report.estimated_benefit = result.best_benefit
    report.baseline_cost = result.baseline_cost
    report.templates_used = len(ctx.templates)
    report.candidates_considered = len(ctx.candidates)
    report.cache_hit_rate = result.cache_stats["cost"].hit_rate
    report.search = result
    report.deadline_hit = result.deadline_hit


class ShadowStage:
    """Shadow evaluation: judge the candidate before any DDL exists.

    Costs the current and candidate configurations on the round's
    template stream through hypothetical what-if indexes only —
    nothing here touches the catalog, which is exactly what the empty
    effect contract proves. When the :class:`SafetyController` gates
    the change (margin below historical estimator error, regret
    budget exhausted, or review/shadow mode), the recommendation is
    parked in the review queue with a per-template explanation and
    the round ends without applying; a gated round deliberately does
    not reset the store's tuning window, since the workload the
    recommendation was judged against is still the one awaiting a
    verdict.
    """

    name = "shadow"
    # effect: allows[]

    def run(self, ctx: TuningContext) -> None:
        result = ctx.result
        assert result is not None, "SearchStage must run before ShadowStage"
        safety = ctx.safety
        if safety is None:
            return
        if not result.additions and not result.removals:
            return  # nothing to gate; ApplyStage finishes the report
        try:
            shadow = evaluate_shadow(
                ctx.estimator,
                ctx.templates,
                ctx.existing,
                result.additions,
                result.removals,
            )
        except EstimatorUnavailable as exc:
            shadow = ShadowReport(unavailable=True, note=str(exc))
        ctx.shadow = shadow
        report = ctx.report
        if not shadow.unavailable:
            report.shadow_margin = shadow.margin
        decision = safety.decide(shadow)
        if decision.action == "apply":
            return
        if shadow.unavailable:
            # Costing is down; the queue entry still names the change
            # and its tables so the DBA sees what was held back.
            explanation = Explanation(
                affected_tables=sorted(
                    {d.table for d in result.additions}
                    | {d.table for d in result.removals}
                )
            )
        else:
            explanation = explain_change(
                ctx.estimator,
                ctx.templates,
                ctx.existing,
                result.additions,
                result.removals,
            )
        rec = safety.queue.submit(
            additions=result.additions,
            removals=result.removals,
            predicted_benefit=(
                shadow.predicted_benefit
                if not shadow.unavailable
                else result.best_benefit
            ),
            shadow_margin=(
                shadow.margin if not shadow.unavailable else None
            ),
            reason=decision.reason,
            explanation=explanation,
        )
        safety.gated_rounds += 1
        report.gated = True
        report.gate_reason = decision.reason
        report.queued = rec.rec_id
        _fill_search_summary(ctx, result)
        ctx.done = True


class ApplyStage:
    """Transactional DDL apply with full rollback on mid-apply failure."""

    name = "apply"
    # effect: allows[ddl-create, ddl-drop, cache-invalidate, usage-reset, store-write]

    def run(self, ctx: TuningContext) -> None:
        result = ctx.result
        report = ctx.report
        assert result is not None, "SearchStage must run before ApplyStage"
        changeset = IndexChangeSet(ctx.backend)
        try:
            changeset.apply(
                drops=result.removals, creates=result.additions
            )
        except Exception as exc:
            # Any DDL failure (including injected index-build faults)
            # must leave the catalog in exactly the before state.
            undone = changeset.rollback()
            report.rolled_back += undone
            report.degraded = (
                f"apply failed after {undone} changes, rolled back: {exc}"
            )
        else:
            report.created = list(result.additions)
            report.dropped.extend(result.removals)
            ctx.diagnosis.register_applied(result.additions)
            if ctx.safety is not None:
                self._open_claims(ctx, result)
            if result.additions or result.removals:
                ctx.estimator.clear_cache()
                ctx.backend.reset_index_usage()

        _fill_search_summary(ctx, result)
        ctx.store.begin_tuning_window()

    def _open_claims(self, ctx: TuningContext, result) -> None:
        """Record each applied arm's predicted benefit in the ledger.

        The per-arm split comes from the shadow evaluation when it
        ran; without one (safety off for the round, or costing down)
        the search's total benefit is split evenly across the
        additions — deterministic, and settled against real
        observations either way. Unique (constraint) indexes never
        enter the observation window, so no claim is opened for them.
        """
        assert ctx.safety is not None
        ledger = ctx.safety.ledger
        watchable = [d for d in result.additions if not d.unique]
        if not watchable:
            return
        per_arm = {}
        if ctx.shadow is not None and not ctx.shadow.unavailable:
            per_arm = {
                d.key: benefit for d, benefit in ctx.shadow.per_arm
            }
        fallback = result.best_benefit / len(watchable)
        for definition in watchable:
            ledger.record_prediction(
                definition, per_arm.get(definition.key, fallback)
            )


def default_stages() -> List:
    """The paper's round, in order."""
    return [
        ObserveStage(),
        DiagnoseStage(),
        CandidateStage(),
        SearchStage(),
        ShadowStage(),
        ApplyStage(),
    ]


class TuningPipeline:
    """Run stages in order, stopping early when a stage ends the round."""

    def __init__(self, stages: Optional[Sequence] = None):
        self.stages = (
            list(stages) if stages is not None else default_stages()
        )

    def run(self, ctx: TuningContext) -> TuningContext:
        for stage in self.stages:
            if ctx.done:
                break
            stage.run(ctx)
        return ctx
