"""Index diagnosis (paper Section III, "Index Diagnosis").

Monitors workload execution and classifies indexes into the paper's
three problem classes:

1. beneficial indexes that have not been created (high-support
   candidates from current templates);
2. rarely-used indexes (no lookups served over the observation
   window);
3. negative-benefit indexes (maintenance operations dwarf lookups —
   the write-penalised indexes of Example 2).

When the ratio of problematic indexes crosses a threshold — or the
workload monitor reports a cost regression — an index tuning request
is issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.core.candidates import CandidateGenerator
from repro.core.templates import TemplateStore
from repro.engine.database import Database
from repro.engine.index import IndexDef


@dataclass
class IndexProblemReport:
    """The classification the diagnosis module produces."""

    missing_beneficial: List[IndexDef] = field(default_factory=list)
    rarely_used: List[IndexDef] = field(default_factory=list)
    negative: List[IndexDef] = field(default_factory=list)
    considered: int = 0
    regression: bool = False

    @property
    def problem_count(self) -> int:
        return (
            len(self.missing_beneficial)
            + len(self.rarely_used)
            + len(self.negative)
        )

    @property
    def problem_ratio(self) -> float:
        denominator = max(self.considered + len(self.missing_beneficial), 1)
        return self.problem_count / denominator

    def should_tune(self, threshold: float = 0.1) -> bool:
        """The paper's trigger: problem ratio over threshold, or an
        observed performance regression."""
        return self.regression or self.problem_ratio > threshold


class IndexDiagnosis:
    """Classifies index problems from usage metrics and templates."""

    def __init__(
        self,
        db: Database,
        store: TemplateStore,
        generator: CandidateGenerator,
        min_observations: int = 50,
        negative_maintenance_factor: float = 10.0,
        min_candidate_support: float = 3.0,
    ):
        self.db = db
        self.store = store
        self.generator = generator
        self.min_observations = min_observations
        self.negative_maintenance_factor = negative_maintenance_factor
        self.min_candidate_support = min_candidate_support

    def diagnose(
        self,
        protected: Sequence[IndexDef] = (),
        top_templates: int = 100,
    ) -> IndexProblemReport:
        """Produce the current problem report."""
        report = IndexProblemReport(
            regression=self.db.monitor.regression_detected()
        )
        protected_keys: Set = {d.key for d in protected}

        if self.db.monitor.total_queries >= self.min_observations:
            for usage in self.db.index_usage():
                if usage.definition.key in protected_keys:
                    continue
                report.considered += 1
                if usage.lookups == 0:
                    report.rarely_used.append(usage.definition)
                elif (
                    usage.maintenance_ops
                    > usage.lookups * self.negative_maintenance_factor
                ):
                    report.negative.append(usage.definition)

        for candidate in self.generator.generate(
            self.store.templates(top=top_templates)
        ):
            if candidate.support >= self.min_candidate_support:
                report.missing_beneficial.append(candidate.definition)

        return report
