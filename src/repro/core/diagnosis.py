"""Index diagnosis (paper Section III, "Index Diagnosis").

Monitors workload execution and classifies indexes into the paper's
three problem classes:

1. beneficial indexes that have not been created (high-support
   candidates from current templates);
2. rarely-used indexes (no lookups served over the observation
   window);
3. negative-benefit indexes (maintenance operations dwarf lookups —
   the write-penalised indexes of Example 2).

When the ratio of problematic indexes crosses a threshold — or the
workload monitor reports a cost regression — an index tuning request
is issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.candidates import CandidateGenerator
from repro.core.templates import TemplateStore
from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef


@dataclass
class IndexProblemReport:
    """The classification the diagnosis module produces."""

    missing_beneficial: List[IndexDef] = field(default_factory=list)
    rarely_used: List[IndexDef] = field(default_factory=list)
    negative: List[IndexDef] = field(default_factory=list)
    considered: int = 0
    regression: bool = False
    #: Recently-applied indexes whose post-apply observation window
    #: shows regression (the paper's negative-benefit class); the
    #: advisor reverts these automatically.
    auto_revert: List[IndexDef] = field(default_factory=list)

    @property
    def problem_count(self) -> int:
        return (
            len(self.missing_beneficial)
            + len(self.rarely_used)
            + len(self.negative)
        )

    @property
    def problem_ratio(self) -> float:
        denominator = max(self.considered + len(self.missing_beneficial), 1)
        return self.problem_count / denominator

    def should_tune(self, threshold: float = 0.1) -> bool:
        """The paper's trigger: problem ratio over threshold, or an
        observed performance regression."""
        return self.regression or self.problem_ratio > threshold


class IndexDiagnosis:
    """Classifies index problems from usage metrics and templates.

    With ``incremental=True`` (the default) each pass reuses work
    from the previous one instead of re-scanning everything:

    * **classification** (rarely-used / negative indexes) is keyed on
      ``(monitor.total_queries, catalog_version, usage_epoch,
      protected set)`` — when none of those moved since the last
      pass, the previous lists are reused verbatim;
    * **top templates** come from per-shard snapshots validated
      against :meth:`TemplateStore.shard_versions` dirty counters —
      only shards that changed since the last pass are re-read;
    * **candidate extraction** (the expensive DNF walk in
      :meth:`CandidateGenerator.for_statement`) is cached per
      template fingerprint while the backend's catalog version is
      unchanged; the merge/filter stage runs through
      :meth:`CandidateGenerator.generate_from`, the exact code the
      full path uses.

    ``incremental=False`` pins the original full-scan path; the
    parity suite asserts both paths produce equal reports on the
    same inputs.
    """

    def __init__(
        self,
        db: TuningBackend,
        store: TemplateStore,
        generator: CandidateGenerator,
        min_observations: int = 50,
        negative_maintenance_factor: float = 10.0,
        min_candidate_support: float = 3.0,
        revert_window: int = 2,
        revert_min_maintenance: int = 20,
        incremental: bool = True,
    ):
        self.db = db
        self.store = store
        self.generator = generator
        self.min_observations = min_observations
        self.negative_maintenance_factor = negative_maintenance_factor
        self.min_candidate_support = min_candidate_support
        # Post-apply observation window: indexes the advisor just
        # created are watched for ``revert_window`` diagnosis passes;
        # if maintenance dwarfs lookups in that window the index
        # regressed and is flagged for automatic revert. The
        # ``revert_min_maintenance`` floor stops a handful of early
        # writes from condemning an index before it served anything.
        self.revert_window = revert_window
        self.revert_min_maintenance = revert_min_maintenance
        self._watched: Dict[Tuple, Tuple[IndexDef, int]] = {}
        #: windows closed by the last consuming pass, with how:
        #: "reverted" | "expired" | "disappeared". Drained by
        #: :meth:`pop_closed` (the benefit ledger settles its claims
        #: from these).
        self._closed: List[Tuple[IndexDef, str]] = []
        self.incremental = incremental
        #: shard key → (shard version, [(sort key, template), ...]).
        self._shard_snapshots: Dict[str, Tuple[int, List]] = {}
        #: fingerprint → raw per-statement candidates (with scope
        #: variants), valid while the catalog version is unchanged.
        self._extraction_cache: Dict[str, List[IndexDef]] = {}
        self._extraction_catalog_version: object = None
        self._class_signature: object = None
        self._class_result: Tuple[int, List[IndexDef], List[IndexDef]] = (
            0, [], [],
        )

    def invalidate_caches(self) -> None:
        """Drop every incremental cache (after a checkpoint restore
        or any out-of-band store/backend swap)."""
        self._shard_snapshots.clear()
        self._extraction_cache.clear()
        self._extraction_catalog_version = None
        self._class_signature = None
        self._class_result = (0, [], [])

    def diagnose(
        self,
        protected: Sequence[IndexDef] = (),
        top_templates: int = 100,
    ) -> IndexProblemReport:
        """Produce the current problem report."""
        if not self.incremental:
            return self._diagnose_full(protected, top_templates)
        report = IndexProblemReport(
            regression=self.db.monitor.regression_detected()
        )
        protected_keys: Set = {d.key for d in protected}

        if self.db.monitor.total_queries >= self.min_observations:
            signature = (
                self.db.monitor.total_queries,
                self.db.catalog_version(),
                self.db.usage_epoch(),
                frozenset(protected_keys),
            )
            if signature != self._class_signature:
                considered = 0
                rarely_used: List[IndexDef] = []
                negative: List[IndexDef] = []
                for usage in self.db.index_usage():
                    if usage.definition.key in protected_keys:
                        continue
                    considered += 1
                    if usage.lookups == 0:
                        rarely_used.append(usage.definition)
                    elif (
                        usage.maintenance_ops
                        > usage.lookups * self.negative_maintenance_factor
                    ):
                        negative.append(usage.definition)
                self._class_signature = signature
                self._class_result = (considered, rarely_used, negative)
            considered, rarely_used, negative = self._class_result
            report.considered = considered
            report.rarely_used = list(rarely_used)
            report.negative = list(negative)

        catalog_version = self.db.catalog_version()
        if catalog_version != self._extraction_catalog_version:
            # Schema or statistics moved: every cached extraction
            # (selectivity gates, scope variants, join directions)
            # is suspect. Start over.
            self._extraction_cache.clear()
            self._extraction_catalog_version = catalog_version
        pairs = []
        for template in self._top_templates(top_templates):
            definitions = self._extraction_cache.get(template.fingerprint)
            if definitions is None:
                definitions = self.generator.for_statement(
                    template.statement
                )
                self._extraction_cache[template.fingerprint] = definitions
            pairs.append((template, definitions))
        for candidate in self.generator.generate_from(pairs):
            if candidate.support >= self.min_candidate_support:
                report.missing_beneficial.append(candidate.definition)

        report.auto_revert = self.check_applied(consume=False)
        return report

    def _top_templates(self, top: int) -> List:
        """The store's hottest templates via dirty-shard snapshots.

        Re-reads only shards whose version moved since the last pass;
        clean shards contribute their cached ``(sort key, template)``
        entries. Concatenation in sorted-shard-key order followed by a
        stable sort reproduces ``store.templates(top=...)`` exactly.
        """
        versions = self.store.shard_versions()
        snapshots = self._shard_snapshots
        for shard_key in [k for k in snapshots if k not in versions]:
            del snapshots[shard_key]
        merged: List = []
        for shard_key in sorted(versions):
            version = versions[shard_key]
            cached = snapshots.get(shard_key)
            if cached is None or cached[0] != version:
                entries = [
                    ((-t.frequency, -t.last_seen), t)
                    for t in self.store.shard_templates(shard_key)
                ]
                snapshots[shard_key] = (version, entries)
            else:
                entries = cached[1]
            merged.extend(entries)
        merged.sort(key=lambda pair: pair[0])
        return [template for _key, template in merged[:top]]

    def _diagnose_full(
        self,
        protected: Sequence[IndexDef],
        top_templates: int,
    ) -> IndexProblemReport:
        """The pinned pre-incremental path: full usage scan + full
        candidate generation, no caches consulted or populated."""
        report = IndexProblemReport(
            regression=self.db.monitor.regression_detected()
        )
        protected_keys: Set = {d.key for d in protected}

        if self.db.monitor.total_queries >= self.min_observations:
            for usage in self.db.index_usage():
                if usage.definition.key in protected_keys:
                    continue
                report.considered += 1
                if usage.lookups == 0:
                    report.rarely_used.append(usage.definition)
                elif (
                    usage.maintenance_ops
                    > usage.lookups * self.negative_maintenance_factor
                ):
                    report.negative.append(usage.definition)

        for candidate in self.generator.generate(
            self.store.templates(top=top_templates)
        ):
            if candidate.support >= self.min_candidate_support:
                report.missing_beneficial.append(candidate.definition)

        report.auto_revert = self.check_applied(consume=False)
        return report

    # ------------------------------------------------------------------
    # post-apply observation window
    # ------------------------------------------------------------------

    def register_applied(self, created: Sequence[IndexDef]) -> None:
        """Start watching freshly-applied indexes for regression."""
        for definition in created:
            if definition.unique:
                continue  # never auto-revert constraint indexes
            self._watched[definition.key] = (
                definition,
                self.revert_window,
            )

    def watched_indexes(self) -> List[IndexDef]:
        """Indexes currently inside their observation window."""
        return [d for d, _ in self._watched.values()]

    def check_applied(self, consume: bool = True) -> List[IndexDef]:
        """One observation-window pass over recently-applied indexes.

        Returns the definitions that regressed (write maintenance
        dwarfing lookups — the paper's negative-benefit class). With
        ``consume=True`` (the revert pass in ``tune()``) a flagged or
        expired index leaves the watch list and healthy windows tick
        down; ``consume=False`` (``diagnose()``) is a read-only
        preview so a diagnosis followed by tuning does not burn two
        windows per round.
        """
        if not self._watched:
            return []
        usage = {
            u.definition.key: u for u in self.db.index_usage()
        }
        regressed: List[IndexDef] = []
        for key in list(self._watched):
            definition, remaining = self._watched[key]
            used = usage.get(key)
            if used is None:
                if consume:
                    del self._watched[key]  # dropped by other means
                    self._closed.append((definition, "disappeared"))
                continue
            if (
                used.maintenance_ops >= self.revert_min_maintenance
                and used.maintenance_ops
                > max(used.lookups, 1) * self.negative_maintenance_factor
            ):
                regressed.append(definition)
                if consume:
                    del self._watched[key]
                    self._closed.append((definition, "reverted"))
                continue
            if not consume:
                continue
            remaining -= 1
            if remaining <= 0:
                del self._watched[key]
                self._closed.append((definition, "expired"))
            else:
                self._watched[key] = (definition, remaining)
        return regressed

    def pop_closed(self) -> List[Tuple[IndexDef, str]]:
        """Drain windows closed by consuming passes since last drain.

        Each entry is ``(definition, how)`` with ``how`` one of
        ``"reverted"`` (regression flagged), ``"expired"`` (window
        ended healthy), or ``"disappeared"`` (dropped by other
        means). Reverted/expired arms are still in the catalog when
        this runs — the revert DDL happens after — so callers can
        measure their observed benefit in place.
        """
        closed, self._closed = self._closed, []
        return closed

    def rewatch(
        self,
        definitions: Sequence[IndexDef],
        remaining: int = 1,
    ) -> None:
        """Put definitions back under watch (e.g. a revert's own DDL
        failed and was rolled back; the regression re-flags next
        round instead of silently escaping the window)."""
        for definition in definitions:
            self._watched[definition.key] = (definition, remaining)

    def watched_state(self) -> List[Dict]:
        """JSON-safe observation-window state (for checkpoints)."""
        return [
            {"definition": d.to_dict(), "remaining": remaining}
            for d, remaining in self._watched.values()
        ]

    def restore_watched(self, state: Sequence[Dict]) -> None:
        """Adopt checkpointed observation-window state.

        A crash between an apply and its window expiry must not
        silence the pending auto-revert: restoring puts the arms
        back under watch with their remaining passes intact.
        """
        self._watched = {}
        for entry in state:
            definition = IndexDef.from_dict(entry["definition"])
            self._watched[definition.key] = (
                definition,
                int(entry["remaining"]),
            )
