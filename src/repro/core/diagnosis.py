"""Index diagnosis (paper Section III, "Index Diagnosis").

Monitors workload execution and classifies indexes into the paper's
three problem classes:

1. beneficial indexes that have not been created (high-support
   candidates from current templates);
2. rarely-used indexes (no lookups served over the observation
   window);
3. negative-benefit indexes (maintenance operations dwarf lookups —
   the write-penalised indexes of Example 2).

When the ratio of problematic indexes crosses a threshold — or the
workload monitor reports a cost regression — an index tuning request
is issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.candidates import CandidateGenerator
from repro.core.templates import TemplateStore
from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef


@dataclass
class IndexProblemReport:
    """The classification the diagnosis module produces."""

    missing_beneficial: List[IndexDef] = field(default_factory=list)
    rarely_used: List[IndexDef] = field(default_factory=list)
    negative: List[IndexDef] = field(default_factory=list)
    considered: int = 0
    regression: bool = False
    #: Recently-applied indexes whose post-apply observation window
    #: shows regression (the paper's negative-benefit class); the
    #: advisor reverts these automatically.
    auto_revert: List[IndexDef] = field(default_factory=list)

    @property
    def problem_count(self) -> int:
        return (
            len(self.missing_beneficial)
            + len(self.rarely_used)
            + len(self.negative)
        )

    @property
    def problem_ratio(self) -> float:
        denominator = max(self.considered + len(self.missing_beneficial), 1)
        return self.problem_count / denominator

    def should_tune(self, threshold: float = 0.1) -> bool:
        """The paper's trigger: problem ratio over threshold, or an
        observed performance regression."""
        return self.regression or self.problem_ratio > threshold


class IndexDiagnosis:
    """Classifies index problems from usage metrics and templates."""

    def __init__(
        self,
        db: TuningBackend,
        store: TemplateStore,
        generator: CandidateGenerator,
        min_observations: int = 50,
        negative_maintenance_factor: float = 10.0,
        min_candidate_support: float = 3.0,
        revert_window: int = 2,
        revert_min_maintenance: int = 20,
    ):
        self.db = db
        self.store = store
        self.generator = generator
        self.min_observations = min_observations
        self.negative_maintenance_factor = negative_maintenance_factor
        self.min_candidate_support = min_candidate_support
        # Post-apply observation window: indexes the advisor just
        # created are watched for ``revert_window`` diagnosis passes;
        # if maintenance dwarfs lookups in that window the index
        # regressed and is flagged for automatic revert. The
        # ``revert_min_maintenance`` floor stops a handful of early
        # writes from condemning an index before it served anything.
        self.revert_window = revert_window
        self.revert_min_maintenance = revert_min_maintenance
        self._watched: Dict[Tuple, Tuple[IndexDef, int]] = {}

    def diagnose(
        self,
        protected: Sequence[IndexDef] = (),
        top_templates: int = 100,
    ) -> IndexProblemReport:
        """Produce the current problem report."""
        report = IndexProblemReport(
            regression=self.db.monitor.regression_detected()
        )
        protected_keys: Set = {d.key for d in protected}

        if self.db.monitor.total_queries >= self.min_observations:
            for usage in self.db.index_usage():
                if usage.definition.key in protected_keys:
                    continue
                report.considered += 1
                if usage.lookups == 0:
                    report.rarely_used.append(usage.definition)
                elif (
                    usage.maintenance_ops
                    > usage.lookups * self.negative_maintenance_factor
                ):
                    report.negative.append(usage.definition)

        for candidate in self.generator.generate(
            self.store.templates(top=top_templates)
        ):
            if candidate.support >= self.min_candidate_support:
                report.missing_beneficial.append(candidate.definition)

        report.auto_revert = self.check_applied(consume=False)
        return report

    # ------------------------------------------------------------------
    # post-apply observation window
    # ------------------------------------------------------------------

    def register_applied(self, created: Sequence[IndexDef]) -> None:
        """Start watching freshly-applied indexes for regression."""
        for definition in created:
            if definition.unique:
                continue  # never auto-revert constraint indexes
            self._watched[definition.key] = (
                definition,
                self.revert_window,
            )

    def watched_indexes(self) -> List[IndexDef]:
        """Indexes currently inside their observation window."""
        return [d for d, _ in self._watched.values()]

    def check_applied(self, consume: bool = True) -> List[IndexDef]:
        """One observation-window pass over recently-applied indexes.

        Returns the definitions that regressed (write maintenance
        dwarfing lookups — the paper's negative-benefit class). With
        ``consume=True`` (the revert pass in ``tune()``) a flagged or
        expired index leaves the watch list and healthy windows tick
        down; ``consume=False`` (``diagnose()``) is a read-only
        preview so a diagnosis followed by tuning does not burn two
        windows per round.
        """
        if not self._watched:
            return []
        usage = {
            u.definition.key: u for u in self.db.index_usage()
        }
        regressed: List[IndexDef] = []
        for key in list(self._watched):
            definition, remaining = self._watched[key]
            used = usage.get(key)
            if used is None:
                if consume:
                    del self._watched[key]  # dropped by other means
                continue
            if (
                used.maintenance_ops >= self.revert_min_maintenance
                and used.maintenance_ops
                > max(used.lookups, 1) * self.negative_maintenance_factor
            ):
                regressed.append(definition)
                if consume:
                    del self._watched[key]
                continue
            if not consume:
                continue
            remaining -= 1
            if remaining <= 0:
                del self._watched[key]
            else:
                self._watched[key] = (definition, remaining)
        return regressed
