"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table (the benchmark output format)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(
            value.ljust(widths[col]) for col, value in enumerate(row)
        )
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def format_figure_series(
    title: str,
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render a figure as one row per series (x-axis as columns)."""
    headers = ["series"] + list(x_labels)
    rows = [
        [name] + list(values) for name, values in series.items()
    ]
    return f"{title}\n" + format_table(headers, rows)


def improvement_counts(
    reductions: Mapping[str, float],
    thresholds: Sequence[float] = (0.10, 0.30, 0.50),
) -> Dict[float, int]:
    """How many queries improved by more than each threshold.

    This is the Fig 7 metric ("execution time reduced by over 10%").
    """
    return {
        threshold: sum(1 for r in reductions.values() if r > threshold)
        for threshold in thresholds
    }


def relative_change(before: float, after: float) -> float:
    """Percentage change from before to after (positive = increase)."""
    if before == 0:
        return 0.0
    return 100.0 * (after - before) / before
