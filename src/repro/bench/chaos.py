"""Chaos-mode benchmark: the tuning runtime under injected faults.

``python -m repro.bench --faults`` drives the full advisor loop on
TPC-C while a seeded :class:`~repro.engine.faults.FaultPlan` fails a
fraction of estimator predictions and index builds, and checks the
resilience invariants end to end:

* **liveness** — every tuning round completes without an unhandled
  exception (a degraded, skipped round is fine; a crash is not);
* **atomicity** — after every round the catalog equals exactly what
  the round's report claims (``before − dropped ∪ created``): a
  mid-apply failure must roll back completely, never leave a partial
  configuration;
* **replayability** — the same seed reproduces the chaos run
  bit-identically (identical recommendations, costs, and counters);
* **fault-free determinism** — with injection disabled the run is
  bit-identical across repeats: the resilience machinery adds no
  nondeterminism to the production path.

The run prints per-round resilience counters (retries, fallbacks,
rollbacks, deadline hits) and per-point fault statistics, then a
PASS/FAIL verdict over the invariants.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import prepare_database
from repro.core.advisor import AutoIndexAdvisor
from repro.engine.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    TRANSIENT,
)
from repro.workloads.tpcc import TpccWorkload

#: The acceptance scenario: fail model predictions and index builds.
DEFAULT_POINTS = ("estimator.predict", "index.build")


def _run_loop(
    seed: int,
    rounds: int,
    queries_per_round: int,
    injector: Optional[FaultInjector],
    mcts_iterations: int = 30,
) -> Dict:
    """One full observe→execute→tune loop; returns a comparable summary.

    Everything in the returned structure is a pure function of the
    inputs (query seeds, plan seed), so two calls with equal arguments
    must produce equal summaries — that equality *is* the determinism
    check.
    """
    generator = TpccWorkload(scale=1, seed=seed)
    db = prepare_database(generator, faults=injector)
    advisor = AutoIndexAdvisor(
        db, mcts_iterations=mcts_iterations, seed=seed
    )
    summaries: List[Dict] = []
    for round_no in range(rounds):
        client_errors = 0
        for query in generator.queries(
            queries_per_round, seed=seed + 100 + round_no
        ):
            try:
                db.execute(query.sql)
            except FaultError:
                # A client-visible statement failure; the workload
                # moves on — what must survive is the tuner.
                client_errors += 1
                continue
            advisor.observe(query.sql)
        before = {d.key for d in db.index_defs()}
        report = advisor.tune()
        after = {d.key for d in db.index_defs()}
        expected = (before - {d.key for d in report.dropped}) | {
            d.key for d in report.created
        }
        summaries.append(
            {
                "round": round_no,
                "created": sorted(str(d) for d in report.created),
                "dropped": sorted(str(d) for d in report.dropped),
                "estimated_benefit": report.estimated_benefit,
                "retries": report.retries,
                "fallbacks": report.fallbacks,
                "rolled_back": report.rolled_back,
                "deadline_hit": report.deadline_hit,
                "degraded": report.degraded,
                "skipped": report.skipped,
                "client_errors": client_errors,
                "atomic": after == expected,
            }
        )
    return {
        "rounds": summaries,
        "final_indexes": sorted(
            str(d) for d in db.index_defs()
        ),
        "observe_failures": advisor.observe_failures,
        "fault_stats": injector.stats() if injector else {},
    }


def run_chaos(
    seed: int = 11,
    rate: float = 0.2,
    rounds: int = 4,
    queries_per_round: int = 300,
    points: Sequence[str] = DEFAULT_POINTS,
    kind: str = TRANSIENT,
    out_path: Optional[str] = None,
) -> Dict:
    """Run the chaos scenario plus its control runs; verify invariants."""

    def injector() -> FaultInjector:
        return FaultPlan.chaos(
            seed=seed, rate=rate, points=points, kind=kind
        ).injector()

    chaos = _run_loop(seed, rounds, queries_per_round, injector())
    replay = _run_loop(seed, rounds, queries_per_round, injector())
    clean_a = _run_loop(seed, rounds, queries_per_round, None)
    clean_b = _run_loop(seed, rounds, queries_per_round, None)

    all_atomic = all(
        r["atomic"] for r in chaos["rounds"] + clean_a["rounds"]
    )
    report = {
        "seed": seed,
        "rate": rate,
        "kind": kind,
        "points": list(points),
        "rounds": rounds,
        "queries_per_round": queries_per_round,
        "chaos": chaos,
        "clean": clean_a,
        "all_rounds_atomic": all_atomic,
        "replay_identical": chaos == replay,
        "faults_off_identical": clean_a == clean_b,
    }
    report["ok"] = (
        all_atomic
        and report["replay_identical"]
        and report["faults_off_identical"]
    )
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
    return report


def render_chaos(report: Dict) -> List[str]:
    """Human-readable lines for the chaos report."""
    lines = [
        f"seed={report['seed']} rate={report['rate']} "
        f"kind={report['kind']} points={','.join(report['points'])}"
    ]
    for row in report["chaos"]["rounds"]:
        changes = (
            f"+{len(row['created'])}/-{len(row['dropped'])} indexes"
        )
        flags = []
        if row["retries"]:
            flags.append(f"{row['retries']} retries")
        if row["fallbacks"]:
            flags.append(f"{row['fallbacks']} fallbacks")
        if row["rolled_back"]:
            flags.append(f"{row['rolled_back']} rolled back")
        if row["deadline_hit"]:
            flags.append("deadline")
        if row["skipped"]:
            flags.append("skipped")
        if row["client_errors"]:
            flags.append(f"{row['client_errors']} client errors")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        atomic = "ok" if row["atomic"] else "PARTIAL APPLY"
        lines.append(
            f"round {row['round']}: {changes}, catalog {atomic}{suffix}"
        )
    for point, stats in report["chaos"]["fault_stats"].items():
        lines.append(
            f"fault {point}: {stats['fired']}/{stats['visits']} "
            "fired/visits"
        )
    lines.append(
        "invariants: "
        f"atomic={report['all_rounds_atomic']} "
        f"replay_identical={report['replay_identical']} "
        f"faults_off_identical={report['faults_off_identical']}"
    )
    lines.append("PASS" if report["ok"] else "FAIL")
    return lines
