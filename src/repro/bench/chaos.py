"""Chaos-mode benchmark: the tuning runtime under injected faults.

``python -m repro.bench --faults`` drives the full advisor loop on
TPC-C while a seeded :class:`~repro.engine.faults.FaultPlan` fails a
fraction of estimator predictions and index builds, and checks the
resilience invariants end to end:

* **liveness** — every tuning round completes without an unhandled
  exception (a degraded, skipped round is fine; a crash is not);
* **atomicity** — after every round the catalog equals exactly what
  the round's report claims (``before − dropped ∪ created``): a
  mid-apply failure must roll back completely, never leave a partial
  configuration;
* **replayability** — the same seed reproduces the chaos run
  bit-identically (identical recommendations, costs, and counters);
* **fault-free determinism** — with injection disabled the run is
  bit-identical across repeats: the resilience machinery adds no
  nondeterminism to the production path.

The run prints per-round resilience counters (retries, fallbacks,
rollbacks, deadline hits) and per-point fault statistics, then a
PASS/FAIL verdict over the invariants.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import prepare_database
from repro.core.advisor import AutoIndexAdvisor
from repro.engine.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    TRANSIENT,
)
from repro.ports.factory import DEFAULT_BACKEND
from repro.workloads.tpcc import TpccWorkload

#: The acceptance scenario: fail model predictions and index builds.
DEFAULT_POINTS = ("estimator.predict", "index.build")

#: Seeds the regret scenario must hold its bound across.
REGRET_SEEDS = (11, 23, 47)

#: Default cumulative-regret bound for ``--faults --regret``,
#: calibrated to the TPC-C scale-1 loop: large enough that honest
#: tuning never brushes it, small enough that the adversarial
#: estimator's inflated claims are actually constrained by it.
DEFAULT_REGRET_BOUND = 250.0


def _run_loop(
    seed: int,
    rounds: int,
    queries_per_round: int,
    injector: Optional[FaultInjector],
    mcts_iterations: int = 30,
    backend: str = DEFAULT_BACKEND,
) -> Dict:
    """One full observe→execute→tune loop; returns a comparable summary.

    Everything in the returned structure is a pure function of the
    inputs (query seeds, plan seed), so two calls with equal arguments
    must produce equal summaries — that equality *is* the determinism
    check.
    """
    generator = TpccWorkload(scale=1, seed=seed)
    db = prepare_database(generator, faults=injector, backend=backend)
    advisor = AutoIndexAdvisor(
        db, mcts_iterations=mcts_iterations, seed=seed
    )
    summaries: List[Dict] = []
    for round_no in range(rounds):
        client_errors = 0
        for query in generator.queries(
            queries_per_round, seed=seed + 100 + round_no
        ):
            try:
                db.execute(query.sql)
            except FaultError:
                # A client-visible statement failure; the workload
                # moves on — what must survive is the tuner.
                client_errors += 1
                continue
            advisor.observe(query.sql)
        before = {d.key for d in db.index_defs()}
        report = advisor.tune()
        after = {d.key for d in db.index_defs()}
        expected = (before - {d.key for d in report.dropped}) | {
            d.key for d in report.created
        }
        summaries.append(
            {
                "round": round_no,
                "created": sorted(str(d) for d in report.created),
                "dropped": sorted(str(d) for d in report.dropped),
                "estimated_benefit": report.estimated_benefit,
                "retries": report.retries,
                "fallbacks": report.fallbacks,
                "rolled_back": report.rolled_back,
                "deadline_hit": report.deadline_hit,
                "degraded": report.degraded,
                "skipped": report.skipped,
                "client_errors": client_errors,
                "atomic": after == expected,
            }
        )
    return {
        "rounds": summaries,
        "final_indexes": sorted(
            str(d) for d in db.index_defs()
        ),
        "observe_failures": advisor.observe_failures,
        "fault_stats": injector.stats() if injector else {},
    }


def run_chaos(
    seed: int = 11,
    rate: float = 0.2,
    rounds: int = 4,
    queries_per_round: int = 300,
    points: Sequence[str] = DEFAULT_POINTS,
    kind: str = TRANSIENT,
    out_path: Optional[str] = None,
    backend: str = DEFAULT_BACKEND,
) -> Dict:
    """Run the chaos scenario plus its control runs; verify invariants."""

    def injector() -> FaultInjector:
        return FaultPlan.chaos(
            seed=seed, rate=rate, points=points, kind=kind
        ).injector()

    chaos = _run_loop(
        seed, rounds, queries_per_round, injector(), backend=backend
    )
    replay = _run_loop(
        seed, rounds, queries_per_round, injector(), backend=backend
    )
    clean_a = _run_loop(
        seed, rounds, queries_per_round, None, backend=backend
    )
    clean_b = _run_loop(
        seed, rounds, queries_per_round, None, backend=backend
    )

    all_atomic = all(
        r["atomic"] for r in chaos["rounds"] + clean_a["rounds"]
    )
    report = {
        "seed": seed,
        "rate": rate,
        "kind": kind,
        "points": list(points),
        "backend": backend,
        "rounds": rounds,
        "queries_per_round": queries_per_round,
        "chaos": chaos,
        "clean": clean_a,
        "all_rounds_atomic": all_atomic,
        "replay_identical": chaos == replay,
        "faults_off_identical": clean_a == clean_b,
    }
    report["ok"] = (
        all_atomic
        and report["replay_identical"]
        and report["faults_off_identical"]
    )
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
    return report


def render_chaos(report: Dict) -> List[str]:
    """Human-readable lines for the chaos report."""
    lines = [
        f"seed={report['seed']} rate={report['rate']} "
        f"kind={report['kind']} points={','.join(report['points'])} "
        f"backend={report.get('backend', DEFAULT_BACKEND)}"
    ]
    for row in report["chaos"]["rounds"]:
        changes = (
            f"+{len(row['created'])}/-{len(row['dropped'])} indexes"
        )
        flags = []
        if row["retries"]:
            flags.append(f"{row['retries']} retries")
        if row["fallbacks"]:
            flags.append(f"{row['fallbacks']} fallbacks")
        if row["rolled_back"]:
            flags.append(f"{row['rolled_back']} rolled back")
        if row["deadline_hit"]:
            flags.append("deadline")
        if row["skipped"]:
            flags.append("skipped")
        if row["client_errors"]:
            flags.append(f"{row['client_errors']} client errors")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        atomic = "ok" if row["atomic"] else "PARTIAL APPLY"
        lines.append(
            f"round {row['round']}: {changes}, catalog {atomic}{suffix}"
        )
    for point, stats in report["chaos"]["fault_stats"].items():
        lines.append(
            f"fault {point}: {stats['fired']}/{stats['visits']} "
            "fired/visits"
        )
    lines.append(
        "invariants: "
        f"atomic={report['all_rounds_atomic']} "
        f"replay_identical={report['replay_identical']} "
        f"faults_off_identical={report['faults_off_identical']}"
    )
    lines.append("PASS" if report["ok"] else "FAIL")
    return lines


# ---------------------------------------------------------------------------
# regret mode: adversarial estimator vs. the regret bound
# ---------------------------------------------------------------------------


class AdversarialBenefitModel:
    """Deterministic worst-case estimator for the regret scenario.

    The analytic cost is divided by ``1 + optimism · num_indexes``
    (column 4 of the feature vector), so every additional index makes
    a plan look cheaper whether or not it helps: each apply's
    predicted benefit is systematically inflated relative to what the
    model-independent shadow costing later observes. This is the
    misprediction class *DBA bandits* guards against — and it is a
    pure function of the features, so the whole scenario replays
    bit-identically.
    """

    trained = True

    def __init__(self, optimism: float = 0.35):
        self.optimism = optimism

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        base = matrix[:, 0] + matrix[:, 1] + matrix[:, 2]
        return base / (1.0 + self.optimism * matrix[:, 4])

    def predict_one(self, features) -> float:
        return float(self.predict(features.as_array()[None, :])[0])


def _run_regret_loop(
    seed: int,
    rounds: int,
    queries_per_round: int,
    regret_bound: float,
    optimism: float,
    mcts_iterations: int = 30,
    backend: str = DEFAULT_BACKEND,
) -> Dict:
    """One advisor lifetime under the adversarial estimator."""
    generator = TpccWorkload(scale=1, seed=seed)
    db = prepare_database(generator, backend=backend)
    advisor = AutoIndexAdvisor(
        db,
        mcts_iterations=mcts_iterations,
        seed=seed,
        regret_bound=regret_bound,
    )
    # Swap in the adversary after construction: the advisor tunes
    # with a model that systematically over-promises.
    advisor.estimator.model = AdversarialBenefitModel(optimism)
    advisor.estimator.clear_cache()
    summaries: List[Dict] = []
    for round_no in range(rounds):
        for query in generator.queries(
            queries_per_round, seed=seed + 100 + round_no
        ):
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        ledger = advisor.safety.ledger
        summaries.append(
            {
                "round": round_no,
                "created": sorted(str(d) for d in report.created),
                "dropped": sorted(str(d) for d in report.dropped),
                "gated": report.gated,
                "gate_reason": report.gate_reason,
                "queued": report.queued,
                "shadow_margin": report.shadow_margin,
                "cumulative_regret": ledger.cumulative_regret,
                "pending_exposure": ledger.pending_exposure(),
            }
        )
    summary = advisor.regret_summary()
    return {
        "rounds": summaries,
        "final_indexes": sorted(str(d) for d in db.index_defs()),
        "regret_summary": summary,
        "queue_pending": len(advisor.safety.queue.pending()),
    }


def run_regret(
    seeds: Sequence[int] = REGRET_SEEDS,
    regret_bound: float = DEFAULT_REGRET_BOUND,
    rounds: int = 6,
    queries_per_round: int = 250,
    optimism: float = 0.35,
    out_path: Optional[str] = None,
    backend: str = DEFAULT_BACKEND,
) -> Dict:
    """The ``--faults --regret`` scenario.

    For each seed the advisor runs a full lifetime against an
    estimator that systematically inflates index benefit, twice. The
    invariants:

    * **bounded** — the ledger's cumulative observed regret never
      exceeds the configured bound (once the budget is exhausted the
      advisor degrades to shadow-only instead of gambling);
    * **bit-identical replay** — the two runs per seed produce equal
      summaries (the safety layer adds no nondeterminism);
    * **engaged** — the gate actually fired somewhere (a bound nobody
      hits is not evidence of anything).
    """
    per_seed: List[Dict] = []
    for seed in seeds:
        first = _run_regret_loop(
            seed, rounds, queries_per_round, regret_bound, optimism,
            backend=backend,
        )
        second = _run_regret_loop(
            seed, rounds, queries_per_round, regret_bound, optimism,
            backend=backend,
        )
        regret = first["regret_summary"]["cumulative_regret"]
        per_seed.append(
            {
                "seed": seed,
                "cumulative_regret": regret,
                "within_bound": regret <= regret_bound,
                "replay_identical": first == second,
                "gated_rounds": first["regret_summary"]["gated_rounds"],
                "shadow_only": first["regret_summary"]["shadow_only"],
                "queue_pending": first["queue_pending"],
                "rounds": first["rounds"],
            }
        )
    report = {
        "seeds": list(seeds),
        "regret_bound": regret_bound,
        "rounds": rounds,
        "queries_per_round": queries_per_round,
        "optimism": optimism,
        "backend": backend,
        "per_seed": per_seed,
        "all_within_bound": all(s["within_bound"] for s in per_seed),
        "all_replay_identical": all(
            s["replay_identical"] for s in per_seed
        ),
        "gate_engaged": any(s["gated_rounds"] > 0 for s in per_seed),
    }
    report["ok"] = (
        report["all_within_bound"]
        and report["all_replay_identical"]
        and report["gate_engaged"]
    )
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
    return report


def render_regret(report: Dict) -> List[str]:
    """Human-readable lines for the regret report."""
    lines = [
        f"bound={report['regret_bound']:,.0f} "
        f"optimism={report['optimism']} rounds={report['rounds']} "
        f"backend={report['backend']}"
    ]
    for row in report["per_seed"]:
        posture = "shadow-only" if row["shadow_only"] else "applying"
        lines.append(
            f"seed {row['seed']}: regret "
            f"{row['cumulative_regret']:,.1f} "
            f"({'within' if row['within_bound'] else 'EXCEEDS'} bound), "
            f"{row['gated_rounds']} gated rounds, "
            f"{row['queue_pending']} queued, now {posture}, "
            f"replay={'ok' if row['replay_identical'] else 'DIVERGED'}"
        )
    lines.append(
        "invariants: "
        f"within_bound={report['all_within_bound']} "
        f"replay_identical={report['all_replay_identical']} "
        f"gate_engaged={report['gate_engaged']}"
    )
    lines.append("PASS" if report["ok"] else "FAIL")
    return lines
