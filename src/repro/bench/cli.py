"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro.bench list              # show available experiments
    python -m repro.bench run fig5 fig7     # run selected experiments
    python -m repro.bench run --all         # run everything

This drives the same experiment code as ``pytest benchmarks/`` but
without the pytest/benchmark machinery — convenient for quick looks
and for environments without pytest-benchmark.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Callable, Dict, List

from repro.ports.factory import available_backends

# Each entry: experiment id -> (benchmarks module, compute callable
# name, renderer description). The benchmarks modules own the
# experiment logic; the CLI reuses them.
_EXPERIMENTS: Dict[str, Dict[str, str]] = {
    "fig1": {
        "module": "benchmarks.test_fig1_banking_removal",
        "compute": "run_removal",
        "title": "Fig 1: banking index removal",
    },
    "fig5": {
        "module": "benchmarks.test_fig5_tpcc",
        "compute": "run_all",
        "title": "Fig 5: TPC-C latency/throughput at three scales",
    },
    "fig6": {
        "module": "benchmarks.test_fig6_fig7_tpcds",
        "compute": "run_tpcds",
        "title": "Fig 6/7: TPC-DS per-query improvement (budgeted)",
    },
    "fig8": {
        "module": "benchmarks.test_fig8_template_overhead",
        "compute": "run_comparison",
        "title": "Fig 8: template-based vs query-level overhead",
    },
    "fig9": {
        "module": "benchmarks.test_fig9_dynamic",
        "compute": "run_dynamic",
        "title": "Fig 9: dynamic TPC-C adaptivity",
    },
    "fig10": {
        "module": "benchmarks.test_fig10_storage_limits",
        "compute": "run_budget_sweep",
        "title": "Fig 10: storage budget sweep",
    },
    "table1": {
        "module": "benchmarks.test_table1_added_indexes",
        "compute": "run_experiment",
        "title": "Table I: added indexes on TPC-C",
    },
    "table2": {
        "module": "benchmarks.test_table2_table3_banking",
        "compute": "run_creation",
        "title": "Table II/III: banking index creation",
    },
}


def _load(experiment: str) -> Callable:
    spec = _EXPERIMENTS[experiment]
    module = importlib.import_module(spec["module"])
    return getattr(module, spec["compute"])


def list_experiments() -> None:
    print("available experiments:")
    for key, spec in _EXPERIMENTS.items():
        print(f"  {key:8s} {spec['title']}")
    print(
        "\nfull rendered tables come from: "
        "pytest benchmarks/ --benchmark-only"
    )


def run_experiments(names: List[str]) -> int:
    failures = 0
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'")
            failures += 1
            continue
        title = _EXPERIMENTS[name]["title"]
        print(f"\n=== {title} ===")
        start = time.perf_counter()
        try:
            result = _load(name)()
        except Exception as exc:  # pragma: no cover - CLI convenience
            print(f"  FAILED: {exc}")
            failures += 1
            continue
        elapsed = time.perf_counter() - start
        print(f"  done in {elapsed:.1f}s")
        _summarise(result)
    return failures


def _summarise(result: object, indent: str = "  ") -> None:
    """Small structural dump of an experiment's raw outcome."""
    if isinstance(result, dict):
        for key, value in list(result.items())[:12]:
            if isinstance(value, (dict, list, tuple)) and not isinstance(
                value, str
            ):
                print(f"{indent}{key}:")
                _summarise(value, indent + "  ")
            else:
                print(f"{indent}{key}: {value}")
        return
    if isinstance(result, (list, tuple)):
        for item in list(result)[:8]:
            _summarise(item, indent)
        return
    print(f"{indent}{result}")


def run_perf(
    target: str, iterations: int, rounds: int, out: str, workers: int,
    queries: int = 4000,
) -> int:
    """Dispatch a performance benchmark (``--perf mcts|ingest``)."""
    if target == "mcts":
        from repro.bench.perf import render_mcts_perf, run_mcts_perf

        print("=== perf: MCTS costing modes (full/delta/parallel) ===")
        report = run_mcts_perf(
            iterations=iterations, rounds=rounds, out_path=out,
            workers=workers,
        )
        for line in render_mcts_perf(report):
            print("  " + line)
        print(f"  written to {out}")
        return 0
    if target == "ingest":
        from repro.bench.perf import render_ingest_perf, run_ingest_perf

        print(
            "=== perf: ingest modes "
            "(full-parse/cached/cached+incremental) ==="
        )
        report = run_ingest_perf(queries=queries, out_path=out)
        for line in render_ingest_perf(report):
            print("  " + line)
        print(f"  written to {out}")
        return 0 if report["identical_result"] else 1
    print(f"unknown perf target {target!r}")  # argparse guards this
    return 2


def run_backend(backend: str, seed: int) -> int:
    """Dispatch the backend demo (``--backend sqlite``)."""
    from repro.bench.backends import render_backend_demo, run_backend_demo

    print(f"=== backend demo: full tuning run on {backend!r} ===")
    summary = run_backend_demo(backend, seed=seed)
    for line in render_backend_demo(summary):
        print("  " + line)
    return 0


def run_faults(
    seed: int,
    rate: float,
    rounds: int,
    kind: str,
    out: str,
    backend: str | None = None,
) -> int:
    """Dispatch the chaos benchmark (``--faults``)."""
    from repro.bench.chaos import render_chaos, run_chaos
    from repro.ports.factory import DEFAULT_BACKEND

    backend = backend or DEFAULT_BACKEND
    print(
        f"=== chaos: tuning under injected faults ({backend}) ==="
    )
    report = run_chaos(
        seed=seed, rate=rate, rounds=rounds, kind=kind, out_path=out,
        backend=backend,
    )
    for line in render_chaos(report):
        print("  " + line)
    print(f"  written to {out}")
    return 0 if report["ok"] else 1


def run_regret_mode(
    regret_bound: float, out: str, backend: str | None = None
) -> int:
    """Dispatch the regret scenario (``--faults --regret``)."""
    from repro.bench.chaos import render_regret, run_regret
    from repro.ports.factory import DEFAULT_BACKEND

    backend = backend or DEFAULT_BACKEND
    print(
        "=== regret: adversarial estimator vs the regret bound "
        f"({backend}) ==="
    )
    report = run_regret(
        regret_bound=regret_bound, out_path=out, backend=backend
    )
    for line in render_regret(report):
        print("  " + line)
    print(f"  written to {out}")
    return 0 if report["ok"] else 1


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the AutoIndex paper's experiments.",
    )
    parser.add_argument(
        "--perf",
        choices=["mcts", "ingest"],
        help="run a performance benchmark instead of an experiment",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="rollout-costing processes for --perf mcts (capped at "
             "the visible core count; default 4)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        help="run a full tuning demo on the chosen backend adapter",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the chaos benchmark (tuning under injected faults); "
             "combine with --backend to pick the adapter",
    )
    parser.add_argument(
        "--regret",
        action="store_true",
        help="with --faults: run the regret scenario (adversarial "
             "estimator vs the configured regret bound, 3 seeds)",
    )
    parser.add_argument(
        "--regret-bound", type=float, default=None,
        help="cumulative-regret bound for --regret (default 250)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
        help="fault-plan seed for --faults (default 11)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.2,
        help="per-visit fault probability for --faults (default 0.2)",
    )
    parser.add_argument(
        "--fault-kind", choices=["transient", "permanent"],
        default="transient",
        help="fault type injected by --faults (default transient)",
    )
    parser.add_argument(
        "--iterations", type=int, default=200,
        help="total MCTS iterations for --perf (default 200)",
    )
    parser.add_argument(
        "--queries", type=int, default=4000,
        help="queries per mode for --perf ingest (default 4000)",
    )
    parser.add_argument(
        "--rounds", type=int, default=6,
        help="tuning rounds to split iterations over (default 6)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path for --perf/--faults (defaults to "
             "BENCH_<target>.json)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run experiments")
    run.add_argument("experiments", nargs="*", help="experiment ids")
    run.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    args = parser.parse_args(argv)

    if args.regret and not args.faults:
        parser.error("--regret requires --faults")
    if args.faults:
        if args.regret:
            from repro.bench.chaos import DEFAULT_REGRET_BOUND

            bound = (
                args.regret_bound
                if args.regret_bound is not None
                else DEFAULT_REGRET_BOUND
            )
            if bound <= 0:
                parser.error("--regret-bound must be > 0")
            out = args.out or "BENCH_regret.json"
            return run_regret_mode(bound, out, backend=args.backend)
        if not 0.0 <= args.rate <= 1.0:
            parser.error("--rate must be within [0, 1]")
        if args.rounds < 1:
            parser.error("--rounds must be >= 1")
        out = args.out or "BENCH_chaos.json"
        return run_faults(
            args.seed, args.rate, args.rounds, args.fault_kind, out,
            backend=args.backend,
        )
    if args.perf:
        if args.iterations < 1:
            parser.error("--iterations must be >= 1")
        if args.rounds < 1:
            parser.error("--rounds must be >= 1")
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        if args.queries < 1:
            parser.error("--queries must be >= 1")
        out = args.out or f"BENCH_{args.perf}.json"
        return run_perf(
            args.perf, args.iterations, args.rounds, out, args.workers,
            queries=args.queries,
        )
    if args.backend:
        return run_backend(args.backend, args.seed)
    if args.command is None:
        parser.error(
            "a command is required unless --perf/--faults/--backend "
            "is given"
        )
    if args.command == "list":
        list_experiments()
        return 0
    names = list(_EXPERIMENTS) if args.all else args.experiments
    if not names:
        print("nothing to run; pass experiment ids or --all")
        return 2
    return 1 if run_experiments(names) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
