"""Benchmark harness: run (advisor × workload × budget) experiments and
render the paper's tables and figures as text."""

from repro.bench.harness import (
    AdvisorKind,
    ExperimentResult,
    PerQueryResult,
    make_advisor,
    prepare_database,
    run_advisor_experiment,
    run_queries,
    run_per_query,
)
from repro.bench.reporting import (
    format_figure_series,
    format_table,
    improvement_counts,
)

__all__ = [
    "AdvisorKind",
    "ExperimentResult",
    "PerQueryResult",
    "format_figure_series",
    "format_table",
    "improvement_counts",
    "make_advisor",
    "prepare_database",
    "run_advisor_experiment",
    "run_per_query",
    "run_queries",
]
