"""Experiment driver shared by every benchmark.

Measurement conventions (see DESIGN.md §5):

* **latency** of a workload = sum of the engine's deterministic
  execution costs;
* **throughput** = queries / total cost (reported relative to a
  baseline, matching how the paper reports percentages);
* **storage** = real B+Tree bytes;
* **tuning overhead** = statements analysed + estimator calls + wall
  seconds of the advisor itself.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.advisor import AutoIndexAdvisor, TuningReport
from repro.core.baselines import DefaultAdvisor, GreedyAdvisor, QueryLevelAdvisor
from repro.ports.backend import TuningBackend
from repro.ports.factory import DEFAULT_BACKEND, create_backend
from repro.workloads.base import Query, WorkloadGenerator


class AdvisorKind(enum.Enum):
    """The advisors compared throughout the evaluation."""

    DEFAULT = "Default"
    GREEDY = "Greedy"
    AUTOINDEX = "AutoIndex"
    QUERY_LEVEL = "QueryLevel"
    HILL_CLIMB = "HillClimb"


def prepare_database(
    generator: WorkloadGenerator,
    with_defaults: bool = True,
    faults=None,
    backend: str = DEFAULT_BACKEND,
) -> TuningBackend:
    """Fresh backend with the generator's schema, data, and defaults.

    ``backend`` selects the adapter (see
    :func:`repro.ports.factory.create_backend`); every generator runs
    unchanged on any of them because it only speaks the protocol.

    ``faults`` (a :class:`repro.engine.faults.FaultInjector`) is
    attached *after* the build so schema setup and data loading are
    never chaos-tested — faults target the tuning runtime.
    """
    db = create_backend(backend)
    generator.build(db, with_defaults=with_defaults)
    if faults is not None:
        db.faults = faults
        db.planner.faults = faults
    return db


def make_advisor(
    kind: AdvisorKind,
    db: TuningBackend,
    storage_budget: Optional[int] = None,
    mcts_iterations: int = 80,
    seed: int = 17,
):
    """Instantiate the advisor under test."""
    if kind is AdvisorKind.DEFAULT:
        return DefaultAdvisor(db)
    if kind is AdvisorKind.GREEDY:
        return GreedyAdvisor(db, storage_budget=storage_budget)
    if kind is AdvisorKind.HILL_CLIMB:
        return GreedyAdvisor(
            db, storage_budget=storage_budget, marginal=True
        )
    if kind is AdvisorKind.AUTOINDEX:
        return AutoIndexAdvisor(
            db,
            storage_budget=storage_budget,
            mcts_iterations=mcts_iterations,
            seed=seed,
        )
    if kind is AdvisorKind.QUERY_LEVEL:
        return QueryLevelAdvisor(
            db,
            storage_budget=storage_budget,
            mcts_iterations=mcts_iterations,
            seed=seed,
        )
    raise ValueError(f"unknown advisor kind {kind}")


@dataclass
class RunStats:
    """Execution statistics for one batch of queries."""

    total_cost: float = 0.0
    query_count: int = 0
    read_cost: float = 0.0
    write_cost: float = 0.0

    @property
    def mean_cost(self) -> float:
        return self.total_cost / max(self.query_count, 1)

    @property
    def throughput(self) -> float:
        """Queries per 1000 cost units (relative metric)."""
        if self.total_cost <= 0:
            return 0.0
        return 1000.0 * self.query_count / self.total_cost


def run_queries(
    db: TuningBackend,
    queries: Sequence[Query],
    advisor=None,
) -> RunStats:
    """Execute a batch, optionally feeding the advisor's observer."""
    stats = RunStats()
    for query in queries:
        result = db.execute(query.sql)
        stats.total_cost += result.cost
        stats.query_count += 1
        if query.is_write:
            stats.write_cost += result.cost
        else:
            stats.read_cost += result.cost
        if advisor is not None:
            advisor.observe(query.sql)
    return stats


@dataclass
class PerQueryResult:
    """Per-tag execution cost (for the Fig 6/7 style plots)."""

    costs: Dict[str, float] = field(default_factory=dict)

    def reduction_vs(self, baseline: "PerQueryResult") -> Dict[str, float]:
        """Fractional execution-cost reduction per query tag."""
        out = {}
        for tag, base in baseline.costs.items():
            mine = self.costs.get(tag, base)
            out[tag] = 0.0 if base <= 0 else (base - mine) / base
        return out


def run_per_query(db: TuningBackend, queries: Sequence[Query]) -> PerQueryResult:
    """Execute tagged queries, recording cost per tag."""
    result = PerQueryResult()
    for query in queries:
        tag = query.tag or query.sql
        result.costs[tag] = result.costs.get(tag, 0.0) + db.execute(
            query.sql
        ).cost
    return result


@dataclass
class ExperimentResult:
    """One (advisor, workload) experiment outcome."""

    advisor: str
    train_stats: RunStats
    test_stats: RunStats
    tuning: Optional[TuningReport]
    index_count: int
    index_bytes: int
    tuning_seconds: float

    @property
    def total_latency(self) -> float:
        return self.test_stats.total_cost

    @property
    def throughput(self) -> float:
        return self.test_stats.throughput


def run_advisor_experiment(
    generator: WorkloadGenerator,
    kind: AdvisorKind,
    train_queries: int,
    test_queries: int,
    storage_budget: Optional[int] = None,
    seed: int = 0,
    mcts_iterations: int = 80,
    with_defaults: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> ExperimentResult:
    """The standard protocol: observe a training batch, tune once,
    then measure a held-out test batch."""
    db = prepare_database(
        generator, with_defaults=with_defaults, backend=backend
    )
    advisor = make_advisor(
        kind, db, storage_budget=storage_budget,
        mcts_iterations=mcts_iterations,
    )
    train = generator.queries(train_queries, seed=seed)
    train_stats = run_queries(db, train, advisor)

    start = time.perf_counter()
    tuning = advisor.tune()
    tuning_seconds = time.perf_counter() - start

    test = generator.queries(test_queries, seed=seed + 1000)
    test_stats = run_queries(db, test)
    return ExperimentResult(
        advisor=kind.value,
        train_stats=train_stats,
        test_stats=test_stats,
        tuning=tuning,
        index_count=len(db.index_defs()),
        index_bytes=db.total_index_bytes(),
        tuning_seconds=tuning_seconds,
    )
