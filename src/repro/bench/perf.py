"""Performance benchmark: full vs delta costing across MCTS rounds.

``python -m repro.bench --perf mcts`` times N MCTS iterations split
over several tuning rounds on TPC-C, once with the incremental
machinery disabled (full: every evaluation re-costs the whole
workload, no feature tier, no plan memoisation — the pre-delta
behaviour) and once with it enabled. The estimator caches are cleared
between rounds in both modes, emulating the model retrain that
normally happens there; the feature tier is exactly what survives
that clear, so the delta mode re-plans almost nothing after round
one.

Because delta costs are bitwise-identical to full recomputation, both
modes follow the same search trajectory under the same seed — the
comparison measures pure bookkeeping overhead, not different
searches.

Writes ``BENCH_mcts.json`` with per-mode wall time, planner
invocations, model predictions, and cache statistics, plus the
full/delta ratios.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List

from repro.bench.harness import prepare_database
from repro.core.candidates import CandidateGenerator
from repro.core.estimator import BenefitEstimator
from repro.core.mcts import MctsIndexSelector
from repro.core.templates import TemplateStore
from repro.workloads.tpcc import TpccWorkload


def _build_workload(observe_queries: int):
    """Fresh TPC-C database + observed templates + candidates."""
    generator = TpccWorkload(scale=1, seed=11)
    db = prepare_database(generator)
    store = TemplateStore()
    for query in generator.queries(observe_queries, seed=3):
        store.observe(query.sql, db.parse_statement(query.sql))
    templates = store.templates(top=120)
    candidates = CandidateGenerator(db).generate(templates)
    return db, templates, [c.definition for c in candidates]


def _run_mode(
    delta: bool,
    iterations: int,
    rounds: int,
    seed: int,
    observe_queries: int,
) -> Dict:
    db, templates, candidates = _build_workload(observe_queries)
    if delta:
        estimator = BenefitEstimator(db)
    else:
        # Pre-change behaviour: no feature tier, no plan memoisation,
        # every config costed from scratch.
        db.planner.plan_cache_enabled = False
        estimator = BenefitEstimator(db, feature_cache_size=0)
    selector = MctsIndexSelector(
        estimator,
        iterations=max(iterations // rounds, 1),
        rollouts=2,
        patience=10**9,  # never stop early: fixed work per round
        rng=random.Random(seed),
        delta_costing=delta,
    )
    existing = db.index_defs()
    protected = [d for d in existing if d.unique]

    results = []
    start = time.perf_counter()
    for _ in range(rounds):
        result = selector.search(
            existing=existing,
            candidates=candidates,
            templates=templates,
            protected=protected,
        )
        results.append(result)
        # Between rounds the model is normally retrained; the cost
        # tier dies with the old model either way.
        estimator.clear_cache()
    wall_seconds = time.perf_counter() - start

    stats = estimator.cache_stats()
    return {
        "mode": "delta" if delta else "full",
        "wall_seconds": wall_seconds,
        "plans_computed": estimator.plans_computed,
        "model_predictions": estimator.estimate_calls,
        "evaluations": sum(r.evaluations for r in results),
        "best_benefit": results[-1].best_benefit,
        "best_config": [str(d) for d in results[-1].best_config],
        "cost_cache": stats["cost"].as_dict(),
        "feature_cache": stats["features"].as_dict(),
        "planner_access_paths": db.planner.access_paths_computed,
        "plan_cache": db.planner.plan_cache_stats().as_dict(),
    }


def run_mcts_perf(
    iterations: int = 200,
    rounds: int = 6,
    out_path: str = "BENCH_mcts.json",
    seed: int = 17,
    observe_queries: int = 400,
) -> Dict:
    """Time full-vs-delta MCTS and write the comparison JSON."""
    full = _run_mode(False, iterations, rounds, seed, observe_queries)
    delta = _run_mode(True, iterations, rounds, seed, observe_queries)

    identical = (
        full["best_benefit"] == delta["best_benefit"]
        and full["best_config"] == delta["best_config"]
    )
    report = {
        "benchmark": "mcts-full-vs-delta",
        "workload": "tpcc scale=1",
        "iterations": iterations,
        "rounds": rounds,
        "seed": seed,
        "full": full,
        "delta": delta,
        "speedup_wall": _ratio(
            full["wall_seconds"], delta["wall_seconds"]
        ),
        "plan_reduction": _ratio(
            full["plans_computed"], delta["plans_computed"]
        ),
        "prediction_reduction": _ratio(
            full["model_predictions"], delta["model_predictions"]
        ),
        "identical_result": identical,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _ratio(full: float, delta: float) -> float:
    return float(full) / max(float(delta), 1e-12)


def render_mcts_perf(report: Dict) -> List[str]:
    """Human-readable lines for the CLI."""
    lines = [
        f"workload: {report['workload']}  "
        f"iterations: {report['iterations']} over "
        f"{report['rounds']} rounds",
    ]
    for mode in ("full", "delta"):
        m = report[mode]
        lines.append(
            f"{mode:6s} {m['wall_seconds']:8.2f}s  "
            f"plans={m['plans_computed']:<6d} "
            f"predictions={m['model_predictions']:<6d} "
            f"cost-cache hit rate="
            f"{m['cost_cache']['hit_rate']:.2f}"
        )
    lines.append(
        f"speedup: {report['speedup_wall']:.2f}x wall, "
        f"{report['plan_reduction']:.2f}x fewer plans, "
        f"{report['prediction_reduction']:.2f}x fewer predictions"
    )
    lines.append(
        "identical result: " + ("yes" if report["identical_result"]
                                else "NO (investigate)")
    )
    return lines
