"""Performance benchmarks: MCTS costing modes and template ingest.

``python -m repro.bench --perf mcts`` times N MCTS iterations split
over several tuning rounds on TPC-C in three modes:

* **full** — the incremental machinery disabled: every evaluation
  re-costs the whole workload, no feature tier, no plan memoisation,
  per-statement what-if overlays (the pre-delta behaviour);
* **delta** — incremental re-costing with the per-statement scalar
  estimator path pinned (``vectorized=False``): the delta baseline as
  it shipped, before batch costing and worker pools existed;
* **parallel** — everything on: delta costing, vectorized batch
  costing (one overlay window + one ``model.predict`` per evaluation
  batch), and ``--workers`` rollout costing processes when the
  machine has more than one core.

The estimator caches are cleared between rounds in every mode,
emulating the model retrain that normally happens there. Because
delta costs are bitwise-identical to full recomputation — and the
parallel merge happens in submission order on a parent-side RNG — all
three modes follow the same search trajectory under the same seed.
``identical_result`` asserts exactly that; the comparison measures
pure bookkeeping overhead, never different searches.

The ``machine`` block keeps the numbers honest: ``workers_effective``
is capped at the visible core count (a rollout-costing pool on a
single-core container is pure fork overhead), so ``speedup_parallel``
only reflects process parallelism on hardware that has it.

``python -m repro.bench --perf ingest`` streams the same TPC-C query
batch through the observe-side hot path (SQL2Template matching plus a
periodic index-diagnosis pass) in three modes:

* **full** — the pre-fast-path behaviour: no raw-key cache (every
  statement runs lex → parse → parameterize) and the pinned
  full-scan diagnosis;
* **cached** — the zero-reparse fast path: a lex-only raw-key
  normalization resolves repeated statement shapes against a bounded
  LRU cache, diagnosis still full-scan;
* **cached_incremental** — fast path plus incremental diagnosis
  (dirty-shard snapshots, per-fingerprint extraction cache).

``identical_result`` asserts the three modes produced the same
template set, per-template statistics, shard layout, and diagnosis
reports — the fast path must be invisible except in wall time.

Writes ``BENCH_mcts.json`` / ``BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from typing import Dict, List

from repro.bench.harness import prepare_database
from repro.core.candidates import CandidateGenerator
from repro.core.diagnosis import IndexDiagnosis
from repro.core.estimator import BenefitEstimator
from repro.core.mcts import MctsIndexSelector
from repro.core.templates import TemplateStore
from repro.workloads.tpcc import TpccWorkload


def _build_workload(observe_queries: int):
    """Fresh TPC-C database + observed templates + candidates."""
    generator = TpccWorkload(scale=1, seed=11)
    db = prepare_database(generator)
    store = TemplateStore()
    for query in generator.queries(observe_queries, seed=3):
        store.observe(query.sql, db.parse_statement(query.sql))
    templates = store.templates(top=120)
    candidates = CandidateGenerator(db).generate(templates)
    return db, templates, [c.definition for c in candidates]


def _run_mode(
    mode: str,
    iterations: int,
    rounds: int,
    seed: int,
    observe_queries: int,
    workers: int = 1,
) -> Dict:
    db, templates, candidates = _build_workload(observe_queries)
    if mode == "full":
        # Pre-delta behaviour: no feature tier, no plan memoisation,
        # per-statement overlays, every config costed from scratch.
        db.planner.plan_cache_enabled = False
        estimator = BenefitEstimator(
            db, feature_cache_size=0, vectorized=False
        )
        delta, mode_workers = False, 1
    elif mode == "delta":
        # The delta baseline as shipped: incremental re-costing with
        # the scalar per-statement estimator path pinned.
        estimator = BenefitEstimator(db, vectorized=False)
        delta, mode_workers = True, 1
    elif mode == "parallel":
        estimator = BenefitEstimator(db)
        delta, mode_workers = True, workers
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown bench mode {mode!r}")
    selector = MctsIndexSelector(
        estimator,
        iterations=max(iterations // rounds, 1),
        rollouts=2,
        patience=10**9,  # never stop early: fixed work per round
        rng=random.Random(seed),
        delta_costing=delta,
        workers=mode_workers,
    )
    existing = db.index_defs()
    protected = [d for d in existing if d.unique]

    results = []
    start = time.perf_counter()
    for _ in range(rounds):
        result = selector.search(
            existing=existing,
            candidates=candidates,
            templates=templates,
            protected=protected,
        )
        results.append(result)
        # Between rounds the model is normally retrained; the cost
        # tier dies with the old model either way.
        estimator.clear_cache()
    wall_seconds = time.perf_counter() - start

    stats = estimator.cache_stats()
    return {
        "mode": mode,
        "wall_seconds": wall_seconds,
        "workers_used": max(r.workers_used for r in results),
        "plans_computed": estimator.plans_computed,
        "model_predictions": estimator.estimate_calls,
        "evaluations": sum(r.evaluations for r in results),
        "best_benefit": results[-1].best_benefit,
        "best_config": [str(d) for d in results[-1].best_config],
        "cost_cache": stats["cost"].as_dict(),
        "feature_cache": stats["features"].as_dict(),
        "planner_access_paths": db.planner.access_paths_computed,
        "plan_cache": db.planner.plan_cache_stats().as_dict(),
    }


def run_mcts_perf(
    iterations: int = 200,
    rounds: int = 6,
    out_path: str = "BENCH_mcts.json",
    seed: int = 17,
    observe_queries: int = 400,
    workers: int = 4,
) -> Dict:
    """Time the three costing modes and write the comparison JSON."""
    cpu_count = os.cpu_count() or 1
    # A rollout-costing pool wider than the machine is pure fork
    # overhead; the bench never oversubscribes (the selector itself
    # honours whatever the caller asks for).
    workers_effective = max(min(workers, cpu_count), 1)
    full = _run_mode("full", iterations, rounds, seed, observe_queries)
    delta = _run_mode("delta", iterations, rounds, seed, observe_queries)
    parallel = _run_mode(
        "parallel", iterations, rounds, seed, observe_queries,
        workers=workers_effective,
    )

    identical = (
        full["best_benefit"]
        == delta["best_benefit"]
        == parallel["best_benefit"]
        and full["best_config"]
        == delta["best_config"]
        == parallel["best_config"]
    )
    report = {
        "benchmark": "mcts-costing-modes",
        "workload": "tpcc scale=1",
        "iterations": iterations,
        "rounds": rounds,
        "seed": seed,
        "machine": {
            "cpu_count": cpu_count,
            "workers_requested": workers,
            "workers_effective": workers_effective,
        },
        "full": full,
        "delta": delta,
        "parallel": parallel,
        "speedup_wall": _ratio(
            full["wall_seconds"], delta["wall_seconds"]
        ),
        "speedup_parallel": _ratio(
            delta["wall_seconds"], parallel["wall_seconds"]
        ),
        "speedup_parallel_vs_full": _ratio(
            full["wall_seconds"], parallel["wall_seconds"]
        ),
        "plan_reduction": _ratio(
            full["plans_computed"], delta["plans_computed"]
        ),
        "prediction_reduction": _ratio(
            full["model_predictions"], delta["model_predictions"]
        ),
        "identical_result": identical,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _ratio(full: float, delta: float) -> float:
    return float(full) / max(float(delta), 1e-12)


def render_mcts_perf(report: Dict) -> List[str]:
    """Human-readable lines for the CLI."""
    machine = report["machine"]
    lines = [
        f"workload: {report['workload']}  "
        f"iterations: {report['iterations']} over "
        f"{report['rounds']} rounds",
        f"machine: {machine['cpu_count']} cores; workers "
        f"{machine['workers_requested']} requested, "
        f"{machine['workers_effective']} effective",
    ]
    for mode in ("full", "delta", "parallel"):
        m = report[mode]
        lines.append(
            f"{mode:8s} {m['wall_seconds']:8.2f}s  "
            f"plans={m['plans_computed']:<6d} "
            f"predictions={m['model_predictions']:<6d} "
            f"cost-cache hit rate="
            f"{m['cost_cache']['hit_rate']:.2f}"
        )
    lines.append(
        f"speedup: full/delta {report['speedup_wall']:.2f}x, "
        f"delta/parallel {report['speedup_parallel']:.2f}x, "
        f"full/parallel {report['speedup_parallel_vs_full']:.2f}x"
    )
    lines.append(
        "identical result: " + ("yes" if report["identical_result"]
                                else "NO (investigate)")
    )
    return lines


# ---------------------------------------------------------------------------
# ingest: SQL2Template + diagnosis throughput
# ---------------------------------------------------------------------------


def _serialize_report(problems) -> Dict:
    """Canonical JSON-comparable form of an IndexProblemReport."""
    return {
        "missing_beneficial": [
            str(d) for d in problems.missing_beneficial
        ],
        "rarely_used": [str(d) for d in problems.rarely_used],
        "negative": [str(d) for d in problems.negative],
        "considered": problems.considered,
        "regression": problems.regression,
        "auto_revert": [str(d) for d in problems.auto_revert],
    }


def _run_ingest_mode(
    mode: str,
    batch,
    generator,
    diagnosis_every: int,
) -> Dict:
    """One timed ingest pass in one of three configurations.

    * **full** — the pre-fast-path behaviour: no raw-key cache
      (every statement parses) and the pinned full-scan diagnosis;
    * **cached** — raw-key fast path on, diagnosis still full-scan;
    * **cached_incremental** — fast path plus incremental diagnosis
      (dirty-shard snapshots, per-fingerprint extraction cache).
    """
    db = prepare_database(generator)
    raw_cache = 0 if mode == "full" else 4096
    store = TemplateStore(
        raw_cache_size=raw_cache, parse_fn=db.parse_statement
    )
    diagnosis = IndexDiagnosis(
        db,
        store,
        CandidateGenerator(db),
        incremental=(mode == "cached_incremental"),
    )

    reports = []
    start = time.perf_counter()
    for i, query in enumerate(batch, 1):
        store.observe(query.sql)
        if i % diagnosis_every == 0:
            reports.append(_serialize_report(diagnosis.diagnose()))
    wall_seconds = time.perf_counter() - start

    shard_stats = store.shard_stats()
    return {
        "mode": mode,
        "wall_seconds": wall_seconds,
        "queries_per_second": len(batch) / max(wall_seconds, 1e-12),
        "diagnosis_passes": len(reports),
        "templates": sum(shard_stats.values()),
        "shards": len(shard_stats),
        "largest_shard": max(shard_stats.values(), default=0),
        "shard_stats": shard_stats,
        "raw_cache": store.raw_cache_stats(),
        # Comparison payloads (popped before writing the JSON).
        "_template_state": {
            t.fingerprint: (
                t.frequency,
                t.window_frequency,
                t.last_seen,
                t.sample_sql,
            )
            for t in store.templates()
        },
        "_reports": reports,
    }


def run_ingest_perf(
    queries: int = 4000,
    out_path: str = "BENCH_ingest.json",
    seed: int = 17,
    diagnosis_every: int = 1000,
) -> Dict:
    """Measure observe-side throughput and write ``BENCH_ingest.json``.

    The timed loop is exactly the online ingest path: resolve each
    statement against the sharded template store (SQL2Template), and
    every ``diagnosis_every`` queries run an index-diagnosis pass
    (usage classification + candidate generation) — the cadence at
    which the monitor would evaluate whether to trigger tuning. Three
    modes (full-parse / cached / cached+incremental) run the same
    query batch; ``identical_result`` asserts the template set,
    per-template statistics, shard layout, and every diagnosis report
    are equal across all three.
    """
    generator = TpccWorkload(scale=1, seed=11)
    batch = list(generator.queries(queries, seed=seed))

    from repro.sql.normalize import NORMALIZER_VERSION

    full = _run_ingest_mode("full", batch, generator, diagnosis_every)
    cached = _run_ingest_mode(
        "cached", batch, generator, diagnosis_every
    )
    incremental = _run_ingest_mode(
        "cached_incremental", batch, generator, diagnosis_every
    )

    identical = (
        full["_template_state"]
        == cached["_template_state"]
        == incremental["_template_state"]
        and full["shard_stats"]
        == cached["shard_stats"]
        == incremental["shard_stats"]
        and full["_reports"]
        == cached["_reports"]
        == incremental["_reports"]
    )
    for mode_result in (full, cached, incremental):
        mode_result.pop("_template_state")
        mode_result.pop("_reports")

    report = {
        "benchmark": "ingest-sql2template-diagnosis",
        "workload": "tpcc scale=1",
        "queries": queries,
        "seed": seed,
        "diagnosis_every": diagnosis_every,
        "normalizer_version": NORMALIZER_VERSION,
        # Single-threaded bench, but throughput still depends on the
        # machine: record enough to keep the numbers honest.
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "full": full,
        "cached": cached,
        "cached_incremental": incremental,
        "speedup_cached": _ratio(
            full["wall_seconds"], cached["wall_seconds"]
        ),
        "speedup_incremental": _ratio(
            cached["wall_seconds"], incremental["wall_seconds"]
        ),
        "speedup_total": _ratio(
            full["wall_seconds"], incremental["wall_seconds"]
        ),
        "identical_result": identical,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def render_ingest_perf(report: Dict) -> List[str]:
    """Human-readable lines for the CLI."""
    lines = [
        f"workload: {report['workload']}  "
        f"queries: {report['queries']}  "
        f"(diagnosis every {report['diagnosis_every']})",
    ]
    for mode in ("full", "cached", "cached_incremental"):
        m = report[mode]
        cache = m["raw_cache"]
        lines.append(
            f"{mode:18s} {m['queries_per_second']:9.0f} q/s  "
            f"({m['wall_seconds']:.2f}s wall, "
            f"cache {cache['hits']}h/{cache['misses']}m, "
            f"{cache['parity_checks']} parity checks)"
        )
    m = report["cached_incremental"]
    lines.append(
        f"store: {m['templates']} templates across "
        f"{m['shards']} shards (largest {m['largest_shard']})"
    )
    lines.append(
        f"speedup: full/cached {report['speedup_cached']:.2f}x, "
        f"cached/incremental {report['speedup_incremental']:.2f}x, "
        f"full/incremental {report['speedup_total']:.2f}x"
    )
    lines.append(
        "identical result: " + ("yes" if report["identical_result"]
                                else "NO (investigate)")
    )
    return lines
