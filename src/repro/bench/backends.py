"""Backend demo: one full tuning run on a selected adapter.

``python -m repro.bench --backend sqlite`` drives the complete
AutoIndex loop — build the banking scenario, execute and observe a
training batch, run one tuning round (Observe → Diagnose →
Candidates → Search → Apply), then measure a held-out test batch —
against whichever :class:`~repro.ports.backend.TuningBackend`
adapter was requested. The tuner itself is byte-identical in both
runs; only the adapter behind the protocol changes, which is the
whole point of the ports layer.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import prepare_database, run_queries
from repro.core.advisor import AutoIndexAdvisor
from repro.workloads.banking import BankingWorkload

MiB = 1024 * 1024


def run_backend_demo(
    backend: str,
    accounts: int = 400,
    train_queries: int = 300,
    test_queries: int = 150,
    seed: int = 7,
    storage_budget: int = 4 * MiB,
    mcts_iterations: int = 40,
) -> Dict:
    """Full tuning run on ``backend``; returns a summary dict."""
    generator = BankingWorkload(
        accounts=accounts,
        txn_rows=accounts * 4,
        product_rows=50,
        seed=seed,
    )
    db = prepare_database(generator, backend=backend)
    advisor = AutoIndexAdvisor(
        db,
        storage_budget=storage_budget,
        mcts_iterations=mcts_iterations,
        seed=seed,
    )

    train = generator.queries(train_queries, seed=seed)
    train_stats = run_queries(db, train, advisor)
    report = advisor.tune()
    test = generator.queries(test_queries, seed=seed + 1000)
    test_stats = run_queries(db, test)

    return {
        "backend": db.name,
        "train_cost": train_stats.total_cost,
        "test_cost": test_stats.total_cost,
        "created": [str(d) for d in report.created],
        "dropped": [str(d) for d in report.dropped],
        "estimated_benefit": report.estimated_benefit,
        "baseline_cost": report.baseline_cost,
        "index_count": len(db.index_defs()),
        "index_bytes": db.total_index_bytes(),
        "report": report,
    }


def render_backend_demo(summary: Dict) -> list:
    """Human-readable lines for the CLI."""
    lines = [
        f"backend: {summary['backend']}",
        f"train cost: {summary['train_cost']:,.1f}  "
        f"test cost: {summary['test_cost']:,.1f}",
        f"indexes after tuning: {summary['index_count']} "
        f"({summary['index_bytes'] / MiB:.2f} MiB)",
    ]
    lines.extend(summary["report"].render().splitlines())
    return lines
