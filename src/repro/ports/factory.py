"""Backend registry: construct a :class:`TuningBackend` by name.

The registry serves two callers that must share one code path:

* the single-database CLIs (``python -m repro.bench --backend sqlite``)
  that pick one adapter for the whole process, and
* the serving daemon's :class:`~repro.serve.registry.TenantRegistry`,
  where every tenant pins its own backend kind, reproducibility seed,
  and template-store shard budget — many adapters of different kinds
  live side by side in one process.

Both go through :func:`create_backend`.  Per-tenant knobs that the
adapter itself does not consume (the advisor seed, the template-store
shard budget) travel on the returned backend as its
:class:`BackendSpec`, so whoever wires an advisor on top (the tenant
registry, the bench harness) reads the tenant's configuration off the
backend instead of threading it through a second channel.

Out-of-tree adapters register with :func:`register_backend`; the
daemon accepts any registered kind in a tenant spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.engine.cost import CostParams, DEFAULT_PARAMS
from repro.engine.faults import FaultInjector
from repro.ports.backend import TuningBackend
from repro.ports.memory import MemoryBackend
from repro.ports.sqlite import SqliteBackend

_REGISTRY: Dict[str, Callable[..., TuningBackend]] = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
}

DEFAULT_BACKEND = "memory"

#: Default advisor seed mirrored from :class:`AutoIndexAdvisor`; kept
#: here so a backend spec is complete without importing core.
DEFAULT_SEED = 17


@dataclass(frozen=True)
class BackendSpec:
    """Per-tenant backend configuration, attached to every backend.

    ``seed`` seeds the advisor built on top of this backend;
    ``shard_budget`` caps that advisor's template store (the
    per-tenant memory bound — ``None`` keeps the advisor default).
    Neither is consumed by the adapter itself, but carrying them on
    the backend keeps one tenant's whole configuration in one place.
    """

    kind: str = DEFAULT_BACKEND
    seed: int = DEFAULT_SEED
    shard_budget: Optional[int] = None


def available_backends() -> tuple:
    """Backend names accepted by :func:`create_backend`, sorted."""
    return tuple(sorted(_REGISTRY))


def register_backend(
    name: str, ctor: Callable[..., TuningBackend]
) -> None:
    """Register an adapter constructor under ``name``.

    The constructor must accept the common ``(params=, faults=)``
    keyword pair every in-tree adapter takes.  Re-registering an
    existing name is an error — replacing an adapter under a running
    daemon would silently change what tenants pinned to it mean.
    """
    if not name or not name.isidentifier():
        raise ValueError(
            f"backend name must be an identifier, got {name!r}"
        )
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = ctor


def create_backend(
    name: str = DEFAULT_BACKEND,
    params: CostParams = DEFAULT_PARAMS,
    faults: Optional[FaultInjector] = None,
    seed: Optional[int] = None,
    shard_budget: Optional[int] = None,
    **extra,
) -> TuningBackend:
    """Construct the named backend adapter.

    Every adapter takes the same (cost-model params, fault injector)
    pair, so callers — the bench harness, workload preparation, the
    tenant registry, tests — stay backend-agnostic.  ``seed`` and
    ``shard_budget`` are per-tenant advisor knobs recorded on the
    returned backend's ``spec``; ``extra`` kwargs are forwarded to
    the adapter constructor (for registered out-of-tree adapters
    with their own options).
    """
    try:
        ctor = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown backend {name!r} (known: {known})"
        ) from None
    backend = ctor(params=params, faults=faults, **extra)
    backend.spec = BackendSpec(
        kind=name,
        seed=seed if seed is not None else DEFAULT_SEED,
        shard_budget=shard_budget,
    )
    return backend
