"""Backend factory: construct a :class:`TuningBackend` by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.engine.cost import CostParams, DEFAULT_PARAMS
from repro.engine.faults import FaultInjector
from repro.ports.backend import TuningBackend
from repro.ports.memory import MemoryBackend
from repro.ports.sqlite import SqliteBackend

_REGISTRY: Dict[str, Callable[..., TuningBackend]] = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
}

DEFAULT_BACKEND = "memory"


def available_backends() -> tuple:
    """Backend names accepted by :func:`create_backend`, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(
    name: str = DEFAULT_BACKEND,
    params: CostParams = DEFAULT_PARAMS,
    faults: Optional[FaultInjector] = None,
) -> TuningBackend:
    """Construct the named backend adapter.

    Every adapter takes the same (cost-model params, fault injector)
    pair, so callers — the bench harness, workload preparation, tests
    — stay backend-agnostic.
    """
    try:
        ctor = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown backend {name!r} (known: {known})"
        ) from None
    return ctor(params=params, faults=faults)
