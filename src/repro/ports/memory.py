"""The in-memory adapter: our own engine behind the backend protocol.

:class:`MemoryBackend` extends :class:`repro.engine.database.Database`
with the few protocol methods the facade does not already expose
(what-if costing via the shared ports helper, a stats/schema surface,
fingerprinting). It is the reference adapter: real B+Trees, measured
execution costs, deterministic everything.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.cost import CostParams, DEFAULT_PARAMS
from repro.engine.database import Database
from repro.engine.faults import FaultInjector
from repro.engine.index import IndexDef
from repro.engine.plan import PlanNode
from repro.engine.schema import TableSchema
from repro.engine.stats import TableStats
from repro.ports.backend import WhatIfCost
from repro.ports.whatif import planned_whatif, planned_whatif_batch
from repro.sql import ast
from repro.sql.fingerprint import fingerprint as _fingerprint


class MemoryBackend(Database):
    """The in-process engine speaking :class:`TuningBackend`."""

    name = "memory"
    #: Pure in-process state — a forked MCTS worker gets a coherent
    #: copy-on-write snapshot, so parallel rollout costing is safe.
    parallel_safe = True

    def __init__(
        self,
        params: CostParams = DEFAULT_PARAMS,
        faults: Optional[FaultInjector] = None,
    ):
        super().__init__(params=params, faults=faults)

    # -- parse / fingerprint ------------------------------------------------

    def fingerprint(self, statement: ast.Statement) -> str:
        return _fingerprint(statement)

    # -- what-if costing ----------------------------------------------------

    def whatif_cost(
        self,
        statement: ast.Statement,
        config: Optional[Sequence[IndexDef]] = None,
    ) -> WhatIfCost:
        cost, _plan = planned_whatif(
            self.planner, self.catalog, statement, config
        )
        return cost

    def whatif_cost_batch(
        self,
        statements: Sequence[ast.Statement],
        config: Optional[Sequence[IndexDef]] = None,
    ) -> List[WhatIfCost]:
        return [
            cost
            for cost, _plan in planned_whatif_batch(
                self.planner, self.catalog, statements, config
            )
        ]

    def estimate_cost(
        self,
        statement: Union[str, ast.Statement],
        config: Optional[Sequence[IndexDef]] = None,
    ) -> Tuple[float, PlanNode]:
        """Optimizer cost of a statement under an index configuration.

        ``config`` is the complete index set to assume (real indexes
        not in the config are masked; config entries not built are
        added hypothetically). ``None`` means the current real set.
        Nothing is executed.
        """
        if isinstance(statement, str):
            statement = self.parse_statement(statement)
        cost, plan = planned_whatif(
            self.planner, self.catalog, statement, config
        )
        return cost.total, plan

    # -- stats & schema surface ---------------------------------------------

    def table_stats(self, table: str) -> TableStats:
        return self.catalog.stats(table)

    def schema(self, table: str) -> TableSchema:
        return self.catalog.table(table).schema

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def catalog_version(self) -> int:
        return self.catalog.version
