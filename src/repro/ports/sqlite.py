"""The SQLite adapter: real DDL + ANALYZE behind the backend protocol.

:class:`SqliteBackend` hosts the tuner on stdlib ``sqlite3``:

* DDL is real — ``CREATE TABLE`` / ``CREATE INDEX`` / ``DROP INDEX``
  run against an actual SQLite database, and every statement the
  workload submits executes there for real;
* statistics come from SQLite's own ``ANALYZE``: row counts are read
  back from ``sqlite_stat1`` and per-column distributions (null
  fraction, n_distinct, most-common values, equi-depth histogram) are
  pulled via catalog queries, then poured into our
  :class:`~repro.engine.stats.TableStats` shape;
* what-if costing reuses **our** cost model: a *shadow catalog*
  (:class:`repro.engine.catalog.Catalog` populated with those pulled
  stats plus lightweight :class:`ShadowIndex` entries) feeds the
  shared :class:`~repro.engine.planner.Planner`, so hypothetical
  configurations are costed exactly the way the paper layers its
  estimator over a host DBMS it cannot modify.

Because SQLite will not report plan costs, ``execute`` returns the
shadow planner's estimate as the statement cost; the rows and
rowcounts are SQLite's real answers. Shadow index shapes are always
*estimated* (``hypothetical_shape``) — we never measure SQLite's
B-tree pages — which is precisely the situation an external tuner is
in, and what the backend-parity tests exercise.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.engine.catalog import Catalog, TableEntry
from repro.engine.cost import CostParams, DEFAULT_PARAMS, PAGE_SIZE
from repro.engine.faults import FaultInjector, check as fault_check
from repro.engine.index import IndexDef, IndexShape, hypothetical_shape
from repro.engine.metrics import IndexUsage, QueryRecord, WorkloadMonitor
from repro.engine.plan import (
    DeletePlan,
    InsertPlan,
    PlanNode,
    UpdatePlan,
    indexes_used,
)
from repro.engine.planner import Planner
from repro.engine.schema import ColumnType, TableSchema
from repro.engine.stats import (
    ColumnStats,
    HISTOGRAM_BUCKETS,
    MCV_ENTRIES,
    TableStats,
)
from repro.ports.backend import ExecutionOutcome, WhatIfCost
from repro.ports.whatif import planned_whatif, planned_whatif_batch
from repro.sql import ast, parse
from repro.sql.fingerprint import fingerprint as _fingerprint

_TYPE_MAP = {
    ColumnType.INT: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.BOOL: "INTEGER",
}


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class _StatsHeap:
    """Page accounting for a table that physically lives in SQLite.

    The shadow planner costs sequential scans by ``heap.page_count``,
    so we mirror :class:`repro.engine.storage.HeapFile`'s geometry —
    fixed rows-per-page, tombstoned deletes feeding a free list, pages
    never reclaimed — without storing any rows.
    """

    def __init__(self, schema: TableSchema):
        self.rows_per_page = max(1, PAGE_SIZE // schema.row_byte_width)
        self._slots = 0  # high-water slot count (pages never shrink)
        self._free = 0  # tombstoned slots available for reuse
        self._live = 0

    def insert_rows(self, count: int) -> None:
        reused = min(self._free, count)
        self._free -= reused
        self._slots += count - reused
        self._live += count

    def delete_rows(self, count: int) -> None:
        count = min(count, self._live)
        self._free += count
        self._live -= count

    @property
    def page_count(self) -> int:
        return (
            self._slots + self.rows_per_page - 1
        ) // self.rows_per_page

    @property
    def row_count(self) -> int:
        return self._live


class ShadowIndex:
    """Catalog stand-in for an index materialised inside SQLite.

    Carries the usage counters diagnosis needs and answers shape
    queries with the estimated B+Tree geometry — an external tuner
    cannot count a host DBMS's btree pages, so unlike the in-memory
    engine the "real" shape here *is* the estimate.
    """

    def __init__(self, definition: IndexDef, entry: TableEntry):
        self.definition = definition
        self._entry = entry
        self.lookup_count = 0
        self.maintenance_count = 0

    def _shape(self) -> IndexShape:
        return hypothetical_shape(
            self.definition, self._entry.schema, self._entry.stats
        )

    @property
    def height(self) -> int:
        return self._shape().height

    @property
    def leaf_page_count(self) -> int:
        return self._shape().leaf_pages

    @property
    def page_count(self) -> int:
        return self._shape().total_pages

    @property
    def entry_count(self) -> int:
        return self._shape().entry_count

    @property
    def partition_count(self) -> int:
        return self._shape().partitions

    @property
    def byte_size(self) -> int:
        return self._shape().byte_size


class SqliteBackend:
    """A real SQLite database speaking :class:`TuningBackend`."""

    name = "sqlite"
    #: An sqlite3 connection must not be used across a fork; MCTS
    #: keeps rollout costing serial on this backend.
    parallel_safe = False

    def __init__(
        self,
        params: CostParams = DEFAULT_PARAMS,
        faults: Optional[FaultInjector] = None,
    ):
        self.params = params
        self.faults = faults
        self.conn = sqlite3.connect(":memory:", isolation_level=None)
        self.catalog = Catalog()
        self.planner = Planner(self.catalog, params, faults=faults)
        self.monitor = WorkloadMonitor()
        self._statement_cache: Dict[str, ast.Statement] = {}
        self._usage_epoch = 0

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Create the table in SQLite and mirror it in the shadow catalog."""
        entry = self.catalog.add_table(schema)
        entry.heap = _StatsHeap(schema)
        columns = ", ".join(
            f"{_quote(c.name)} {_TYPE_MAP[c.type]}"
            for c in schema.columns
        )
        self.conn.execute(
            f"CREATE TABLE {_quote(schema.name)} ({columns})"
        )
        if schema.primary_key:
            self.create_index(
                IndexDef(
                    table=schema.name,
                    columns=tuple(schema.primary_key),
                    name=f"pk_{schema.name}",
                    unique=True,
                )
            )

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.conn.execute(f"DROP TABLE {_quote(name)}")

    def create_index(self, definition: IndexDef) -> ShadowIndex:
        """Run real ``CREATE INDEX`` DDL and register the shadow entry.

        Atomic with respect to the visible index set: the duplicate
        check and the ``index.build`` fault point both fire *before*
        the DDL, and registration happens only after SQLite accepted
        it — a failed build leaves both SQLite and the shadow catalog
        untouched.
        """
        entry = self.catalog.table(definition.table)
        if definition.key in entry.indexes:
            raise ValueError(f"index on {definition.key} already exists")
        fault_check(self.faults, "index.build")
        unique = "UNIQUE " if definition.unique else ""
        columns = ", ".join(_quote(c) for c in definition.columns)
        self.conn.execute(
            f"CREATE {unique}INDEX {_quote(definition.display_name)} "
            f"ON {_quote(definition.table)} ({columns})"
        )
        shadow = ShadowIndex(definition, entry)
        self.catalog.add_index(shadow)
        return shadow

    def drop_index(self, definition: IndexDef) -> None:
        # Same fault point as creates, checked before any mutation:
        # an injected fault leaves SQLite and the shadow catalog
        # untouched, never a half-dropped index.
        fault_check(self.faults, "index.build")
        dropped = self.catalog.drop_index(definition)
        self.conn.execute(
            f"DROP INDEX {_quote(dropped.definition.display_name)}"
        )

    def has_index(self, definition: IndexDef) -> bool:
        return self.catalog.get_index(definition) is not None

    def index_defs(self) -> List[IndexDef]:
        return self.catalog.real_index_defs()

    # ------------------------------------------------------------------
    # bulk loading & stats
    # ------------------------------------------------------------------

    def load_rows(
        self, table: str, rows: Iterable[Tuple[object, ...]]
    ) -> int:
        """Bulk-load rows (SQLite maintains its own indexes)."""
        entry = self.catalog.table(table)
        rows = list(rows)
        if rows:
            marks = ", ".join("?" for _ in entry.schema.columns)
            self.conn.executemany(
                f"INSERT INTO {_quote(table)} VALUES ({marks})", rows
            )
            entry.heap.insert_rows(len(rows))
        self.catalog.bump_version()
        return len(rows)

    def analyze(self, table: Optional[str] = None) -> None:
        """Run real ``ANALYZE`` and pull the stats into the shadow catalog."""
        names = [table] if table else self.catalog.table_names()
        for name in names:
            fault_check(self.faults, "stats.refresh")
            self.conn.execute(f"ANALYZE {_quote(name)}")
            self._pull_stats(name)
        self.catalog.bump_version()

    def _pull_stats(self, table: str) -> None:
        """Rebuild ``TableStats`` for one table from SQLite's catalog.

        Row counts come from ``sqlite_stat1`` (the first integer of an
        index's ``stat`` column is its entry count — every table here
        carries at least its primary-key index); column distributions
        are pulled with catalog queries shaped to reproduce
        :func:`repro.engine.stats.analyze_column` exactly, down to the
        MCV tie-break (``MIN(rowid)`` matches ``Counter`` insertion
        order because rowids are assigned in insertion order).
        """
        entry = self.catalog.table(table)
        total = self._stat1_row_count(table)
        stats = TableStats(row_count=total)
        for column in entry.schema.column_names:
            stats.columns[column] = self._pull_column(
                table, column, total
            )
        entry.stats = stats

    def _stat1_row_count(self, table: str) -> int:
        try:
            rows = self.conn.execute(
                "SELECT stat FROM sqlite_stat1 "
                "WHERE tbl = ? AND idx IS NOT NULL",
                (table,),
            ).fetchall()
        except sqlite3.OperationalError:
            rows = []
        counts = []
        for (stat,) in rows:
            head = str(stat).split()[0]
            if head.isdigit():
                counts.append(int(head))
        if counts:
            return max(counts)
        row = self.conn.execute(
            f"SELECT COUNT(*) FROM {_quote(table)}"
        ).fetchone()
        return int(row[0])

    def _pull_column(
        self, table: str, column: str, total: int
    ) -> ColumnStats:
        if total == 0:
            return ColumnStats()
        q_table, q_col = _quote(table), _quote(column)
        non_null, n_distinct = self.conn.execute(
            f"SELECT COUNT({q_col}), COUNT(DISTINCT {q_col}) "
            f"FROM {q_table}"
        ).fetchone()
        null_fraction = 1.0 - non_null / total
        if non_null == 0:
            return ColumnStats(null_fraction=1.0, n_distinct=0)

        limit = "" if n_distinct <= MCV_ENTRIES else f" LIMIT {MCV_ENTRIES}"
        groups = self.conn.execute(
            f"SELECT {q_col} AS v, COUNT(*) AS c, MIN(rowid) AS fr "
            f"FROM {q_table} WHERE {q_col} IS NOT NULL "
            f"GROUP BY {q_col} ORDER BY c DESC, fr ASC{limit}"
        ).fetchall()
        if n_distinct <= MCV_ENTRIES:
            mcv = tuple((v, c / total) for v, c, _fr in groups)
        else:
            uniform = non_null / n_distinct
            mcv = tuple(
                (v, c / total)
                for v, c, _fr in groups
                if c > 1.5 * uniform
            )

        ordered = [
            row[0]
            for row in self.conn.execute(
                f"SELECT {q_col} FROM {q_table} "
                f"WHERE {q_col} IS NOT NULL ORDER BY {q_col} ASC"
            )
        ]
        buckets = min(HISTOGRAM_BUCKETS, max(1, n_distinct - 1))
        boundaries = []
        for i in range(buckets + 1):
            pos = min(
                int(round(i * (len(ordered) - 1) / buckets)),
                len(ordered) - 1,
            )
            boundaries.append(ordered[pos])
        return ColumnStats(
            null_fraction=null_fraction,
            n_distinct=n_distinct,
            min_value=ordered[0],
            max_value=ordered[-1],
            mcv=mcv,
            histogram=tuple(boundaries),
        )

    def table_row_count(self, table: str) -> int:
        return self.catalog.table(table).heap.row_count

    def table_stats(self, table: str) -> TableStats:
        return self.catalog.stats(table)

    def schema(self, table: str) -> TableSchema:
        return self.catalog.table(table).schema

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def catalog_version(self) -> int:
        return self.catalog.version

    # ------------------------------------------------------------------
    # parse / fingerprint
    # ------------------------------------------------------------------

    def parse_statement(self, sql: str) -> ast.Statement:
        fault_check(self.faults, "parser.parse")
        cached = self._statement_cache.get(sql)
        if cached is None:
            cached = parse(sql)
            if len(self._statement_cache) < 50000:
                self._statement_cache[sql] = cached
        return cached

    def fingerprint(self, statement: ast.Statement) -> str:
        return _fingerprint(statement)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self, statement: Union[str, ast.Statement]
    ) -> ExecutionOutcome:
        """Run one statement for real; cost it with the shadow planner."""
        if isinstance(statement, str):
            sql = statement
            statement = self.parse_statement(sql)
        else:
            sql = str(statement)
        plan = self.planner.plan(statement)

        cursor = self.conn.execute(sql)
        outcome = ExecutionOutcome(plan=plan, cost=plan.est_cost)
        if isinstance(plan, (InsertPlan, UpdatePlan, DeletePlan)):
            outcome.rowcount = max(cursor.rowcount, 0)
            self._account_write(plan, outcome.rowcount)
            self.catalog.bump_version()
        else:
            outcome.rows = cursor.fetchall()
            outcome.rowcount = len(outcome.rows)
        for definition in indexes_used(plan):
            shadow = self.catalog.get_index(definition)
            if shadow is not None:
                shadow.lookup_count += 1

        self.monitor.record(
            QueryRecord(
                fingerprint=_fingerprint(statement),
                cost=outcome.cost,
                is_write=ast.is_write(statement),
                indexes_used=tuple(indexes_used(plan)),
            )
        )
        return outcome

    def _account_write(self, plan: PlanNode, rowcount: int) -> None:
        """Mirror the engine executor's usage-counter semantics.

        Inserts and deletes touch every index on the table once per
        row; updates touch an index twice per row (delete + insert)
        only when a keyed column changed — or, on a partitioned
        schema, when the partition key moved rows between the trees of
        a local index.
        """
        entry = self.catalog.table(plan.table)
        if isinstance(plan, InsertPlan):
            entry.heap.insert_rows(rowcount)
            for shadow in entry.indexes.values():
                shadow.maintenance_count += rowcount
        elif isinstance(plan, UpdatePlan):
            changed = {a.column for a in plan.assignments}
            rerouting = (
                entry.schema.is_partitioned
                and entry.schema.partition_key in changed
            )
            for shadow in entry.indexes.values():
                keyed = bool(
                    set(shadow.definition.columns) & changed
                )
                rerouted = rerouting and shadow.partition_count > 1
                if keyed or rerouted:
                    shadow.maintenance_count += 2 * rowcount
        elif isinstance(plan, DeletePlan):
            entry.heap.delete_rows(rowcount)
            for shadow in entry.indexes.values():
                shadow.maintenance_count += rowcount

    def explain(self, sql: str) -> str:
        """Render the shadow planner's plan for a statement."""
        return self.planner.plan(self.parse_statement(sql)).explain()

    # ------------------------------------------------------------------
    # what-if costing
    # ------------------------------------------------------------------

    def whatif_cost(
        self,
        statement: ast.Statement,
        config: Optional[Sequence[IndexDef]] = None,
    ) -> WhatIfCost:
        cost, _plan = planned_whatif(
            self.planner, self.catalog, statement, config
        )
        return cost

    def whatif_cost_batch(
        self,
        statements: Sequence[ast.Statement],
        config: Optional[Sequence[IndexDef]] = None,
    ) -> List[WhatIfCost]:
        return [
            cost
            for cost, _plan in planned_whatif_batch(
                self.planner, self.catalog, statements, config
            )
        ]

    def estimate_cost(
        self,
        statement: Union[str, ast.Statement],
        config: Optional[Sequence[IndexDef]] = None,
    ) -> Tuple[float, PlanNode]:
        if isinstance(statement, str):
            statement = self.parse_statement(statement)
        cost, plan = planned_whatif(
            self.planner, self.catalog, statement, config
        )
        return cost.total, plan

    # ------------------------------------------------------------------
    # sizes & metrics
    # ------------------------------------------------------------------

    def index_size_bytes(self, definition: IndexDef) -> int:
        return self.catalog.index_shape(definition).byte_size

    def total_index_bytes(self) -> int:
        return self.catalog.total_index_bytes()

    def index_usage(self) -> List[IndexUsage]:
        return [
            IndexUsage(
                definition=ix.definition,
                lookups=ix.lookup_count,
                maintenance_ops=ix.maintenance_count,
                byte_size=ix.byte_size,
            )
            for ix in self.catalog.real_indexes()
        ]

    def reset_index_usage(self) -> None:
        for ix in self.catalog.real_indexes():
            ix.lookup_count = 0
            ix.maintenance_count = 0
        self._usage_epoch += 1

    def usage_epoch(self) -> int:
        """Monotone counter of out-of-band usage-counter resets."""
        return self._usage_epoch
