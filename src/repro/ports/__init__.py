"""Ports & adapters: the backend-agnostic tuner ⇄ DBMS boundary.

``repro.core`` speaks only :class:`TuningBackend`; concrete engines
plug in behind it (:class:`MemoryBackend`, :class:`SqliteBackend`) via
:func:`create_backend`. See ARCHITECTURE.md §8.
"""

from repro.ports.backend import (
    ExecutionOutcome,
    TuningBackend,
    WhatIfCost,
)
from repro.ports.factory import (
    BackendSpec,
    DEFAULT_BACKEND,
    available_backends,
    create_backend,
    register_backend,
)
from repro.ports.memory import MemoryBackend
from repro.ports.sqlite import SqliteBackend
from repro.ports.whatif import (
    overlay_split,
    planned_whatif,
    strip_placeholders,
    whatif_overlay,
)

__all__ = [
    "BackendSpec",
    "DEFAULT_BACKEND",
    "ExecutionOutcome",
    "MemoryBackend",
    "SqliteBackend",
    "TuningBackend",
    "WhatIfCost",
    "available_backends",
    "create_backend",
    "register_backend",
    "overlay_split",
    "planned_whatif",
    "strip_placeholders",
    "whatif_overlay",
]
