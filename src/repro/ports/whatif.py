"""Shared what-if costing used by every backend adapter.

Both adapters own a shadow/real :class:`repro.engine.catalog.Catalog`
and a :class:`repro.engine.planner.Planner`, so the hypopg-style
what-if question — "what would this statement cost under that index
configuration?" — is answered the same way everywhere: strip
placeholders, overlay the configuration on the catalog, plan, and read
the maintenance charge off the plan shape. Keeping the whole
computation here is what stops the placeholder-stripping / costing
logic from drifting between copies again (it did once, pre-PR 1).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.engine.plan import DeletePlan, InsertPlan, PlanNode, UpdatePlan
from repro.engine.planner import Planner
from repro.ports.backend import WhatIfCost
from repro.sql import ast
from repro.sql.fingerprint import strip_placeholders

__all__ = [
    "overlay_split",
    "whatif_overlay",
    "planned_whatif",
    "planned_whatif_batch",
    "strip_placeholders",
]


def overlay_split(
    real_defs: Sequence[IndexDef], config: Sequence[IndexDef]
) -> Tuple[List[IndexDef], List[IndexDef]]:
    """Split a target configuration into (hypothetical, masked).

    ``config`` is the *complete* index set to assume: entries not yet
    built become hypothetical additions; real indexes absent from the
    config are masked out.
    """
    real = {d.key: d for d in real_defs}
    wanted = {d.key: d for d in config}
    hypothetical = [d for key, d in wanted.items() if key not in real]
    masked = [d for key, d in real.items() if key not in wanted]
    return hypothetical, masked


@contextmanager
def whatif_overlay(
    catalog: Catalog, config: Optional[Sequence[IndexDef]]
) -> Iterator[None]:
    """Temporarily make ``catalog`` present ``config`` as its index set.

    ``None`` means "the current real set" — no overlay at all.
    """
    if config is None:
        yield
        return
    hypothetical, masked = overlay_split(catalog.real_index_defs(), config)
    catalog.set_whatif(hypothetical, masked)
    try:
        yield
    finally:
        catalog.clear_whatif()


def planned_whatif(
    planner: Planner,
    catalog: Catalog,
    statement: ast.Statement,
    config: Optional[Sequence[IndexDef]] = None,
) -> Tuple[WhatIfCost, PlanNode]:
    """Cost ``statement`` under ``config`` without executing anything.

    Returns the full :class:`WhatIfCost` (plan cost plus the
    maintenance split for write plans) and the chosen plan. Planning
    and the maintenance components are computed inside one overlay
    window so both see the same hypothetical index set.
    """
    statement = strip_placeholders(statement)
    with whatif_overlay(catalog, config):
        plan = planner.plan(statement)
        io, cpu, affected = _maintenance_of_plan(
            planner, catalog, plan, config
        )
    return (
        WhatIfCost(
            total=plan.est_cost,
            maintenance_io=io,
            maintenance_cpu=cpu,
            is_write=isinstance(
                plan, (InsertPlan, UpdatePlan, DeletePlan)
            ),
            num_affected_indexes=affected,
        ),
        plan,
    )


def planned_whatif_batch(
    planner: Planner,
    catalog: Catalog,
    statements: Sequence[ast.Statement],
    config: Optional[Sequence[IndexDef]] = None,
) -> List[Tuple[WhatIfCost, PlanNode]]:
    """Cost a batch of statements under one shared overlay window.

    Semantically ``[planned_whatif(..., s, config) for s in
    statements]`` — planning is a pure function of (statement, visible
    index set), so amortising the overlay split/set/clear across the
    batch returns bitwise-identical costs while paying the overlay
    bookkeeping once instead of once per statement. This is the bulk
    path behind the estimator's vectorized feature extraction.
    """
    out: List[Tuple[WhatIfCost, PlanNode]] = []
    with whatif_overlay(catalog, config):
        for statement in statements:
            statement = strip_placeholders(statement)
            plan = planner.plan(statement)
            io, cpu, affected = _maintenance_of_plan(
                planner, catalog, plan, config
            )
            out.append(
                (
                    WhatIfCost(
                        total=plan.est_cost,
                        maintenance_io=io,
                        maintenance_cpu=cpu,
                        is_write=isinstance(
                            plan, (InsertPlan, UpdatePlan, DeletePlan)
                        ),
                        num_affected_indexes=affected,
                    ),
                    plan,
                )
            )
    return out


def _maintenance_of_plan(
    planner: Planner,
    catalog: Catalog,
    plan: PlanNode,
    config: Optional[Sequence[IndexDef]],
) -> Tuple[float, float, int]:
    """Maintenance (io, cpu, #affected_indexes) charged by a write plan.

    Deletes are maintenance-free per the paper's cost model (removing
    an entry is charged to the scan, not the index).
    """
    if isinstance(plan, InsertPlan):
        table = plan.table
        changed: Optional[Set[str]] = None
        rows = max(plan.est_rows, 1.0)
    elif isinstance(plan, UpdatePlan):
        table = plan.table
        changed = {a.column for a in plan.assignments}
        rows = max(plan.est_rows, 0.0)
    else:
        return 0.0, 0.0, 0
    affected = _affected_indexes(catalog, table, changed, config)
    if not affected:
        return 0.0, 0.0, 0
    io, cpu = planner.maintenance_components_per_row(table, changed)
    return io * rows, cpu * rows, len(affected)


def _affected_indexes(
    catalog: Catalog,
    table: str,
    changed: Optional[Set[str]],
    config: Optional[Sequence[IndexDef]],
) -> List[IndexDef]:
    if config is None:
        defs = [ix.definition for ix in catalog.real_indexes(table)]
    else:
        defs = [d for d in config if d.table == table]
    if changed is None:
        return defs
    return [d for d in defs if set(d.columns) & changed]
