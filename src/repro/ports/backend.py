"""The tuner ⇄ DBMS boundary: the ``TuningBackend`` protocol.

The paper deploys AutoIndex against openGauss through a narrow
surface: parse/fingerprint, hypopg-style what-if costing, index DDL,
size accounting, statistics refresh, and per-index usage counters.
This module writes that surface down as a :class:`typing.Protocol` so
``repro.core`` never touches a concrete engine again — any system
that can answer these questions can host the tuner.

Adapters live next door:

* :class:`repro.ports.memory.MemoryBackend` — the in-process engine
  (``repro.engine``), the reference implementation;
* :class:`repro.ports.sqlite.SqliteBackend` — stdlib ``sqlite3`` with
  real DDL/ANALYZE and a shadow catalog feeding our cost model.

``repro.ports.factory.create_backend`` picks one by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.engine.faults import FaultInjector
from repro.engine.index import IndexDef
from repro.engine.metrics import IndexUsage, WorkloadMonitor
from repro.engine.schema import TableSchema
from repro.engine.stats import TableStats
from repro.sql import ast


@dataclass(frozen=True)
class WhatIfCost:
    """The full answer to one what-if question (paper Section V).

    ``total`` is the optimizer's plan cost under the hypothetical
    configuration; the maintenance components split out the index
    upkeep charge a write plan carries, so the estimator can separate
    ``C_data`` from ``C_io``/``C_cpu`` without inspecting plans.
    """

    total: float
    maintenance_io: float = 0.0
    maintenance_cpu: float = 0.0
    is_write: bool = False
    num_affected_indexes: int = 0

    @property
    def data_cost(self) -> float:
        """``C_data``: plan cost minus the maintenance charge."""
        return max(
            self.total - self.maintenance_io - self.maintenance_cpu, 0.0
        )


@dataclass
class ExecutionOutcome:
    """The backend-agnostic outcome of one executed statement."""

    rows: List[Tuple[object, ...]] = field(default_factory=list)
    rowcount: int = 0
    cost: float = 0.0
    plan: Optional[object] = None

    @property
    def scalar(self) -> object:
        """First column of the first row (for aggregate lookups)."""
        if not self.rows:
            return None
        return self.rows[0][0]


@runtime_checkable
class TuningBackend(Protocol):
    """What a DBMS must answer for AutoIndex to manage its indexes.

    Grouped the way the paper groups its host-DBMS requirements:

    * **parse / fingerprint** — map SQL to statements and templates;
    * **what-if costing** — cost a statement under an arbitrary index
      configuration (real indexes not in the config are *masked*,
      config entries not built are *added* hypothetically), nothing
      executed;
    * **transactional DDL** — create/drop an index atomically with
      respect to the visible index set (a failed build registers
      nothing);
    * **size accounting** — bytes per index for the storage budget;
    * **stats refresh** — ANALYZE plus the read-only stats surface
      candidate generation keys off;
    * **usage counters** — per-index lookup/maintenance counts for
      diagnosis.
    """

    # Attributes core reads directly.
    name: str
    monitor: WorkloadMonitor
    faults: Optional[FaultInjector]
    #: True when the backend can be used from a forked child process
    #: (MCTS gates its parallel rollout costing on this).
    parallel_safe: bool

    # -- parse / fingerprint ------------------------------------------------

    def parse_statement(self, sql: str) -> ast.Statement: ...

    def fingerprint(self, statement: ast.Statement) -> str: ...

    # -- what-if costing ----------------------------------------------------

    def whatif_cost(
        self,
        statement: ast.Statement,
        config: Optional[Sequence[IndexDef]] = None,
    ) -> WhatIfCost: ...

    def whatif_cost_batch(
        self,
        statements: Sequence[ast.Statement],
        config: Optional[Sequence[IndexDef]] = None,
    ) -> List[WhatIfCost]:
        """Bulk what-if: one catalog overlay window for the batch.

        Bitwise-equal to ``[whatif_cost(s, config) for s in
        statements]`` — only the overlay bookkeeping is amortised.
        Backends inherit this default; adapters owning a catalog
        should override it with a genuinely batched implementation.
        """
        return [self.whatif_cost(s, config) for s in statements]

    def estimate_cost(
        self,
        statement,
        config: Optional[Sequence[IndexDef]] = None,
    ) -> Tuple[float, object]: ...

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None: ...

    def create_index(self, definition: IndexDef) -> object: ...

    def drop_index(self, definition: IndexDef) -> None: ...

    def has_index(self, definition: IndexDef) -> bool: ...

    def index_defs(self) -> List[IndexDef]: ...

    # -- data & stats -------------------------------------------------------

    def load_rows(
        self, table: str, rows: Iterable[Tuple[object, ...]]
    ) -> int: ...

    def analyze(self, table: Optional[str] = None) -> None: ...

    def table_row_count(self, table: str) -> int: ...

    def table_stats(self, table: str) -> TableStats: ...

    def schema(self, table: str) -> TableSchema: ...

    def has_table(self, name: str) -> bool: ...

    def catalog_version(self) -> int: ...

    # -- execution ----------------------------------------------------------

    def execute(self, sql) -> object: ...

    # -- sizes & usage ------------------------------------------------------

    def index_size_bytes(self, definition: IndexDef) -> int: ...

    def total_index_bytes(self) -> int: ...

    def index_usage(self) -> List[IndexUsage]: ...

    def reset_index_usage(self) -> None: ...

    def usage_epoch(self) -> int:
        """Monotone counter bumped by :meth:`reset_index_usage`.

        Usage resets do not move the catalog version; incremental
        diagnosis needs both to know whether cached classifications
        are still current.
        """
        ...
