"""Synthetic banking scenario (the paper's real-world evaluation).

The paper's banking deployment has 144 tables, a hybrid of a
*withdrawal flow* service (OLTP point lookups and balance updates) and
a *summarization* service (OLAP rollups), and a DBA-crafted
configuration of 263 manual indexes on the withdraw business — most of
them redundant or write-penalised. We reproduce that structure
synthetically, at laptop scale:

* 5 core OLTP tables + 120 per-product side tables + 19 summarization
  fact tables = 144 tables;
* exactly 263 manual indexes for the Figure 1 removal experiment:
  most sit on product tables the workload never filters by, several
  duplicate a primary key prefix, and some index columns every
  withdrawal rewrites (negative benefit);
* the query mix exercises only the core tables, a handful of product
  tables, and the summarization facts — so index *usage* statistics
  separate the wheat from the chaff exactly as diagnosis expects.
"""

from __future__ import annotations

import random
from typing import List

from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import TableSchema, table
from repro.workloads.base import Query, WorkloadGenerator

NUM_PRODUCT_TABLES = 120
NUM_SUMMARY_TABLES = 19
BRANCHES = 40
CHANNELS = 8


class BankingWorkload(WorkloadGenerator):
    """Hybrid banking workload: withdrawal (OLTP) + summarization (OLAP)."""

    name = "banking"

    def __init__(
        self,
        accounts: int = 6000,
        txn_rows: int = 24000,
        product_rows: int = 250,
        seed: int = 31,
    ):
        self.accounts = accounts
        self.txn_rows = txn_rows
        self.product_rows = product_rows
        self.seed = seed
        self._next_txn_id = txn_rows + 1
        # Only a few product tables are ever queried; the rest exist to
        # carry the redundant manual indexes of Figure 1.
        self.hot_products = list(range(0, NUM_PRODUCT_TABLES, 10))

    # ------------------------------------------------------------------
    # schema: 5 core + 120 product + 19 summary = 144 tables
    # ------------------------------------------------------------------

    def schemas(self) -> List[TableSchema]:
        schemas = [
            table(
                "account",
                [("acct_id", T.INT), ("customer_id", T.INT),
                 ("branch_id", T.INT), ("balance", T.FLOAT),
                 ("status", T.TEXT), ("open_day", T.INT),
                 ("last_txn_day", T.INT)],
                primary_key=["acct_id"],
            ),
            table(
                "customer",
                [("customer_id", T.INT), ("name", T.TEXT),
                 ("segment", T.TEXT), ("branch_id", T.INT)],
                primary_key=["customer_id"],
            ),
            table(
                "card",
                [("card_id", T.INT), ("acct_id", T.INT),
                 ("card_status", T.TEXT), ("daily_limit", T.FLOAT)],
                primary_key=["card_id"],
            ),
            table(
                "branch",
                [("branch_id", T.INT), ("region", T.TEXT),
                 ("manager", T.TEXT)],
                primary_key=["branch_id"],
            ),
            table(
                "txn_log",
                [("txn_id", T.INT), ("acct_id", T.INT),
                 ("branch_id", T.INT), ("channel_id", T.INT),
                 ("amount", T.FLOAT), ("day", T.INT),
                 ("txn_type", T.TEXT)],
                primary_key=["txn_id"],
            ),
        ]
        for p in range(NUM_PRODUCT_TABLES):
            schemas.append(
                table(
                    f"prod_{p}",
                    [("row_id", T.INT), ("acct_id", T.INT),
                     ("attr_a", T.INT), ("attr_b", T.INT),
                     ("attr_c", T.TEXT), ("amount", T.FLOAT),
                     ("updated_day", T.INT)],
                    primary_key=["row_id"],
                )
            )
        for s in range(NUM_SUMMARY_TABLES):
            schemas.append(
                table(
                    f"sum_fact_{s}",
                    [("fact_id", T.INT), ("branch_id", T.INT),
                     ("channel_id", T.INT), ("day", T.INT),
                     ("total_amount", T.FLOAT), ("txn_count", T.INT)],
                    primary_key=["fact_id"],
                )
            )
        return schemas

    def load(self, db: TuningBackend) -> None:
        rng = random.Random(self.seed)
        db.load_rows(
            "branch",
            [(b, f"region_{b % 6}", f"mgr_{b}") for b in range(BRANCHES)],
        )
        db.load_rows(
            "customer",
            [
                (c, f"cust_{c}", rng.choice(("retail", "vip", "corp")),
                 rng.randrange(BRANCHES))
                for c in range(self.accounts * 4 // 5)
            ],
        )
        db.load_rows(
            "account",
            [
                (a, rng.randrange(max(self.accounts * 4 // 5, 1)),
                 rng.randrange(BRANCHES),
                 round(rng.random() * 100000, 2),
                 rng.choice(("active", "active", "active", "frozen")),
                 rng.randrange(1, 721), rng.randrange(600, 721))
                for a in range(self.accounts)
            ],
        )
        db.load_rows(
            "card",
            [
                (k, rng.randrange(self.accounts),
                 rng.choice(("ok", "ok", "ok", "lost")),
                 round(500 + rng.random() * 4500, 2))
                for k in range(self.accounts)
            ],
        )
        db.load_rows(
            "txn_log",
            [
                (t, rng.randrange(self.accounts), rng.randrange(BRANCHES),
                 rng.randrange(CHANNELS),
                 round(rng.random() * 2000, 2), rng.randrange(1, 721),
                 rng.choice(("wd", "dep", "tf")))
                for t in range(1, self.txn_rows + 1)
            ],
        )
        for p in range(NUM_PRODUCT_TABLES):
            db.load_rows(
                f"prod_{p}",
                [
                    (r, rng.randrange(self.accounts),
                     rng.randrange(100), rng.randrange(100),
                     f"v{r % 13}", round(rng.random() * 1000, 2),
                     rng.randrange(1, 721))
                    for r in range(self.product_rows)
                ],
            )
        fact_rows = self.txn_rows // 4
        for s in range(NUM_SUMMARY_TABLES):
            db.load_rows(
                f"sum_fact_{s}",
                [
                    (f, rng.randrange(BRANCHES), rng.randrange(CHANNELS),
                     rng.randrange(1, 721),
                     round(rng.random() * 50000, 2), rng.randrange(1, 500))
                    for f in range(fact_rows)
                ],
            )

    # ------------------------------------------------------------------
    # index configurations
    # ------------------------------------------------------------------

    def manual_withdraw_indexes(self) -> List[IndexDef]:
        """The DBA-crafted 263-index configuration of Figure 1.

        Composition (mirroring what the paper describes as "many
        redundant indexes"):

        * 240 indexes on the 120 product tables (2 each) — the hot
          product tables' ``acct_id`` indexes are genuinely useful,
          everything else is dead weight;
        * 23 indexes on the core tables, including prefix-redundant
          ones and indexes on columns every withdrawal rewrites
          (``balance``, ``last_txn_day``) — negative benefit.
        """
        indexes: List[IndexDef] = []
        for p in range(NUM_PRODUCT_TABLES):
            indexes.append(
                IndexDef(table=f"prod_{p}", columns=("acct_id",),
                         name=f"idx_prod{p}_acct")
            )
            indexes.append(
                IndexDef(table=f"prod_{p}", columns=("attr_a", "attr_b"),
                         name=f"idx_prod{p}_attrs")
            )
        core = [
            IndexDef(table="account", columns=("customer_id",)),
            IndexDef(table="account", columns=("branch_id",)),
            IndexDef(table="account", columns=("branch_id", "status")),
            IndexDef(table="account", columns=("balance",)),       # negative
            IndexDef(table="account", columns=("last_txn_day",)),  # negative
            IndexDef(table="account", columns=("open_day",)),
            IndexDef(table="account", columns=("status",)),
            IndexDef(table="card", columns=("acct_id",)),
            IndexDef(table="card", columns=("acct_id", "card_status")),
            IndexDef(table="card", columns=("card_status",)),
            IndexDef(table="card", columns=("daily_limit",)),
            IndexDef(table="customer", columns=("branch_id",)),
            IndexDef(table="customer", columns=("segment",)),
            IndexDef(table="customer", columns=("name",)),
            IndexDef(table="txn_log", columns=("acct_id",)),
            IndexDef(table="txn_log", columns=("acct_id", "day")),
            IndexDef(table="txn_log", columns=("branch_id",)),
            IndexDef(table="txn_log", columns=("channel_id",)),
            IndexDef(table="txn_log", columns=("day",)),
            IndexDef(table="txn_log", columns=("txn_type",)),
            IndexDef(table="txn_log", columns=("amount",)),
            IndexDef(table="branch", columns=("region",)),
            IndexDef(table="branch", columns=("manager",)),
        ]
        indexes.extend(core)
        assert len(indexes) == 263, len(indexes)
        return indexes

    def default_indexes(self) -> List[IndexDef]:
        """Default = the manual configuration (as in the paper)."""
        return self.manual_withdraw_indexes()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def queries(self, count: int, seed: int = 0) -> List[Query]:
        """Hybrid stream: ~70% withdrawal service, ~30% summarization."""
        rng = random.Random(self.seed * 524287 + seed)
        queries: List[Query] = []
        while len(queries) < count:
            if rng.random() < 0.7:
                queries.extend(self.withdrawal_txn(rng))
            else:
                queries.append(self.summarization_query(rng))
        return queries[:count]

    def withdrawal_queries(self, count: int, seed: int = 0) -> List[Query]:
        rng = random.Random(self.seed * 131071 + seed)
        queries: List[Query] = []
        while len(queries) < count:
            queries.extend(self.withdrawal_txn(rng))
        return queries[:count]

    def summarization_queries(self, count: int, seed: int = 0) -> List[Query]:
        rng = random.Random(self.seed * 8191 + seed)
        return [self.summarization_query(rng) for _ in range(count)]

    def withdrawal_txn(self, rng: random.Random) -> List[Query]:
        acct = rng.randrange(self.accounts)
        amount = round(10 + rng.random() * 500, 2)
        day = 720
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        queries = [
            Query(
                sql=(
                    "SELECT balance, status FROM account "
                    f"WHERE acct_id = {acct}"
                ),
                kind="read", tag="withdraw",
            ),
            Query(
                sql=(
                    "SELECT card_status, daily_limit FROM card "
                    f"WHERE acct_id = {acct} AND card_status = 'ok'"
                ),
                kind="read", tag="withdraw",
            ),
            Query(
                sql=(
                    f"UPDATE account SET balance = balance - {amount}, "
                    f"last_txn_day = {day} WHERE acct_id = {acct}"
                ),
                kind="write", tag="withdraw",
            ),
            Query(
                sql=(
                    "INSERT INTO txn_log (txn_id, acct_id, branch_id, "
                    "channel_id, amount, day, txn_type) VALUES "
                    f"({txn_id}, {acct}, {rng.randrange(BRANCHES)}, "
                    f"{rng.randrange(CHANNELS)}, {amount}, {day}, 'wd')"
                ),
                kind="write", tag="withdraw",
            ),
        ]
        if rng.random() < 0.3:
            queries.append(
                Query(
                    sql=(
                        "SELECT txn_id, amount FROM txn_log "
                        f"WHERE acct_id = {acct} AND day >= {day - 30}"
                    ),
                    kind="read", tag="withdraw",
                )
            )
        if rng.random() < 0.2:
            product = rng.choice(self.hot_products)
            queries.append(
                Query(
                    sql=(
                        f"SELECT row_id, amount FROM prod_{product} "
                        f"WHERE acct_id = {acct}"
                    ),
                    kind="read", tag="withdraw",
                )
            )
        return queries

    def summarization_query(self, rng: random.Random) -> Query:
        fact = rng.randrange(NUM_SUMMARY_TABLES)
        roll = rng.random()
        if roll < 0.4:
            branch = rng.randrange(BRANCHES)
            lo = rng.randrange(1, 700)
            return Query(
                sql=(
                    f"SELECT sum(total_amount), sum(txn_count) "
                    f"FROM sum_fact_{fact} WHERE branch_id = {branch} "
                    f"AND day BETWEEN {lo} AND {lo + 6}"
                ),
                kind="read", tag="summarize",
            )
        if roll < 0.7:
            lo = rng.randrange(1, 712)
            return Query(
                sql=(
                    "SELECT channel_id, sum(total_amount) AS amt "
                    f"FROM sum_fact_{fact} "
                    f"WHERE day BETWEEN {lo} AND {lo + 2} "
                    "GROUP BY channel_id ORDER BY amt DESC"
                ),
                kind="read", tag="summarize",
            )
        branch = rng.randrange(BRANCHES)
        return Query(
            sql=(
                "SELECT count(*) FROM txn_log "
                f"WHERE branch_id = {branch} AND day >= 690 "
                "AND txn_type = 'wd'"
            ),
            kind="read", tag="summarize",
        )
