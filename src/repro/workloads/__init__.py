"""Workload generators for the evaluation benchmarks.

Each generator owns a schema, a deterministic data loader, a stream of
concrete SQL statements, and a "Default" index configuration — the
starting point the paper's Default baseline keeps and AutoIndex
incrementally updates.
"""

from repro.workloads.base import LoadedWorkload, Query, WorkloadGenerator
from repro.workloads.epidemic import EpidemicWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpcds import TpcdsWorkload
from repro.workloads.banking import BankingWorkload
from repro.workloads.dynamic import DynamicWorkload, Phase

__all__ = [
    "BankingWorkload",
    "DynamicWorkload",
    "EpidemicWorkload",
    "LoadedWorkload",
    "Phase",
    "Query",
    "TpccWorkload",
    "TpcdsWorkload",
    "WorkloadGenerator",
]
