"""The paper's running example (Figure 2): an epidemic tracking table.

Three workload phases with different index requirements:

* **W1** — early epidemic: sparse data, random read queries over
  ``temperature`` and ``community`` → single-column indexes pay off;
* **W2** — rapid spread: heavy inserts of new potentially-infected
  people → the maintenance cost of ``idx_community`` outweighs its
  read benefit and it should be dropped;
* **W3** — epidemic controlled: rare inserts, many temperature updates
  keyed by (name, community) plus temperature range reads → a
  multi-column index on (name, community) becomes beneficial while
  ``idx_temperature`` stays (read benefit exceeds maintenance).
"""

from __future__ import annotations

import random
from typing import List

from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import TableSchema, table
from repro.workloads.base import Query, WorkloadGenerator

COMMUNITIES = 40


class EpidemicWorkload(WorkloadGenerator):
    """Figure 2's scenario, sized for laptop-scale runs."""

    name = "epidemic"

    def __init__(self, people: int = 8000, seed: int = 7):
        self.people = people
        self.seed = seed
        self._next_id = people

    def schemas(self) -> List[TableSchema]:
        return [
            table(
                "people",
                [
                    ("id", T.INT),
                    ("name", T.TEXT),
                    ("community", T.INT),
                    ("temperature", T.FLOAT),
                    ("status", T.TEXT),
                ],
                primary_key=["id"],
            )
        ]

    def load(self, db: TuningBackend) -> None:
        rng = random.Random(self.seed)
        rows = [
            (
                i,
                f"person_{i}",
                rng.randrange(COMMUNITIES),
                round(36.0 + rng.random() * 5.0, 1),
                rng.choice(("healthy", "suspect", "confirmed")),
            )
            for i in range(self.people)
        ]
        db.load_rows("people", rows)

    def default_indexes(self) -> List[IndexDef]:
        return []

    # -- phases --------------------------------------------------------------

    def queries(self, count: int, seed: int = 0) -> List[Query]:
        """A mixed stream; use the phase methods for the Fig 2 story."""
        per_phase = max(count // 3, 1)
        return (
            self.phase_w1(per_phase, seed)
            + self.phase_w2(per_phase, seed + 1)
            + self.phase_w3(count - 2 * per_phase, seed + 2)
        )

    def phase_w1(self, count: int, seed: int = 0) -> List[Query]:
        """Random reads on temperature and community."""
        rng = random.Random(seed)
        queries: List[Query] = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.3:
                # Fever headcount: an index on temperature serves this
                # with an index-only scan.
                temp = round(38.5 + rng.random() * 2.0, 1)
                queries.append(
                    Query(
                        sql=(
                            "SELECT count(*) FROM people "
                            f"WHERE temperature >= {temp}"
                        ),
                        kind="read",
                    )
                )
            elif roll < 0.5:
                # Critical cases: selective row fetch.
                temp = round(40.4 + rng.random() * 0.5, 2)
                queries.append(
                    Query(
                        sql=(
                            "SELECT id, name FROM people "
                            f"WHERE temperature >= {temp}"
                        ),
                        kind="read",
                    )
                )
            else:
                community = rng.randrange(COMMUNITIES)
                queries.append(
                    Query(
                        sql=(
                            "SELECT id, name, temperature FROM people "
                            f"WHERE community = {community} "
                            "AND status = 'confirmed'"
                        ),
                        kind="read",
                    )
                )
        return queries

    def phase_w2(self, count: int, seed: int = 0) -> List[Query]:
        """Insert-heavy: new potentially-infected people, few reads."""
        rng = random.Random(seed)
        queries: List[Query] = []
        for _ in range(count):
            if rng.random() < 0.95:
                pid = self._next_id
                self._next_id += 1
                community = rng.randrange(COMMUNITIES)
                temp = round(36.0 + rng.random() * 5.0, 1)
                queries.append(
                    Query(
                        sql=(
                            "INSERT INTO people "
                            "(id, name, community, temperature, status) "
                            f"VALUES ({pid}, 'person_{pid}', {community}, "
                            f"{temp}, 'suspect')"
                        ),
                        kind="write",
                    )
                )
            else:
                temp = round(39.0 + rng.random(), 1)
                queries.append(
                    Query(
                        sql=(
                            "SELECT count(*) FROM people "
                            f"WHERE temperature >= {temp}"
                        ),
                        kind="read",
                    )
                )
        return queries

    def phase_w3(self, count: int, seed: int = 0) -> List[Query]:
        """Update-heavy: refresh temperatures keyed by (name, community)."""
        rng = random.Random(seed)
        queries: List[Query] = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.6:
                pid = rng.randrange(self.people)
                community = rng.randrange(COMMUNITIES)
                temp = round(36.0 + rng.random() * 4.0, 1)
                queries.append(
                    Query(
                        sql=(
                            f"UPDATE people SET temperature = {temp} "
                            f"WHERE name = 'person_{pid}' "
                            f"AND community = {community}"
                        ),
                        kind="write",
                    )
                )
            elif roll < 0.85:
                temp = round(38.5 + rng.random() * 1.5, 1)
                queries.append(
                    Query(
                        sql=(
                            "SELECT count(*) FROM people "
                            f"WHERE temperature >= {temp}"
                        ),
                        kind="read",
                    )
                )
            else:
                pid = rng.randrange(self.people)
                community = rng.randrange(COMMUNITIES)
                queries.append(
                    Query(
                        sql=(
                            "SELECT temperature FROM people "
                            f"WHERE name = 'person_{pid}' "
                            f"AND community = {community}"
                        ),
                        kind="read",
                    )
                )
        return queries
