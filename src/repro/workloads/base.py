"""Workload abstractions shared by all generators."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.engine.index import IndexDef
from repro.engine.schema import TableSchema
from repro.ports.backend import TuningBackend
from repro.ports.factory import DEFAULT_BACKEND, create_backend


@dataclass(frozen=True)
class Query:
    """One workload statement with a coarse kind tag."""

    sql: str
    kind: str = "read"  # "read" or "write"
    tag: Optional[str] = None  # e.g. a TPC-DS query id for per-query plots

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


class WorkloadGenerator(abc.ABC):
    """A benchmark scenario: schema + data + query stream + defaults."""

    name: str = "workload"

    @abc.abstractmethod
    def schemas(self) -> List[TableSchema]:
        """Table definitions for this scenario."""

    @abc.abstractmethod
    def load(self, db: TuningBackend) -> None:
        """Populate the tables with deterministic data."""

    @abc.abstractmethod
    def queries(self, count: int, seed: int = 0) -> List[Query]:
        """Generate ``count`` concrete statements."""

    def default_indexes(self) -> List[IndexDef]:
        """Extra indexes the Default baseline starts with (besides PKs)."""
        return []

    def build(self, db: TuningBackend, with_defaults: bool = True) -> None:
        """Create tables, load data, add default indexes, and ANALYZE."""
        for schema in self.schemas():
            db.create_table(schema)
        self.load(db)
        if with_defaults:
            for index_def in self.default_indexes():
                if not db.has_index(index_def):
                    db.create_index(index_def)
        db.analyze()


@dataclass
class LoadedWorkload:
    """A database prepared for a scenario, plus a query stream."""

    db: TuningBackend
    generator: WorkloadGenerator
    queries: List[Query] = field(default_factory=list)

    @classmethod
    def prepare(
        cls,
        generator: WorkloadGenerator,
        query_count: int,
        seed: int = 0,
        with_defaults: bool = True,
        backend: str = DEFAULT_BACKEND,
    ) -> "LoadedWorkload":
        db = create_backend(backend)
        generator.build(db, with_defaults=with_defaults)
        return cls(
            db=db,
            generator=generator,
            queries=generator.queries(query_count, seed=seed),
        )


def weighted_choice(rng: random.Random, weights: Sequence[float]) -> int:
    """Pick an index according to ``weights`` (need not sum to 1)."""
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if point <= acc:
            return i
    return len(weights) - 1
