"""Phase-shifting workload driver for the dynamic-adaptivity experiment.

The paper's Figure 9 continuously issues TPC-C tasks and runs index
management every five minutes. We model that as a sequence of
:class:`Phase` objects — each phase produces a batch of queries from
some generator — and let the harness interleave execution with tuning
rounds at phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.workloads.base import Query, WorkloadGenerator


@dataclass
class Phase:
    """One segment of a dynamic workload."""

    name: str
    make_queries: Callable[[int], List[Query]]
    query_count: int

    def queries(self, seed: int = 0) -> List[Query]:
        return self.make_queries(seed)


class DynamicWorkload:
    """A sequence of phases over one prepared database.

    The underlying generator provides schema and data; phases reshape
    the query mix (read/write ratio, touched tables, access patterns)
    over time, which is what forces incremental index updates.
    """

    def __init__(self, generator: WorkloadGenerator, phases: Sequence[Phase]):
        self.generator = generator
        self.phases = list(phases)

    def __iter__(self):
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)


def epidemic_phases(generator, queries_per_phase: int = 300) -> DynamicWorkload:
    """The Figure 2 storyline as a three-phase dynamic workload."""
    phases = [
        Phase(
            name="W1-reads",
            make_queries=lambda seed, g=generator: g.phase_w1(
                queries_per_phase, seed
            ),
            query_count=queries_per_phase,
        ),
        Phase(
            name="W2-inserts",
            make_queries=lambda seed, g=generator: g.phase_w2(
                queries_per_phase, seed
            ),
            query_count=queries_per_phase,
        ),
        Phase(
            name="W3-updates",
            make_queries=lambda seed, g=generator: g.phase_w3(
                queries_per_phase, seed
            ),
            query_count=queries_per_phase,
        ),
    ]
    return DynamicWorkload(generator, phases)


def tpcc_rounds(
    generator, rounds: int = 4, queries_per_round: int = 400
) -> DynamicWorkload:
    """Figure 9's setting: repeated TPC-C batches between tuning rounds.

    Consecutive rounds use different seeds (fresh parameters, same
    access patterns) and the table data grows through the rounds'
    inserts, as the paper notes for Default's slight degradation.
    """
    phases = [
        Phase(
            name=f"round-{i + 1}",
            make_queries=lambda seed, g=generator, i=i: g.queries(
                queries_per_round, seed=seed + i * 97
            ),
            query_count=queries_per_round,
        )
        for i in range(rounds)
    ]
    return DynamicWorkload(generator, phases)
